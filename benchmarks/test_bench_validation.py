"""Aggregate fidelity bench: rank-correlate measured EDP with the paper."""

from repro.experiments.validation import validate_against_paper


def test_validation_against_paper(once):
    result = once(validate_against_paper)
    print("\n" + result.table())
    assert result.spearman > 0.85
    assert result.max_log2_error < 1.0
