"""EXP-F6 / EXP-F14 — trained-model figures (per-layer sparsity; net-wise vs
layer-wise TASD).  First invocation trains and caches the scaled models."""

from repro.experiments import fig06_layer_sparsity, fig14_netwise_layerwise


def test_fig06_layer_sparsity(once):
    result = once(fig06_layer_sparsity.run)
    print("\n" + result.table())
    # Fig. 6 shape: deep weight sparsity with a denser first layer,
    # activations oscillating well below the weight series.
    assert result.overall_weight_sparsity > 0.8
    assert result.weight_sparsity[0] < max(result.weight_sparsity)
    assert 0.1 < sum(result.activation_sparsity) / len(result.activation_sparsity) < 0.9


def test_fig14_netwise_vs_layerwise(once):
    result = once(fig14_netwise_layerwise.run)
    print("\n" + result.table("weights"))
    print("\n" + result.table("activations"))
    gate_w = 0.99 * result.original_accuracy_sparse
    netwise_ok = [
        p.approximated_sparsity
        for p in result.weight_points
        if p.series.startswith("netwise") and p.accuracy >= gate_w
    ]
    # Some aggressive configuration must pass the gate on the sparse model...
    assert max(netwise_ok) >= 0.375
    # ...and fully dense always passes.
    assert 0.0 in netwise_ok
