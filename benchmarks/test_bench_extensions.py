"""Benches for the extension features (paper §6 future work, DESIGN.md §5)."""

import numpy as np

from repro.core import NMPattern, TASDConfig, decompose_with_permutation
from repro.core.patterns_ext import VectorPattern, generalized_decompose
from repro.experiments.reporting import format_table
from repro.hw import DenseTC, LayerSpec, build_fig11_schedule, replay_counts, search_mapping
from repro.nn.models import MLP
from repro.nn import synthetic_images
from repro.tasder.training import train_with_tasd_gradients
from repro.tensor.random import sparse_normal


def test_ext_channel_permutation(once):
    """Channel permutation (Pool & Yu) on adversarial and random layouts."""

    def sweep():
        rows = []
        for density in (0.3, 0.5, 0.8):
            w = sparse_normal((64, 256), density=density, seed=1)
            res = decompose_with_permutation(w, TASDConfig.parse("2:4"))
            rows.append((density, res.kept_magnitude_before, res.kept_magnitude_after,
                         f"{res.improvement:+.2%}"))
        return rows

    rows = once(sweep)
    print("\n" + format_table(
        ["density", "kept |mag| before", "kept |mag| after", "gain"],
        rows, title="Channel permutation before 2:4 decomposition"))
    for _, before, after, _ in rows:
        assert after >= before - 1e-9


def test_ext_generalized_patterns(once):
    """Vector/block patterns vs fine-grained N:M at equal density."""

    def sweep():
        x = sparse_normal((64, 256), density=0.7, seed=2)
        rows = []
        for label, patterns in (
            ("N:M 2:4", [NMPattern(2, 4)]),
            ("vector 2:4", [VectorPattern(2, 4)]),
            ("N:M 2:4 + vector 1:4", [NMPattern(2, 4), VectorPattern(1, 4)]),
        ):
            dec = generalized_decompose(x, patterns)
            dropped = float(np.abs(dec.residual).sum() / np.abs(x).sum())
            rows.append((label, dropped))
        return rows

    rows = once(sweep)
    print("\n" + format_table(["series", "dropped magnitude"], rows,
                              title="Generalized structured patterns", float_fmt="{:.4f}"))
    by = dict(rows)
    assert by["N:M 2:4"] < by["vector 2:4"]  # fine-grained keeps more


def test_ext_mapper_search(once):
    """Searched mapping vs the capacity heuristic on Table 4 layers."""

    def sweep():
        model = DenseTC()
        rows = []
        for name, (m, k, n) in (
            ("RN50 L1", (784, 1152, 128)),
            ("RN50 L3", (196, 2304, 256)),
            ("BERT L2", (3072, 768, 128)),
        ):
            spec = LayerSpec(name=name, m=m, k=k, n=n)
            heuristic = model.run_layer(spec).edp
            best, candidates = search_mapping(model, spec)
            rows.append((name, len(candidates), heuristic / best.edp))
        return rows

    rows = once(sweep)
    print("\n" + format_table(["layer", "mappings tried", "heuristic/best EDP"],
                              rows, title="Mapping search vs heuristic"))
    for _, _, ratio in rows:
        assert ratio >= 0.999  # search can only improve (or tie)


def test_ext_fig11_schedule(once):
    """Replay the decomposition-aware schedule and verify its reuse."""

    def run():
        sched = build_fig11_schedule(TASDConfig.parse("4:8+1:8"), a_stripes=4, b_blocks=2)
        return sched, replay_counts(sched)

    sched, counts = once(run)
    print(f"\nFig. 11 schedule: {sched.num_timesteps} timesteps, "
          f"B L2 fetches={counts.b_l2_fetches}, B reuse hits={counts.b_reuse_hits}, "
          f"C writebacks={counts.c_writebacks}, partial-sum spills={counts.c_spills}")
    assert counts.c_spills == 0
    assert counts.b_l2_fetches == 2


def test_ext_training_tasd(once):
    """Training-time TASD: gradient compression keeps the model learnable."""

    def run():
        ds = synthetic_images(n_train=128, n_eval=32, size=8, noise=0.4, seed=7)
        x = ds.x_train.reshape(128, -1)
        rows = []
        for text in ("dense", "4:8+2:8", "2:8"):
            model = MLP(192, (64,), 10, rng=np.random.default_rng(7))
            if text == "dense":
                from repro.nn import Adam, train_classifier

                r = train_classifier(model, x, ds.y_train, epochs=5,
                                     optimizer=Adam(model, lr=2e-3), seed=7)
                rows.append((text, 1.0, r.train_accuracy, 0.0))
            else:
                r = train_with_tasd_gradients(model, x, ds.y_train,
                                              TASDConfig.parse(text), epochs=5, lr=2e-3)
                rows.append((text, r.compute_density, r.final_accuracy,
                             r.mean_gradient_error))
        return rows

    rows = once(run)
    print("\n" + format_table(
        ["gradient series", "bwd compute", "final accuracy", "mean grad error"],
        rows, title="TASD-compressed training (Section 6.2 future work)"))
    dense_acc = rows[0][2]
    assert rows[1][2] >= dense_acc - 0.15  # 75 % compute keeps accuracy close
