"""EXP-F15/F17/F18/F19 — the fast analytical figures."""

from repro.experiments import (
    fig15_energy_breakdown,
    fig17_synthetic,
    fig18_matmul_error,
    fig19_ablation,
)


def test_fig15_energy_breakdown(once):
    result = once(fig15_energy_breakdown.run)
    print("\n" + result.table())
    assert 0.3 < result.savings < 0.75


def test_fig17_synthetic_drops(once):
    result = once(fig17_synthetic.run)
    print("\n" + result.table())
    idx = result.densities.index(0.1)
    assert result.dropped_nnz["2 terms (2:4+2:8)"][idx] < 0.01


def test_fig18_matmul_error(once):
    result = once(fig18_matmul_error.run)
    print("\n" + result.table())
    # N:8 beats N:4 at 50 % approximated sparsity (expressiveness).
    n4 = {p.approximated_sparsity: p.error for p in result.series("Unstructured 20% with N:4")}
    n8 = {p.approximated_sparsity: p.error for p in result.series("Unstructured 20% with N:8")}
    assert n8[0.5] < n4[0.5]


def test_fig19_ablation(once):
    result = once(fig19_ablation.run)
    print("\n" + result.table())
    assert result.edp[("Unstr ResNet50", "VEGETA")] == 1.0
    assert result.edp[("Unstr ResNet50", "VEGETA w/ TASDER")] < 0.4
