"""Design-space exploration bench: flexibility vs benefit (Section 5.2)."""

from repro.experiments.reporting import format_table
from repro.hw.dse import sweep_block_size, sweep_term_budget


def test_dse_term_budget(once):
    points = once(sweep_term_budget, 8, (1, 2, 3))
    rows = [(p.label, p.max_terms, p.menu_size, p.geomean_edp) for p in points]
    print("\n" + format_table(
        ["design", "TASD terms", "menu size", "geomean EDP"],
        rows, title="DSE: TASD term budget at M=8"))
    assert points[1].geomean_edp <= points[0].geomean_edp * 1.02


def test_dse_block_size(once):
    points = once(sweep_block_size, (4, 8, 16), 2)
    rows = [(p.label, p.block_size, p.menu_size, p.geomean_edp) for p in points]
    print("\n" + format_table(
        ["design", "block size M", "menu size", "geomean EDP"],
        rows, title="DSE: block size at 2 TASD terms"))
    edp = {p.block_size: p.geomean_edp for p in points}
    assert edp[8] <= edp[4] * 1.02  # the paper's M4 -> M8 improvement
