"""Compiled-plan vs per-call inference throughput (the runtime's raison d'être).

The per-call path re-decomposes and re-compresses every weight on every
forward — what ``tasd_matmul`` does when used directly.  The compiled plan
pays that cost once at build time and serves forwards from pre-compressed
:class:`CompressedNM` operands.  ``test_runtime_compiled_speedup`` fences
the resulting speedup at >= 3x on a sparse ResNet-18 forward, so the bench
trajectory tracks it.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import OperandCache, PlanExecutor, ServingEngine, compile_plan
from repro.tasder.transform import TASDTransform

BATCH = 2


@pytest.fixture(scope="module")
def serving_setup():
    """A 60 %-sparse ResNet-18 with a uniform 2:4 weight transform."""
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
    )
    x = np.random.default_rng(0).normal(size=(BATCH, 3, 8, 8))
    return model, transform, x


def test_bench_plan_build(benchmark, serving_setup):
    model, transform, _ = serving_setup
    plan = benchmark(compile_plan, model, transform, OperandCache(capacity=64))
    assert plan.total_nnz > 0


def test_bench_compiled_forward(benchmark, serving_setup):
    model, transform, x = serving_setup
    with PlanExecutor(model, compile_plan(model, transform)) as executor:
        out = benchmark(executor.run, x)
    assert out.shape == (BATCH, 10)


def test_bench_per_call_forward(benchmark, serving_setup):
    model, transform, x = serving_setup
    with PlanExecutor(model, compile_plan(model, transform, mode="per_call")) as executor:
        out = benchmark(executor.run, x)
    assert out.shape == (BATCH, 10)


def test_bench_serving_engine(benchmark, serving_setup):
    model, transform, x = serving_setup

    def serve_eight():
        with PlanExecutor(model, compile_plan(model, transform)) as executor:
            with ServingEngine(executor, max_batch=4, batch_window=0.002) as engine:
                futures = [engine.submit(x[:1]) for _ in range(8)]
                for f in futures:
                    f.result(timeout=120.0)
        return engine.report()

    report = benchmark.pedantic(serve_eight, rounds=1, iterations=1)
    assert report.count == 8


def test_runtime_compiled_speedup(serving_setup):
    """Acceptance fence: compiled inference >= 3x the per-call path."""
    model, transform, x = serving_setup
    cache = OperandCache()
    timings = {}
    for mode in ("compiled", "per_call"):
        plan = compile_plan(model, transform, cache=cache, mode=mode)
        with PlanExecutor(model, plan) as executor:
            executor.run(x)  # warm-up outside the clock
            executor.reset_stats()
            samples = []
            for _ in range(5):
                t0 = time.perf_counter()
                executor.run(x)
                samples.append(time.perf_counter() - t0)
            timings[mode] = sorted(samples)[len(samples) // 2]  # median
    speedup = timings["per_call"] / timings["compiled"]
    # Recompiling against the shared cache resolves every weight from it:
    # the compile-once contract, visible in the executor's cache counters.
    plan = compile_plan(model, transform, cache=cache)
    n_targets = len(transform.weight_configs)
    with PlanExecutor(model, plan) as executor:
        executor.run(x)
        cache_stats = executor.stats().cache
    assert cache_stats.hits == n_targets
    assert cache_stats.misses == 0  # reset_stats cleared the build-time misses
    assert cache_stats.hit_rate == pytest.approx(1.0)
    print(
        f"\ncompiled {timings['compiled'] * 1e3:.2f} ms vs per-call "
        f"{timings['per_call'] * 1e3:.2f} ms per forward -> {speedup:.2f}x; {cache_stats}"
    )
    assert speedup >= 3.0, f"compiled plan only {speedup:.2f}x faster than per-call"
