"""Compiled-plan vs per-call inference throughput (the runtime's raison d'être).

The per-call path re-decomposes and re-compresses every weight on every
forward — what ``tasd_matmul`` does when used directly.  The compiled plan
pays that cost once at build time and serves forwards from pre-compressed
:class:`CompressedNM` operands.  ``test_runtime_compiled_speedup`` fences
the resulting speedup at >= 3x on a sparse ResNet-18 forward, so the bench
trajectory tracks it.

On top of that sit the kernel-backend fences: ``test_runtime_autotune_speedup``
requires the compile-time autotuner to beat the reference ``einsum-gather``
compiled path by >= 1.5x on the same serving workload, and the worker-pool
benches track how serving throughput scales across the pool substrates:
thread replicas (asserted >= 1.5x for 4 workers where the machine has
cores to scale onto) and process workers over shared-memory operands
(asserted >= 2x for 4 workers — no GIL in common, so the fence is higher).

``test_runtime_plan_persistence_warm_restart`` fences the restart story:
loading a persisted plan artifact must be >= 5x faster than compile +
autotune, with identical backend choices and bit-identical served outputs.

``test_runtime_metrics_overhead`` fences the telemetry spine: serving with
the metrics registry and request tracing enabled must stay within 5 % of
the uninstrumented engine's throughput, and it writes the repo's
``BENCH_runtime.json`` trajectory point (throughput, p50/p95/p99) —
appending to the file's bounded ``history`` list, so the perf trajectory
accumulates across runs instead of overwriting itself.

``test_runtime_supervision_overhead`` fences the fault-tolerance layer
the same way: a supervised process pool (respawn + health pings on) must
serve within 5 % of the same pool with supervision disabled.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import (
    OperandCache,
    PlanExecutor,
    ProcessWorkerPool,
    ReplicaExecutor,
    ServingEngine,
    backend_names,
    compile_plan,
    load_plan,
    make_pool,
)
from repro.tasder.transform import TASDTransform

BATCH = 2


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def serving_setup():
    """A 60 %-sparse ResNet-18 with a uniform 2:4 weight transform."""
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
    )
    x = np.random.default_rng(0).normal(size=(BATCH, 3, 8, 8))
    return model, transform, x


def test_bench_plan_build(benchmark, serving_setup):
    model, transform, _ = serving_setup
    plan = benchmark(compile_plan, model, transform, OperandCache(capacity=64))
    assert plan.total_nnz > 0


def test_bench_plan_load(benchmark, serving_setup, tmp_path):
    """Warm-restart cost: deserializing a persisted plan from disk."""
    model, transform, _ = serving_setup
    path = compile_plan(model, transform).save(tmp_path / "plan.npz")
    plan = benchmark(load_plan, path, model)
    assert plan.total_nnz > 0


def test_bench_compiled_forward(benchmark, serving_setup):
    model, transform, x = serving_setup
    with PlanExecutor(model, compile_plan(model, transform)) as executor:
        out = benchmark(executor.run, x)
    assert out.shape == (BATCH, 10)


def test_bench_per_call_forward(benchmark, serving_setup):
    model, transform, x = serving_setup
    with PlanExecutor(model, compile_plan(model, transform, mode="per_call")) as executor:
        out = benchmark(executor.run, x)
    assert out.shape == (BATCH, 10)


def test_bench_serving_engine(benchmark, serving_setup):
    model, transform, x = serving_setup

    def serve_eight():
        with PlanExecutor(model, compile_plan(model, transform)) as executor:
            with ServingEngine(executor, max_batch=4, batch_window=0.002) as engine:
                futures = [engine.submit(x[:1]) for _ in range(8)]
                for f in futures:
                    f.result(timeout=120.0)
        return engine.report()

    report = benchmark.pedantic(serve_eight, rounds=1, iterations=1)
    assert report.count == 8


@pytest.mark.parametrize("backend", backend_names())
def test_bench_backend_forward(benchmark, serving_setup, backend):
    """Per-backend compiled-forward throughput on the serving model."""
    model, transform, x = serving_setup
    plan = compile_plan(model, transform, backend=backend)
    with PlanExecutor(model, plan) as executor:
        out = benchmark(executor.run, x)
    assert out.shape == (BATCH, 10)


def test_bench_autotuned_forward(benchmark, serving_setup):
    model, transform, x = serving_setup
    plan = compile_plan(model, transform, autotune=True, autotune_repeats=2)
    with PlanExecutor(model, plan) as executor:
        out = benchmark(executor.run, x)
    assert out.shape == (BATCH, 10)


def test_bench_replica_serving(benchmark, serving_setup):
    """Serving throughput with 4 replica workers draining 24 requests."""
    model, transform, x = serving_setup
    plan = compile_plan(model, transform, autotune=True, autotune_repeats=2)

    def serve_round():
        with ReplicaExecutor(model, plan, replicas=4) as executor:
            with ServingEngine(executor, max_batch=4, batch_window=0.0, workers=4) as engine:
                futures = [engine.submit(x[:1]) for _ in range(24)]
                for f in futures:
                    f.result(timeout=120.0)
        return engine.report()

    report = benchmark.pedantic(serve_round, rounds=1, iterations=1)
    assert report.count == 24


def _serve_throughput(
    model, plan, x, workers: int, requests: int, kind: str = "thread"
) -> float:
    """Requests/second over one drain of ``requests`` pre-submitted inputs."""
    with make_pool(kind, model, plan, workers=workers) as executor:
        executor.install()  # workers built outside the measured window
        with ServingEngine(
            executor, max_batch=2, batch_window=0.0, workers=workers
        ) as engine:
            futures = [engine.submit(x[:1]) for _ in range(requests)]
            for f in futures:
                f.result(timeout=120.0)
    return engine.report().throughput


def test_replica_scaling_throughput(serving_setup):
    """Acceptance fence: 4 replica workers >= 1.5x single-worker throughput.

    True parallel speedup needs cores to scale onto: on a single-core
    machine the fence is physically unsatisfiable (all forwards share one
    CPU no matter how many replicas exist), so there the ratio assertion is
    skipped and only sanity is checked.  Correctness of replica serving is
    covered by ``tests/runtime/test_runtime_replica.py``.
    """
    model, transform, x = serving_setup
    plan = compile_plan(model, transform, autotune=True, autotune_repeats=2)
    _serve_throughput(model, plan, x, workers=1, requests=8)  # warm caches
    single = _serve_throughput(model, plan, x, workers=1, requests=32)
    quad = _serve_throughput(model, plan, x, workers=4, requests=32)
    scaling = quad / single
    print(f"\nserving throughput: 1 worker {single:.1f} req/s, "
          f"4 replica workers {quad:.1f} req/s -> {scaling:.2f}x "
          f"({_usable_cores()} usable cores)")
    assert single > 0 and quad > 0
    if _usable_cores() < 2:
        pytest.skip(
            f"replica scaling fence needs >= 2 cores; this machine exposes "
            f"{_usable_cores()} (measured {scaling:.2f}x)"
        )
    assert scaling >= 1.5, f"4 replica workers only {scaling:.2f}x single-worker throughput"


def test_bench_process_pool_serving(benchmark, serving_setup):
    """Serving throughput with 2 process workers draining 16 requests."""
    model, transform, x = serving_setup
    plan = compile_plan(model, transform, autotune=True, autotune_repeats=2)

    def serve_round():
        with ProcessWorkerPool(model, plan, workers=2) as executor:
            with ServingEngine(executor, max_batch=4, batch_window=0.0, workers=2) as engine:
                futures = [engine.submit(x[:1]) for _ in range(16)]
                for f in futures:
                    f.result(timeout=120.0)
        return engine.report()

    report = benchmark.pedantic(serve_round, rounds=1, iterations=1)
    assert report.count == 16


def test_process_pool_scaling_throughput(serving_setup):
    """Acceptance fence: 4 process workers >= 2x single-worker throughput.

    The whole point of the process pool — thread replicas serialise every
    non-BLAS part of a forward on the GIL, worker processes don't, so the
    process pool must scale harder (>= 2x at 4 workers, vs the thread
    pool's 1.5x fence).  Like the replica fence, true parallel speedup
    needs cores to scale onto: on a single-core machine the ratio
    assertion is physically unsatisfiable and is skipped (correctness of
    process-pool serving is covered by
    ``tests/runtime/test_runtime_pool.py`` and ``benchmarks/pool_smoke.py``,
    which run everywhere).
    """
    model, transform, x = serving_setup
    plan = compile_plan(model, transform, autotune=True, autotune_repeats=2)
    _serve_throughput(model, plan, x, workers=1, requests=8, kind="process")  # warm
    single = _serve_throughput(model, plan, x, workers=1, requests=32, kind="process")
    quad = _serve_throughput(model, plan, x, workers=4, requests=32, kind="process")
    scaling = quad / single
    print(f"\nserving throughput: 1 process worker {single:.1f} req/s, "
          f"4 process workers {quad:.1f} req/s -> {scaling:.2f}x "
          f"({_usable_cores()} usable cores)")
    assert single > 0 and quad > 0
    if _usable_cores() < 2:
        pytest.skip(
            f"process-pool scaling fence needs >= 2 cores; this machine "
            f"exposes {_usable_cores()} (measured {scaling:.2f}x)"
        )
    assert scaling >= 2.0, f"4 process workers only {scaling:.2f}x single-worker throughput"


def test_runtime_autotune_speedup(serving_setup):
    """Acceptance fence: autotuned plan >= 1.5x the reference compiled path."""
    model, transform, x = serving_setup
    timings = {}
    plans = {
        "reference": compile_plan(model, transform, backend="einsum-gather"),
        "autotuned": compile_plan(model, transform, autotune=True, autotune_repeats=2),
    }
    for name, plan in plans.items():
        with PlanExecutor(model, plan) as executor:
            executor.run(x)  # warm-up outside the clock
            samples = []
            for _ in range(7):
                t0 = time.perf_counter()
                executor.run(x)
                samples.append(time.perf_counter() - t0)
        timings[name] = sorted(samples)[len(samples) // 2]
    speedup = timings["reference"] / timings["autotuned"]
    choices = plans["autotuned"].backend_choices()
    non_reference = sum(1 for b in choices.values() if b != "einsum-gather")
    print(
        f"\nautotuned {timings['autotuned'] * 1e3:.2f} ms vs reference "
        f"{timings['reference'] * 1e3:.2f} ms per forward -> {speedup:.2f}x; "
        f"{non_reference}/{len(choices)} layers left the reference backend"
    )
    # The tuner must actually be *choosing*: at least one layer shape has a
    # non-reference winner (CI smoke asserts the same on a fresh machine).
    assert non_reference >= 1
    assert speedup >= 1.5, f"autotuned plan only {speedup:.2f}x faster than reference"


def test_runtime_plan_persistence_warm_restart(serving_setup, tmp_path):
    """Acceptance fence: plan load >= 5x faster than compile + autotune.

    The whole point of persistence — a restarted server skips
    re-decomposition, re-compression, and re-micro-benchmarking.  The
    loaded plan must also be *the same plan*: identical ``backend_choices``
    and bit-identical served outputs.
    """
    model, transform, x = serving_setup
    t0 = time.perf_counter()
    plan = compile_plan(model, transform, autotune=True, autotune_repeats=2)
    compile_time = time.perf_counter() - t0
    path = plan.save(tmp_path / "plan.npz")
    load_plan(path, model)  # warm the file cache / import paths
    t0 = time.perf_counter()
    loaded = load_plan(path, model)
    load_time = time.perf_counter() - t0
    speedup = compile_time / load_time
    print(
        f"\ncompile+autotune {compile_time * 1e3:.1f} ms vs plan load "
        f"{load_time * 1e3:.1f} ms -> {speedup:.1f}x "
        f"({path.stat().st_size / 1024:.0f} KiB artifact)"
    )
    assert loaded.backend_choices() == plan.backend_choices()
    with PlanExecutor(model, plan) as executor:
        fresh = executor.run(x)
    with PlanExecutor(model, loaded) as executor:
        warm = executor.run(x)
    np.testing.assert_array_equal(warm, fresh)
    assert speedup >= 5.0, f"plan load only {speedup:.1f}x faster than compile+autotune"


def test_runtime_metrics_overhead(serving_setup):
    """Acceptance fence: metrics-enabled serving within 5 % of disabled.

    The hot path pays one histogram observe per request plus a handful of
    counter increments per micro-batch — bisect into a fixed bucket table
    under an uncontended lock — so instrumentation must be throughput-
    neutral.  Interleaved rounds with best-of medians damp scheduler noise;
    the winning instrumented round also provides the latency percentiles
    for the ``BENCH_runtime.json`` trajectory point.  Like the scaling
    fences, the ratio assertion is skipped on a single-core machine,
    where run-to-run jitter dwarfs the 5 % budget (the measurement and
    trajectory point are still taken everywhere).
    """
    model, transform, x = serving_setup
    plan = compile_plan(model, transform, autotune=True, autotune_repeats=2)
    requests = 48

    def serve_round(metrics: bool):
        with PlanExecutor(model, plan) as executor:
            with ServingEngine(
                executor, max_batch=4, batch_window=0.0, workers=2, metrics=metrics
            ) as engine:
                futures = [engine.submit(x[:1]) for _ in range(requests)]
                for f in futures:
                    f.result(timeout=120.0)
        report = engine.report()
        assert report.count == requests
        return report

    serve_round(True)  # warm caches/threads outside the measurement
    on_reports, off_throughputs = [], []
    for _ in range(5):  # interleaved so drift hits both configs alike
        off_throughputs.append(serve_round(False).throughput)
        on_reports.append(serve_round(True))
    off = max(off_throughputs)
    best = max(on_reports, key=lambda r: r.throughput)
    on = best.throughput
    overhead = 1.0 - on / off
    print(
        f"\nserving throughput: metrics off {off:.1f} req/s, on {on:.1f} req/s "
        f"-> {overhead * 100.0:+.1f}% overhead; instrumented p50 "
        f"{best.p50 * 1e3:.2f} ms / p95 {best.p95 * 1e3:.2f} ms / "
        f"p99 {best.p99 * 1e3:.2f} ms"
    )
    bench_path = Path(__file__).resolve().parents[1] / "BENCH_runtime.json"
    record = {
        "workload": "serving: 48 x 1-sample requests, autotuned sparse "
        "ResNet-18, 2 engine workers, max_batch 4",
        "throughput_rps": round(on, 2),
        "throughput_uninstrumented_rps": round(off, 2),
        "metrics_overhead_pct": round(overhead * 100.0, 2),
        "latency_ms": {
            "p50": round(best.p50 * 1e3, 3),
            "p95": round(best.p95 * 1e3, 3),
            "p99": round(best.p99 * 1e3, 3),
        },
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    # Accumulate a perf trajectory instead of overwriting the single data
    # point: the latest record stays flat at the top level (existing
    # readers key on "throughput_rps" there) and every run appends to a
    # bounded "history" list.
    history: list = []
    if bench_path.exists():
        try:
            previous = json.loads(bench_path.read_text())
        except json.JSONDecodeError:
            previous = {}
        history = list(previous.get("history", []))
        if not history and "throughput_rps" in previous:
            # Seed the trajectory with the pre-history flat record.
            history.append({k: v for k, v in previous.items() if k != "history"})
    history.append(record)
    del history[:-50]
    bench_path.write_text(json.dumps({**record, "history": history}, indent=2) + "\n")
    assert on > 0 and off > 0
    if _usable_cores() < 2:
        pytest.skip(
            f"metrics-overhead fence needs >= 2 cores — on one core the on/off "
            f"comparison measures scheduler jitter, not instrumentation cost; "
            f"this machine exposes {_usable_cores()} "
            f"(measured {overhead * 100.0:+.1f}%)"
        )
    assert overhead <= 0.05, (
        f"metrics-enabled serving {overhead * 100.0:.1f}% slower than disabled "
        f"(fence: 5%)"
    )


def test_runtime_supervision_overhead(serving_setup):
    """Acceptance fence: supervised serving within 5 % of unsupervised.

    The fault-tolerance layer must be free when nothing faults: the
    supervisor thread sleeps between health ticks, pings only idle
    workers, and the request path adds one liveness branch — so a
    process pool with respawn + health checks on must serve within 5 %
    of the same pool with supervision disabled.  Same machine, same
    workload, interleaved best-of rounds (a cross-machine comparison
    against the committed ``BENCH_runtime.json`` absolute numbers would
    fence the hardware, not the code — the baseline is printed for the
    trajectory instead).  Like the scaling fences, the ratio assertion
    is skipped on a single-core machine, where the supervisor thread has
    no spare core to hide on and jitter dwarfs the 5 % budget.
    """
    model, transform, x = serving_setup
    plan = compile_plan(model, transform, autotune=True, autotune_repeats=2)
    requests = 32

    def serve_round(supervised: bool) -> float:
        kwargs = (
            dict(respawn=True)
            if supervised
            else dict(respawn=False, health_interval=0.0)
        )
        with ProcessWorkerPool(model, plan, workers=2, **kwargs) as executor:
            executor.install()  # workers forked outside the measured window
            with ServingEngine(
                executor, max_batch=2, batch_window=0.0, workers=2
            ) as engine:
                futures = [engine.submit(x[:1]) for _ in range(requests)]
                for f in futures:
                    f.result(timeout=120.0)
        report = engine.report()
        assert report.count == requests
        return report.throughput

    serve_round(True)  # warm caches/fork paths outside the measurement
    supervised, unsupervised = [], []
    for _ in range(5):  # interleaved so drift hits both configs alike
        unsupervised.append(serve_round(False))
        supervised.append(serve_round(True))
    on, off = max(supervised), max(unsupervised)
    overhead = 1.0 - on / off
    baseline = Path(__file__).resolve().parents[1] / "BENCH_runtime.json"
    baseline_note = ""
    if baseline.exists():
        recorded = json.loads(baseline.read_text()).get("throughput_rps")
        if recorded:
            baseline_note = f"; BENCH_runtime.json baseline {recorded:.1f} req/s"
    print(
        f"\nprocess-pool serving: unsupervised {off:.1f} req/s, supervised "
        f"{on:.1f} req/s -> {overhead * 100.0:+.1f}% overhead{baseline_note}"
    )
    assert on > 0 and off > 0
    if _usable_cores() < 2:
        pytest.skip(
            f"supervision-overhead fence needs >= 2 cores — on one core the "
            f"supervisor thread necessarily steals serving CPU and the "
            f"comparison measures scheduler jitter; this machine exposes "
            f"{_usable_cores()} (measured {overhead * 100.0:+.1f}%)"
        )
    assert overhead <= 0.05, (
        f"supervised serving {overhead * 100.0:.1f}% slower than unsupervised "
        f"(fence: 5%)"
    )


def test_runtime_compiled_speedup(serving_setup):
    """Acceptance fence: compiled inference >= 3x the per-call path."""
    model, transform, x = serving_setup
    cache = OperandCache()
    timings = {}
    for mode in ("compiled", "per_call"):
        plan = compile_plan(model, transform, cache=cache, mode=mode)
        with PlanExecutor(model, plan) as executor:
            executor.run(x)  # warm-up outside the clock
            executor.reset_stats()
            samples = []
            for _ in range(5):
                t0 = time.perf_counter()
                executor.run(x)
                samples.append(time.perf_counter() - t0)
            timings[mode] = sorted(samples)[len(samples) // 2]  # median
    speedup = timings["per_call"] / timings["compiled"]
    # Recompiling against the shared cache resolves every weight from it:
    # the compile-once contract, visible in the executor's cache counters.
    plan = compile_plan(model, transform, cache=cache)
    n_targets = len(transform.weight_configs)
    with PlanExecutor(model, plan) as executor:
        executor.run(x)
        cache_stats = executor.stats().cache
    assert cache_stats.hits == n_targets
    assert cache_stats.misses == 0  # reset_stats cleared the build-time misses
    assert cache_stats.hit_rate == pytest.approx(1.0)
    print(
        f"\ncompiled {timings['compiled'] * 1e3:.2f} ms vs per-call "
        f"{timings['per_call'] * 1e3:.2f} ms per forward -> {speedup:.2f}x; {cache_stats}"
    )
    assert speedup >= 3.0, f"compiled plan only {speedup:.2f}x faster than per-call"


def test_runtime_shard_scaling_latency(serving_setup):
    """Acceptance fence: sharding one forward across 4 process workers cuts
    its latency >= 1.5x vs the same sharded plan on a single worker.

    The workload is the one intra-layer sharding exists for: a single
    request dominated by one large, heavily *skewed* layer (a block of
    dense rows above a long sparse tail) on the nnz-proportional
    ``scatter-csr`` backend — the kernel whose cost actually tracks the
    equal-nnz budgets the partitioner balances.  Like the other scaling
    fences the ratio assertion is skipped on a single-core machine, but
    the measurement is taken and the ``BENCH_runtime.json`` trajectory
    point recorded everywhere.
    """
    del serving_setup  # shares the module fixture signature, not the model
    from repro.nn.models.mlp import MLP
    from repro.runtime import row_nnz_stats

    model = MLP(512, hidden=(1024,), num_classes=10)
    big = next(layer for _, layer in gemm_layers(model) if layer.weight.data.shape == (1024, 512))
    rng = np.random.default_rng(3)
    w = np.zeros((1024, 512))
    w[:128] = rng.normal(size=(128, 512))  # dense block: the critical path
    tail = np.arange(128, 1024)
    w[tail, rng.integers(0, 512, size=tail.size)] = rng.normal(size=tail.size)
    big.weight.data[...] = w
    transform = TASDTransform(
        weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
    )
    plan = compile_plan(model, transform, backend="scatter-csr", shards=4)
    lp = plan.layers[next(n for n, layer in gemm_layers(model) if layer is big)]
    _, _, _, skew = row_nnz_stats(lp.operand)
    assert skew > 2.0 and lp.shards is not None and lp.shards.num_shards == 4
    x = np.random.default_rng(1).normal(size=(8, 512))

    def sharded_latency(workers: int) -> float:
        with make_pool("process", model, plan, workers=workers) as pool:
            pool.run_sharded(x)  # warm workers, slice caches, CSR prepare
            samples = []
            for _ in range(9):
                t0 = time.perf_counter()
                pool.run_sharded(x)
                samples.append(time.perf_counter() - t0)
        return sorted(samples)[len(samples) // 2]

    single = sharded_latency(1)
    quad = sharded_latency(4)
    speedup = single / quad
    print(
        f"\nsharded forward latency (skewed {lp.shards.rows}-row layer, "
        f"row-skew {skew:.1f}x, 4 shards at {lp.shards.imbalance:.3f}x nnz "
        f"imbalance): 1 process worker {single * 1e3:.2f} ms, 4 workers "
        f"{quad * 1e3:.2f} ms -> {speedup:.2f}x ({_usable_cores()} usable cores)"
    )
    assert single > 0 and quad > 0

    bench_path = Path(__file__).resolve().parents[1] / "BENCH_runtime.json"
    record = {
        "workload": "intra-layer sharding: single forward, skewed 1024x512 "
        "scatter-csr layer split into 4 equal-nnz shards",
        "latency_ms_1_worker": round(single * 1e3, 3),
        "latency_ms_4_workers": round(quad * 1e3, 3),
        "shard_speedup": round(speedup, 2),
        "shard_imbalance": round(lp.shards.imbalance, 4),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    # Same bounded trajectory as the serving record; the flat top-level
    # record (keyed on "throughput_rps") belongs to the metrics-overhead
    # fence, so the latest shard point rides a dedicated key beside it.
    previous = {}
    if bench_path.exists():
        try:
            previous = json.loads(bench_path.read_text())
        except json.JSONDecodeError:
            previous = {}
    history = list(previous.get("history", []))
    history.append(record)
    del history[:-50]
    previous["shard_scaling"] = record
    previous["history"] = history
    bench_path.write_text(json.dumps(previous, indent=2) + "\n")

    if _usable_cores() < 2:
        pytest.skip(
            f"shard-scaling fence needs >= 2 cores; this machine exposes "
            f"{_usable_cores()} (measured {speedup:.2f}x)"
        )
    assert speedup >= 1.5, (
        f"4 process workers only cut sharded latency {speedup:.2f}x vs 1 worker"
    )
