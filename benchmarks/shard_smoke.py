"""Quick-bench smoke: intra-layer sharding must never cost correctness.

Three claims, all cheap enough for every push:

1. **Balance.** On a deliberately skewed layer (a few dense rows, a long
   sparse tail) the equal-nnz partitioner lands within 1.05x of perfectly
   balanced shard budgets, while the naive equal-row split is measured —
   not assumed — to be far worse.
2. **Bit-exactness under load.** Serving a request stream in latency mode
   (``submit(..., shard=True)`` scattering each forward across process
   workers) returns outputs bit-identical to an in-process
   :class:`PlanExecutor` over the same plan.
3. **Fault tolerance.** SIGKILLing workers while sharded forwards are in
   flight still yields the exact results — dead workers' shards requeue
   onto survivors and the supervisor respawns the fleet.

Runs everywhere, including single-core CI boxes (scaling *fences* live in
``test_bench_runtime.py``; this smoke is correctness-only)::

    PYTHONPATH=src python benchmarks/shard_smoke.py
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time

import numpy as np

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import (
    OperandCache,
    PlanExecutor,
    ServingEngine,
    compile_plan,
    make_pool,
    make_shard_spec,
    row_nnz_stats,
)
from repro.tasder.transform import TASDTransform

WORKERS = 2
REQUESTS = 12
SHARDS = 3
CFG = TASDConfig.parse("2:4")


def check_skewed_layer_balance() -> None:
    """Equal-nnz shard budgets stay within 1.05x balance on a skewed layer."""
    rows, cols, heavy = 512, 512, 48
    rng = np.random.default_rng(7)
    w = np.zeros((rows, cols))
    w[:heavy] = rng.normal(size=(heavy, cols))
    tail = np.arange(heavy, rows)
    w[tail, rng.integers(0, cols, size=tail.size)] = rng.normal(size=tail.size)
    operand = OperandCache().compress(w, CFG)

    _, _, _, skew = row_nnz_stats(operand)
    nnz_spec = make_shard_spec("skewed", operand, 4)
    row_spec = make_shard_spec("skewed", operand, 4, strategy="rows")
    assert skew > 2.0, f"synthetic layer is not skewed (row-skew {skew:.2f}x)"
    assert row_spec.imbalance > 1.5, (
        f"equal-row split unexpectedly balanced ({row_spec.imbalance:.2f}x) — "
        f"the comparison below would be vacuous"
    )
    assert nnz_spec.imbalance <= 1.05, (
        f"equal-nnz shard imbalance {nnz_spec.imbalance:.3f}x exceeds 1.05x"
    )
    assert nnz_spec.imbalance <= row_spec.imbalance
    print(
        f"skewed layer ({rows} rows, row-skew {skew:.1f}x): equal-nnz "
        f"imbalance {nnz_spec.imbalance:.3f}x vs measured equal-row "
        f"{row_spec.imbalance:.2f}x across {nnz_spec.num_shards} shards"
    )


def main() -> int:
    check_skewed_layer_balance()

    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    plan = compile_plan(model, transform, shards=SHARDS)
    tabled = sum(1 for lp in plan.layers.values() if lp.shards is not None)
    assert tabled > 0, "no layer received a shard table"
    rng = np.random.default_rng(0)
    requests = [rng.normal(size=(1, 3, 8, 8)) for _ in range(REQUESTS)]

    with PlanExecutor(model, plan) as executor:
        refs = [executor.run(x) for x in requests]

    # -- sharded serving under load: bit-identical to the in-process plan --
    t0 = time.perf_counter()
    with make_pool("process", model, plan, workers=WORKERS) as pool:
        with ServingEngine(pool, max_batch=1, batch_window=0.0, workers=WORKERS) as engine:
            futures = [engine.submit(x, shard=True) for x in requests]
            outputs = [f.result(timeout=120.0) for f in futures]
        forwards = pool.sharded_forwards
    serve_time = time.perf_counter() - t0
    for i, (out, ref) in enumerate(zip(outputs, refs)):
        np.testing.assert_array_equal(
            out, ref, err_msg=f"request {i}: sharded forward diverged"
        )
    assert forwards == REQUESTS, (forwards, REQUESTS)
    print(
        f"{REQUESTS} latency-mode requests served bit-identically "
        f"({tabled} layers x {SHARDS} shards scattered over {WORKERS} process "
        f"workers; {serve_time * 1e3:.0f} ms)"
    )

    # -- SIGKILL workers while sharded forwards are in flight --------------
    kills = 2
    with make_pool("process", model, plan, workers=WORKERS) as pool:
        np.testing.assert_array_equal(pool.run_sharded(requests[0]), refs[0])

        stop = threading.Event()

        def assassin() -> None:
            for _ in range(kills):
                if stop.wait(0.05):
                    return
                pids = pool.worker_pids()
                if pids:
                    os.kill(pids[0], signal.SIGKILL)

        killer = threading.Thread(target=assassin, daemon=True)
        killer.start()
        try:
            for round_idx in range(20):
                for i, (x, ref) in enumerate(zip(requests[:3], refs[:3])):
                    np.testing.assert_array_equal(
                        pool.run_sharded(x),
                        ref,
                        err_msg=f"round {round_idx} request {i}: sharded "
                        f"forward diverged after a worker SIGKILL",
                    )
        finally:
            stop.set()
            killer.join(timeout=10.0)
        retries = pool.shard_retries
        deaths = pool.deaths
    assert deaths >= 1, "the assassin never landed a kill"
    print(
        f"{kills} worker SIGKILLs under sharded fire: 60 forwards all "
        f"bit-identical ({deaths} deaths observed, {retries} shard tasks "
        f"requeued onto survivors)"
    )
    print("SHARD SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
