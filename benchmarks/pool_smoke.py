"""Quick-bench smoke: process-pool serving must equal thread-pool serving.

Compiles a small sparse model, serves the same request stream through the
thread worker pool and the process worker pool (workers attached to the
compiled plan via shared memory), and asserts the outputs are
**bit-identical** and that both pools merge per-worker counters into a
consistent ``stats()`` view.  Runs everywhere — including single-core CI
boxes, where the scaling *fences* are skipped but correctness must still
hold.  Run by CI on every push::

    PYTHONPATH=src python benchmarks/pool_smoke.py
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import ServingEngine, compile_plan, make_pool
from repro.tasder.transform import TASDTransform

WORKERS = 2
REQUESTS = 12


def _serve(kind: str, model, plan, requests) -> tuple[list[np.ndarray], object, object]:
    with make_pool(kind, model, plan, workers=WORKERS) as pool:
        with ServingEngine(pool, max_batch=1, batch_window=0.0, workers=WORKERS) as engine:
            futures = [engine.submit(x) for x in requests]
            outputs = [f.result(timeout=120.0) for f in futures]
        stats = pool.stats()
    return outputs, engine.report(), stats


def main() -> int:
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
    )
    plan = compile_plan(model, transform)
    rng = np.random.default_rng(0)
    requests = [rng.normal(size=(1, 3, 8, 8)) for _ in range(REQUESTS)]

    t0 = time.perf_counter()
    thread_out, thread_report, thread_stats = _serve("thread", model, plan, requests)
    thread_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    process_out, process_report, process_stats = _serve("process", model, plan, requests)
    process_time = time.perf_counter() - t0

    assert thread_report.count == process_report.count == REQUESTS
    for i, (a, b) in enumerate(zip(thread_out, process_out)):
        np.testing.assert_array_equal(
            b, a, err_msg=f"request {i}: process pool diverged from thread pool"
        )
    print(f"{REQUESTS} requests served bit-identically by both pools "
          f"(thread {thread_time * 1e3:.0f} ms, process {process_time * 1e3:.0f} ms, "
          f"{WORKERS} workers each)")

    # Counter merging: max_batch=1, so every layer ran once per request in
    # both substrates, regardless of which worker served it.
    for name, stats in (("thread", thread_stats), ("process", process_stats)):
        assert stats.batches == REQUESTS, (name, stats.batches)
        bad = {ln: c.calls for ln, c in stats.layers.items() if c.calls != REQUESTS}
        assert not bad, f"{name} pool counters out of step: {bad}"
        assert stats.total.structured_macs > 0
        widths = stats.observed_cols()
        assert widths, f"{name} pool recorded no GEMM widths"
    print(f"per-worker counters merge consistently: {len(thread_stats.layers)} layers x "
          f"{REQUESTS} calls in both pools; observed widths recorded for "
          f"{len(thread_stats.observed_cols())} layers")
    print("POOL SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
