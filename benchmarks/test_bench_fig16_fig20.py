"""EXP-F16 / EXP-RS / EXP-F20 — the real-system sweep and the model zoo."""

from repro.experiments import fig16_gpu, fig20_model_zoo


def test_fig16_gpu_resnet34(once):
    result = once(fig16_gpu.run)
    print("\n" + result.table())
    best = result.best_valid
    print(f"\nbest valid point: {best.num_layers} layers, "
          f"{best.speedup - 1:.1%} speed-up, accuracy {best.accuracy:.4f} "
          f"(paper: 28-39 % with <=1.5 % accuracy drop)")
    # Section 5.5's shape: >=20 % speed-up within the 99 % gate.
    assert best.speedup > 1.20
    # Speed-up grows monotonically with converted layers.
    speedups = [p.speedup for p in result.points]
    assert speedups == sorted(speedups)


def test_fig20_model_zoo(once):
    result = once(fig20_model_zoo.run)
    print("\n" + result.table())
    # Paper: ~49 % MAC reduction for TASD-W zoo, ~32 % for TASD-A zoo.
    assert result.mean_mac_fraction("TASD-W") < 0.75
    assert result.mean_mac_fraction("TASD-A") < 0.95
    for entry in result.entries:
        if entry.mode == "TASD-W":
            assert entry.meets_gate, entry.model
