"""Design-choice ablation benches (DESIGN.md §5)."""

import numpy as np

from repro.core.series import TASDConfig
from repro.experiments import ablations


def test_ablation_greedy_extraction(once):
    result = once(ablations.ablate_greedy_extraction)
    print(
        f"\ngreedy vs random 2:4 extraction at density {result.density}: "
        f"dropped magnitude {result.greedy_dropped_magnitude:.3f} vs "
        f"{result.random_dropped_magnitude:.3f} "
        f"({result.advantage:.1f}x worse without greedy)"
    )
    assert result.advantage > 1.5


def test_ablation_dataflow(once):
    result = once(ablations.ablate_dataflow)
    print(
        f"\ndecomposition-aware dataflow on {result.layer} ({result.config}): "
        f"naive per-term B/C re-fetch costs {result.penalty:.2f}x EDP"
    )
    assert result.penalty > 1.05


def test_ablation_tasd_units(once):
    result = once(ablations.ablate_tasd_units)
    print("\n" + result.table())
    stalls = {u: s for u, s, _ in result.rows}
    assert stalls[result.little_bound] == 0


def test_ablation_alpha_sensitivity(once):
    """α sensitivity of the TASD-A rule on the full-size dense ResNet50."""
    from repro.tasder.config import TTC_VEGETA_M8
    from repro.workloads import dense_resnet50

    def sweep():
        wl = dense_resnet50()
        rows = []
        for alpha in (-0.1, 0.0, 0.1, 0.2, 0.3):
            densities = [
                TTC_VEGETA_M8.select_by_sparsity(1.0 - l.stat_density, alpha).density
                for l in wl.layers
            ]
            macs = sum(l.shape.macs for l in wl.layers)
            eff = sum(d * l.shape.macs for d, l in zip(densities, wl.layers)) / macs
            rows.append((alpha, eff))
        return rows

    rows = once(sweep)
    print("\nalpha  MAC fraction (dense ResNet50, TTC-VEGETA-M8 menu)")
    for alpha, eff in rows:
        print(f"{alpha:+.1f}   {eff:.3f}")
    fracs = [eff for _, eff in rows]
    assert fracs == sorted(fracs, reverse=True)  # larger α ⇒ more aggressive
