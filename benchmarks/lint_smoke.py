"""Lint smoke: the CI gate must stay fast enough to run on every push.

Times a cold run (empty cache: every file parsed, every checker walked)
and a warm run (content digests unchanged: cached per-file results
replay, only the global cross-file pass re-executes) of ``repro.lint``
over the whole repository, into a throwaway cache so a developer's real
``.lint-cache.json`` is never touched.  Asserts:

- **clean repo** — zero unbaselined findings and zero unparseable files
  on both runs (the same gate ``python -m repro.lint --strict`` applies);
- **the cache works** — the warm run replays every file from cache;
- **warm ≤ 1s** — the latency budget that keeps the lint gate viable as
  a pre-commit/CI step; a checker that regresses the warm path past it
  fails here before it annoys anyone.

Run it yourself::

    PYTHONPATH=src python benchmarks/lint_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
WARM_BUDGET_SECONDS = 1.0


def main() -> int:
    paths = [REPO_ROOT / p for p in ("src", "tests", "benchmarks")]
    baseline = REPO_ROOT / "lint-baseline.json"
    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp) / "lint-cache.json"

        t0 = time.perf_counter()
        cold = lint_paths(paths, root=REPO_ROOT, baseline_path=baseline, cache_path=cache)
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = lint_paths(paths, root=REPO_ROOT, baseline_path=baseline, cache_path=cache)
        warm_s = time.perf_counter() - t0

    print(
        f"cold: {cold.files} files, {cold.cache_hits} cached, "
        f"{len(cold.diagnostics)} finding(s) in {cold_s:.2f}s"
    )
    print(
        f"warm: {warm.files} files, {warm.cache_hits} cached, "
        f"{len(warm.diagnostics)} finding(s) in {warm_s:.2f}s "
        f"(budget {WARM_BUDGET_SECONDS:.1f}s)"
    )

    for result, label in ((cold, "cold"), (warm, "warm")):
        assert result.errors == [], f"{label} run hit unparseable files: {result.errors}"
        assert result.diagnostics == [], (
            f"{label} run found unbaselined findings:\n"
            + "\n".join(d.render() for d in result.diagnostics)
        )
        assert result.stale_baseline == [], (
            f"{label} run found stale baseline entries (tighten the ratchet)"
        )
    assert warm.cache_hits == warm.files, (
        f"warm run should replay every file from cache, "
        f"got {warm.cache_hits}/{warm.files}"
    )
    assert warm_s <= WARM_BUDGET_SECONDS, (
        f"warm lint took {warm_s:.2f}s, over the {WARM_BUDGET_SECONDS:.1f}s budget"
    )
    print("lint smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
