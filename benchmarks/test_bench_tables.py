"""EXP-T1/T2/T3/T4 — regenerate the paper's tables."""

from repro.experiments import tables


def test_table01_capabilities(once):
    print("\n" + once(tables.table1))


def test_table02_patterns(once):
    out = once(tables.table2)
    print("\n" + out)
    assert "2:8+1:8" in out  # Table 2's signature composition


def test_table03_designs(once):
    print("\n" + once(tables.table3))


def test_table04_layers(once):
    out = once(tables.table4)
    print("\n" + out)
    assert "M784-N128-K1152" in out
