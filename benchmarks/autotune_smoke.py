"""Quick-bench smoke: the compile-time autotuner must actually choose.

Compiles a small sparse model with ``autotune=True`` and asserts that a
non-reference backend wins on at least one layer shape — if every layer
falls back to ``einsum-gather``, either the alternative kernels regressed
or the tuner stopped measuring.  Run by CI on every push::

    PYTHONPATH=src python benchmarks/autotune_smoke.py
"""

from __future__ import annotations

import sys

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import DEFAULT_BACKEND, compile_plan
from repro.tasder.transform import TASDTransform


def main() -> int:
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
    )
    plan = compile_plan(model, transform, autotune=True, autotune_repeats=3)
    print(plan.summary())
    choices = plan.backend_choices()
    non_reference = {n: b for n, b in choices.items() if b != DEFAULT_BACKEND}
    print(
        f"\n{len(non_reference)}/{len(choices)} compiled layers chose a "
        f"non-reference backend"
    )
    if not non_reference:
        print("FAIL: autotuner never beat the reference kernel on any layer shape")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
