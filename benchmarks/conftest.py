"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables/figures (DESIGN.md §4)
and prints the corresponding rows/series, so ``pytest benchmarks/
--benchmark-only -s`` reproduces the whole evaluation section.  Heavy
experiment drivers run once per benchmark (pedantic mode) — the timing
numbers double as a performance regression fence for the library itself.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapper around :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
