"""Swap smoke: a hot plan-swap under load must be invisible to clients.

The acceptance scenario for zero-downtime operations, run by CI on every
push.  An unswapped run establishes the reference outputs; the swap run
serves the same request stream while (a) a hot swap rolls the fleet onto
an equivalent re-compiled plan mid-stream and (b) a *corrupt* candidate
(same weight fingerprint, skewed arithmetic) is pushed and must be
thrown out by the canary.  Asserts:

- **zero failed requests** — every future resolves across both the
  committed swap and the forced rollback;
- **bit-identical outputs** — the swap run matches the unswapped run
  exactly, request by request (the exact backends make an equivalent
  plan compute bit-for-bit the same function);
- **typed rejection** — the corrupt candidate raises ``SwapRejected``
  and the live plan keeps serving;
- **graceful drain** — the engine drains to an empty queue at the end,
  and the swap/rollback counters are visible in the metrics snapshot.

Run it yourself::

    PYTHONPATH=src python benchmarks/swap_smoke.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import (
    ProcessWorkerPool,
    ServingEngine,
    SwapRejected,
    compile_plan,
    skewed_plan,
)
from repro.tasder.transform import TASDTransform

WORKERS = 2
REQUESTS = 24
SWAP_AFTER = 8  # hot-swap once this many requests are in flight


def _build():
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
    )
    return model, transform


def main() -> int:
    model, transform = _build()
    plan = compile_plan(model, transform)
    candidate = compile_plan(model, transform)  # equivalent, freshly compiled
    corrupt = skewed_plan(candidate)  # passes the identity gate, wrong math
    rng = np.random.default_rng(0)
    requests = [rng.normal(size=(1, 3, 8, 8)) for _ in range(REQUESTS)]
    canary = rng.normal(size=(2, 3, 8, 8))

    # Unswapped run: the reference outputs.  max_batch=1 pins the batch
    # composition (every 1-sample request is its own GEMM), so the swap
    # run below is comparable bit-for-bit: coalescing would change GEMM
    # row counts between runs and with them the last-ulp rounding.
    with ProcessWorkerPool(model, plan, workers=WORKERS) as pool:
        with ServingEngine(pool, max_batch=1, workers=WORKERS) as engine:
            futures = [engine.submit(x) for x in requests]
            reference = [f.result(timeout=120.0) for f in futures]
    print(f"unswapped run: {REQUESTS} requests served")

    # Swap run: same stream, one committed hot swap + one forced rollback.
    pool = ProcessWorkerPool(
        model,
        plan,
        workers=WORKERS,
        respawn_backoff=0.01,
        backoff_cap=0.1,
        health_interval=0.05,
    )
    with pool:
        engine = ServingEngine(pool, max_batch=1, workers=WORKERS, max_retries=4)
        engine.start()
        futures = [engine.submit(x) for x in requests[:SWAP_AFTER]]

        info = engine.swap_plan(candidate, canary=canary)
        assert info["swapped_workers"] == WORKERS, info
        print(
            f"hot swap committed mid-stream: {info['swapped_workers']} workers "
            f"rolled behind a {info['canary_samples']}-sample canary"
        )

        futures += [engine.submit(x) for x in requests[SWAP_AFTER : 2 * SWAP_AFTER]]

        try:
            engine.swap_plan(corrupt, canary=canary)
            raise AssertionError("corrupt candidate was accepted")
        except SwapRejected as exc:
            print(f"corrupt candidate thrown out by the canary: {exc.reason}")

        futures += [engine.submit(x) for x in requests[2 * SWAP_AFTER :]]

        failures = 0
        outputs = []
        for i, f in enumerate(futures):
            try:
                outputs.append(f.result(timeout=120.0))
            # lint: disable=broad-except — every client-visible failure
            # of any type is counted and flunks the smoke's assert below
            except Exception as exc:
                failures += 1
                print(f"request {i} FAILED: {type(exc).__name__}: {exc}")
        assert failures == 0, f"{failures} client-visible failures across the swaps"
        assert len(outputs) == REQUESTS
        for i, (got, want) in enumerate(zip(outputs, reference)):
            np.testing.assert_array_equal(
                got, want, err_msg=f"request {i}: swap run diverged from unswapped run"
            )
        print(f"swap run: {REQUESTS}/{REQUESTS} requests ok, outputs bit-identical")

        drained = engine.drain(timeout=60.0)
        assert drained, "drain timed out with work pending"
        assert engine.queue_depth == 0
        snap = engine.metrics_snapshot()
        swaps = snap["tasd_plan_swaps_total"]["series"][0]["value"]
        rollbacks = snap["tasd_swap_rollbacks_total"]["series"][0]["value"]
        assert swaps == 1.0, f"expected 1 committed swap, metrics say {swaps}"
        assert rollbacks == 1.0, f"expected 1 rollback, metrics say {rollbacks}"
        print(
            f"drained to an empty queue; metrics: {int(swaps)} swap committed, "
            f"{int(rollbacks)} rollback recorded"
        )
    print("SWAP SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
