"""EXP-F12 / EXP-F13 — regenerate Fig. 12 (EDP) and Fig. 13 (latency/energy).

Prints the same rows the paper plots: per-representative-layer and Overall
normalized EDP for every Table 3 design, then the latency/energy pairs.
"""

from repro.experiments import fig12_edp


def test_fig12_edp(once):
    result = once(fig12_edp.run)
    print("\n" + result.edp_table())
    # Headline shape checks (details in tests/experiments).
    assert result.cell("Sparse ResNet50", "TTC-VEGETA-M8").edp < 0.3
    assert result.cell("Dense BERT", "DSTC").edp > 1.5
    m8 = result.geomean_edp("TTC-VEGETA-M8")
    print(f"\nTTC-VEGETA-M8 geomean EDP: {m8:.3f} "
          f"(paper: ~0.30 => 70 % average improvement)")


def test_fig13_latency_energy(once):
    result = once(fig12_edp.run)
    print("\n" + result.latency_energy_table())
    for wl in result.workloads:
        assert result.cell(wl, "TTC-VEGETA-M8").energy < 1.0
