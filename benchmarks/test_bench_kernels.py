"""Micro-benchmarks of the functional kernels (real repeated timing).

Unlike the figure benches (one-shot experiment drivers), these measure the
library's own hot paths with full pytest-benchmark statistics.
"""

import numpy as np
import pytest

from repro.core import NMPattern, TASDConfig, nm_compress, nm_matmul, pattern_view, tasd_matmul
from repro.gpu import compress_2to4, prune_2to4, sparse_matmul_2to4


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(256, 512)) * (rng.random((256, 512)) < 0.5)
    b = rng.normal(size=(512, 128))
    return a, b


def test_kernel_pattern_view(benchmark, operands):
    a, _ = operands
    out = benchmark(pattern_view, a, NMPattern(2, 8))
    assert out.shape == a.shape


def test_kernel_decompose_two_terms(benchmark, operands):
    a, _ = operands
    config = TASDConfig.parse("4:8+1:8")
    dec = benchmark(config.apply, a)
    assert dec.order == 2


def test_kernel_dense_matmul_reference(benchmark, operands):
    a, b = operands
    benchmark(np.matmul, a, b)


def test_kernel_nm_matmul(benchmark, operands):
    a, b = operands
    c = nm_compress(pattern_view(a, NMPattern(2, 8)), NMPattern(2, 8))
    out = benchmark(nm_matmul, c, b)
    assert out.shape == (256, 128)


def test_kernel_tasd_matmul(benchmark, operands):
    a, b = operands
    config = TASDConfig.parse("4:8+1:8")
    out = benchmark(tasd_matmul, a, b, config)
    assert out.shape == (256, 128)


def test_kernel_2to4_compress(benchmark):
    rng = np.random.default_rng(1)
    w = prune_2to4(rng.normal(size=(512, 512)))
    benchmark(compress_2to4, w)


def test_kernel_2to4_matmul(benchmark):
    rng = np.random.default_rng(2)
    w = prune_2to4(rng.normal(size=(256, 512)))
    x = rng.normal(size=(512, 64))
    c = compress_2to4(w)
    out = benchmark(sparse_matmul_2to4, c, x)
    assert np.allclose(out, w @ x)
