"""Chaos smoke: serving must survive worker kills with zero visible failures.

The acceptance scenario for the fault-tolerance layer, run by CI on every
push.  An unharmed run establishes the reference outputs; the chaos run
serves the same request stream while a :class:`ChaosMonkey` SIGKILLs one
live process-pool worker after every few requests.  Asserts:

- **zero failed requests** — every future resolves (worker-crash retries
  are invisible to clients);
- **bit-identical outputs** — the chaos run matches the unharmed run
  exactly, request by request;
- **the pool heals** — the supervisor returns it to the configured
  worker count once the killing stops, and the respawn/death counters
  are visible in the engine's metrics snapshot.

Run it yourself::

    PYTHONPATH=src python benchmarks/chaos_smoke.py
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import ChaosMonkey, ProcessWorkerPool, ServingEngine, compile_plan
from repro.tasder.transform import TASDTransform

WORKERS = 2
REQUESTS = 24
KILL_EVERY = 4  # SIGKILL one live worker after every KILL_EVERY requests


def _wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def main() -> int:
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
    )
    plan = compile_plan(model, transform)
    rng = np.random.default_rng(0)
    requests = [rng.normal(size=(1, 3, 8, 8)) for _ in range(REQUESTS)]

    # Unharmed run: the reference outputs.
    with ProcessWorkerPool(model, plan, workers=WORKERS) as pool:
        with ServingEngine(pool, max_batch=2, workers=WORKERS) as engine:
            reference = [engine.infer(x, timeout=120.0) for x in requests]
    print(f"unharmed run: {REQUESTS} requests served")

    # Chaos run: same stream, a worker SIGKILLed every few requests.
    pool = ProcessWorkerPool(
        model,
        plan,
        workers=WORKERS,
        respawn=True,
        max_respawns=50,
        respawn_window=120.0,
        respawn_backoff=0.01,
        health_interval=0.05,
    )
    with pool:
        with ServingEngine(pool, max_batch=2, workers=WORKERS, max_retries=4) as engine:
            monkey = ChaosMonkey(pool)
            outputs = []
            failures = 0
            for i, x in enumerate(requests):
                if i % KILL_EVERY == 0:
                    monkey.kill_one()
                try:
                    outputs.append(engine.infer(x, timeout=120.0))
                # lint: disable=broad-except — every client-visible failure
                # of any type is counted and flunks the smoke's assert below
                except Exception as exc:
                    failures += 1
                    print(f"request {i} FAILED: {type(exc).__name__}: {exc}")
            retried = sum(1 for s in engine.report().requests if s.attempts > 1)
            snap = engine.metrics_snapshot()
        assert failures == 0, f"{failures} client-visible failures under chaos"
        assert len(outputs) == REQUESTS
        for i, (a, b) in enumerate(zip(reference, outputs)):
            np.testing.assert_array_equal(
                b, a, err_msg=f"request {i}: chaos run diverged from unharmed run"
            )
        print(
            f"chaos run: {REQUESTS}/{REQUESTS} requests ok under {monkey.kills} "
            f"SIGKILLs ({retried} recorded retries), outputs bit-identical"
        )

        # The supervisor returns the pool to its configured strength.
        assert _wait_until(lambda: len(pool.worker_pids()) == WORKERS), (
            f"pool stuck at {len(pool.worker_pids())}/{WORKERS} workers"
        )
        assert not pool.degraded, "breaker tripped on a survivable kill rate"
        respawns = snap["tasd_worker_respawns_total"]["series"][0]["value"]
        deaths = snap["tasd_worker_deaths_total"]["series"][0]["value"]
        assert deaths >= 1, "kills happened but no death was counted"
        print(
            f"pool healed to {WORKERS}/{WORKERS} workers "
            f"(deaths {int(deaths)}, respawns {int(respawns)} at last scrape; "
            f"final respawns {pool.respawns})"
        )
    print("CHAOS SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
