"""Quick-bench smoke: the live /metrics endpoint must agree with the report.

Serves a request stream over a 4-worker process pool with the metrics
exporter running, scrapes its own ``/metrics`` and ``/metrics.json`` over
HTTP mid-flight, and asserts the scrape is *coherent*: the request-latency
histogram's total equals the engine report's served count, every promised
metric family is present (per-layer GEMM histograms merged across worker
processes, cache counters, per-worker liveness gauges), and ``/healthz``
reports all workers alive.  Runs everywhere — no scaling fences, just
telemetry correctness.  Run by CI on every push::

    PYTHONPATH=src python benchmarks/metrics_smoke.py
"""

from __future__ import annotations

import json
import sys
import urllib.request

import numpy as np

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import ServingEngine, compile_plan, make_pool
from repro.tasder.transform import TASDTransform

WORKERS = 4
REQUESTS = 16

REQUIRED_FAMILIES = (
    "tasd_serve_requests_total",
    "tasd_serve_samples_total",
    "tasd_serve_batches_total",
    "tasd_serve_request_latency_seconds",
    "tasd_serve_queue_wait_seconds",
    "tasd_serve_batch_size",
    "tasd_serve_batch_occupancy",
    "tasd_layer_calls_total",
    "tasd_layer_gemm_latency_seconds",
    "tasd_cache_hits_total",
    "tasd_cache_misses_total",
    "tasd_worker_alive",
    "tasd_worker_requests_total",
    "tasd_serve_queue_depth",
)


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10.0) as resp:
        assert resp.status == 200, f"{url} -> HTTP {resp.status}"
        return resp.read()


def main() -> int:
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
    )
    plan = compile_plan(model, transform)
    rng = np.random.default_rng(0)
    requests = [rng.normal(size=(1, 3, 8, 8)) for _ in range(REQUESTS)]

    with make_pool("process", model, plan, workers=WORKERS) as pool:
        with ServingEngine(pool, max_batch=4, batch_window=0.002, workers=WORKERS) as engine:
            with engine.serve_metrics(port=0) as server:
                futures = [engine.submit(x) for x in requests]
                for f in futures:
                    f.result(timeout=120.0)
                text = _get(server.url + "/metrics").decode()
                snap = json.loads(_get(server.url + "/metrics.json"))
                health = json.loads(_get(server.url + "/healthz"))
                statusz = _get(server.url + "/statusz").decode()
        report = engine.report()

    for family in REQUIRED_FAMILIES:
        assert family in snap, f"family {family} missing from /metrics.json"
        assert family in text, f"family {family} missing from /metrics"

    # The scrape and the report describe the same traffic.
    (latency,) = snap["tasd_serve_request_latency_seconds"]["series"]
    assert latency["count"] == report.count == REQUESTS, (
        f"latency histogram count {latency['count']} != report count {report.count}"
    )
    assert snap["tasd_serve_requests_total"]["series"][0]["value"] == REQUESTS
    assert snap["tasd_serve_samples_total"]["series"][0]["value"] == report.samples
    assert abs(latency["sum"] - sum(r.latency for r in report.requests)) < 1e-6

    # Every worker process is visible, alive, and the per-worker served
    # counts add up to the batches the pool actually ran.
    alive = {
        s["labels"]["worker"]: s["value"] for s in snap["tasd_worker_alive"]["series"]
    }
    assert len(alive) == WORKERS and all(v == 1.0 for v in alive.values()), alive
    served = sum(s["value"] for s in snap["tasd_worker_requests_total"]["series"])
    batches = snap["tasd_serve_batches_total"]["series"][0]["value"]
    assert served == batches, f"worker served counts {served} != batches {batches}"
    assert health["ok"] and health["workers_alive"] == WORKERS, health

    # Per-layer GEMM histograms shipped by the worker processes merged in:
    # each compiled layer's histogram count equals its call counter.
    calls = {
        s["labels"]["layer"]: s["value"]
        for s in snap["tasd_layer_calls_total"]["series"]
    }
    for s in snap["tasd_layer_gemm_latency_seconds"]["series"]:
        layer = s["labels"]["layer"]
        assert s["count"] == calls[layer], (
            f"layer {layer}: histogram count {s['count']} != calls {calls[layer]}"
        )
    compiled = [n for n, lp in plan.layers.items() if lp.mode == "compiled"]
    assert all(calls.get(name, 0) > 0 for name in compiled)

    assert "recent requests" in statusz

    print(
        f"metrics smoke OK: {REQUESTS} requests over {WORKERS} process workers; "
        f"{len(snap)} metric families, {len(text.splitlines())} exposition lines; "
        f"latency histogram count == report count == {report.count}; "
        f"p50 {report.p50 * 1e3:.2f} ms / p99 {report.p99 * 1e3:.2f} ms"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
