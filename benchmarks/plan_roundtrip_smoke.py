"""Quick-bench smoke: a persisted plan must round-trip exactly.

Compiles a small sparse model with ``autotune=True``, saves the plan to a
``.npz`` artifact, reloads it, and asserts that the warm restart preserves
the autotuned backend choices and serves bit-identical outputs — then that
a drifted weight is *refused* instead of served approximately.  Run by CI
on every push::

    PYTHONPATH=src python benchmarks/plan_roundtrip_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import PlanDigestError, PlanExecutor, compile_plan, load_plan
from repro.tasder.transform import TASDTransform


def main() -> int:
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
    )
    t0 = time.perf_counter()
    plan = compile_plan(model, transform, autotune=True, autotune_repeats=3)
    compile_time = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmpdir:
        path = Path(tmpdir) / "plan.npz"
        plan.save(path)
        t0 = time.perf_counter()
        loaded = load_plan(path, model)
        load_time = time.perf_counter() - t0
        print(
            f"compile+autotune {compile_time * 1e3:.1f} ms, plan load "
            f"{load_time * 1e3:.1f} ms ({path.stat().st_size / 1024:.0f} KiB artifact)"
        )

        if loaded.backend_choices() != plan.backend_choices():
            print("FAIL: loaded plan lost the autotuned backend choices")
            return 1

        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        with PlanExecutor(model, plan) as executor:
            fresh = executor.run(x)
        with PlanExecutor(model, loaded) as executor:
            warm = executor.run(x)
        if not np.array_equal(fresh, warm):
            print("FAIL: loaded plan served different outputs than the fresh plan")
            return 1

        model.head.weight.data[0, 0] += 1.0  # drift one weight
        try:
            load_plan(path, model)
        except PlanDigestError as exc:
            print(f"stale artifact refused as expected: {exc}")
        else:
            print("FAIL: plan loaded against drifted weights instead of refusing")
            return 1

    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
