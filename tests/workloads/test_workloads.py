"""Tests for full-size layer shapes and the evaluation workload suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import series_expected_dropped_fraction
from repro.hw import build_model
from repro.workloads import (
    PAPER_WORKLOADS,
    bert_layers,
    build_layer_specs,
    convnext_layers,
    dense_bert,
    dense_resnet50,
    representative_layers,
    resnet_layers,
    select_config_by_drop_cap,
    sparse_bert,
    sparse_resnet50,
    vgg_layers,
    vit_layers,
)
from repro.tasder.config import TTC_VEGETA_M8, TTC_STC_M4


class TestShapes:
    def test_resnet50_macs_match_published(self):
        """Full ResNet-50 @224 is ~4.1 GMACs — the published number."""
        total = sum(l.macs for l in resnet_layers(50))
        assert total == pytest.approx(4.1e9, rel=0.05)

    def test_resnet18_macs(self):
        total = sum(l.macs for l in resnet_layers(18))
        assert total == pytest.approx(1.8e9, rel=0.1)

    def test_table4_resnet_layers_exist(self):
        shapes = {(l.spatial, l.reduction, l.out_features) for l in resnet_layers(50)}
        assert (784, 1152, 128) in shapes  # L1
        assert (3136, 576, 64) in shapes  # L2
        assert (196, 2304, 256) in shapes  # L3

    def test_table4_bert_layers_exist(self):
        shapes = {(l.spatial, l.reduction, l.out_features) for l in bert_layers()}
        assert (128, 768, 768) in shapes
        assert (128, 768, 3072) in shapes
        assert (128, 3072, 768) in shapes

    def test_bert_base_param_count(self):
        """Encoder FC weights of BERT-base: ~85M parameters."""
        total = sum(l.weight_size for l in bert_layers())
        assert total == pytest.approx(85e6, rel=0.02)

    def test_vgg16_conv_count(self):
        convs = [l for l in vgg_layers(16) if l.kind == "conv"]
        assert len(convs) == 13

    def test_vit_b16_token_count(self):
        layers = vit_layers()
        assert layers[0].spatial == 196  # 14x14 patches

    def test_convnext_tiny_block_structure(self):
        layers = convnext_layers()
        pw = [l for l in layers if ".pw" in l.name]
        assert len(pw) == 2 * (3 + 3 + 9 + 3)

    def test_batch_scales_spatial(self):
        b1 = resnet_layers(50, batch=1)
        b4 = resnet_layers(50, batch=4)
        assert b4[0].spatial == 4 * b1[0].spatial

    def test_unknown_depth(self):
        with pytest.raises(ValueError):
            resnet_layers(77)


class TestWorkloads:
    def test_four_workloads(self):
        wls = PAPER_WORKLOADS()
        assert [w.name for w in wls] == [
            "Dense ResNet50", "Dense BERT", "Sparse ResNet50", "Sparse BERT",
        ]

    def test_tasd_side_assignment(self):
        assert dense_resnet50().tasd_side == "activations"
        assert sparse_resnet50().tasd_side == "weights"
        assert sparse_bert().tasd_side == "weights"

    def test_sparse_rn50_weight_density_profile(self):
        wl = sparse_resnet50()
        densities = [l.weight_density for l in wl.layers]
        assert densities[0] > densities[-1]  # first layer denser
        assert min(densities) > 0.0

    def test_gelu_workloads_have_dense_real_activations(self):
        """GELU nets: real zero-density 1.0, selection stat well below."""
        for wl in (dense_bert(), sparse_bert()):
            for l in wl.layers:
                assert l.activation_density == 1.0
                assert l.stat_density < 1.0

    def test_relu_workload_stat_equals_real(self):
        for l in dense_resnet50().layers:
            assert l.stat_density == l.activation_density

    def test_representative_layers_found(self):
        for wl in PAPER_WORKLOADS():
            reps = representative_layers(wl)
            assert set(reps) == {"L1", "L2", "L3"}


class TestConfigSelection:
    def test_drop_cap_honoured(self):
        for d in (0.05, 0.2, 0.5):
            cfg = select_config_by_drop_cap(d, TTC_VEGETA_M8, drop_cap=0.05)
            assert series_expected_dropped_fraction(d, cfg) <= 0.05 + 1e-12

    def test_sparser_layers_get_lower_density(self):
        sparse_cfg = select_config_by_drop_cap(0.05, TTC_VEGETA_M8, 0.05)
        dense_cfg = select_config_by_drop_cap(0.6, TTC_VEGETA_M8, 0.05)
        assert sparse_cfg.density < dense_cfg.density

    def test_tight_cap_falls_back_to_dense(self):
        cfg = select_config_by_drop_cap(0.9, TTC_STC_M4, drop_cap=0.001)
        assert cfg.is_dense

    def test_build_specs_orientation(self):
        wl_w = sparse_resnet50()
        ttc = build_model("TTC-VEGETA-M8")
        specs_w = build_layer_specs(wl_w, ttc)
        l0 = wl_w.layers[0]
        assert specs_w[0].m == l0.shape.out_features  # weights-as-A
        assert not specs_w[0].a_dynamic

        wl_a = dense_resnet50()
        specs_a = build_layer_specs(wl_a, ttc)
        assert specs_a[0].m == wl_a.layers[0].shape.spatial  # activations-as-A
        assert specs_a[0].a_dynamic

    def test_no_tasder_means_dense_configs(self):
        specs = build_layer_specs(sparse_resnet50(), build_model("VEGETA"), use_tasder=False)
        assert all(s.a_config.is_dense for s in specs)

    def test_non_dynamic_hw_cannot_tasd_activations(self):
        specs = build_layer_specs(dense_resnet50(), build_model("VEGETA"))
        assert all(s.a_config.is_dense for s in specs)

    def test_native_only_restricts_terms(self):
        specs = build_layer_specs(sparse_resnet50(), build_model("TTC-VEGETA-M8"), native_only=True)
        assert all(s.a_config.order <= 1 for s in specs)

    def test_dstc_and_tc_get_raw_densities(self):
        specs = build_layer_specs(sparse_resnet50(), build_model("DSTC"))
        wl = sparse_resnet50()
        assert specs[0].a_density == wl.layers[0].weight_density
        assert all(s.a_config.is_dense for s in specs)
