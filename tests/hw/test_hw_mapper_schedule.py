"""Tests for the mapping search and the Fig. 11 schedule simulator."""

from __future__ import annotations

import pytest

from repro.core.series import TASDConfig
from repro.hw import DenseTC, LayerSpec, TTC
from repro.hw.mapper import best_tiles, run_layer_with_tiles, search_mapping
from repro.hw.schedule import build_fig11_schedule, replay_counts


def spec(m=784, k=1152, n=128, **kw) -> LayerSpec:
    return LayerSpec(name="layer", m=m, k=k, n=n, **kw)


class TestMapperSearch:
    def test_search_never_worse_than_heuristic(self):
        model = DenseTC()
        heuristic = model.run_layer(spec())
        best, _ = search_mapping(model, spec(), objective="edp")
        assert best.edp <= heuristic.edp * 1.0001

    def test_objectives_differ(self):
        model = DenseTC()
        by_latency = best_tiles(model, spec(m=2048, k=512, n=2048), "latency")
        by_energy = best_tiles(model, spec(m=2048, k=512, n=2048), "energy")
        # Not asserting inequality (they may coincide), but both must be legal.
        for tiles in (by_latency, by_energy):
            assert tiles.l2_words(512) <= model.arch.l2_words

    def test_candidates_all_capacity_legal(self):
        model = DenseTC()
        _, candidates = search_mapping(model, spec())
        for c in candidates:
            assert c.tiles.l2_words(1152) <= model.arch.l2_words

    def test_forced_tiles_roundtrip(self):
        """run_layer_with_tiles must restore the original tile chooser."""
        from repro.hw import dataflow

        model = DenseTC()
        original = dataflow.choose_tiles
        _, candidates = search_mapping(model, spec())
        run_layer_with_tiles(model, spec(), candidates[0].tiles)
        assert dataflow.choose_tiles is original

    def test_search_on_ttc_with_config(self):
        model = TTC()
        s = spec(a_config=TASDConfig.parse("4:8+1:8"), a_density=0.3, b_density=0.5)
        best, _ = search_mapping(model, s)
        assert best.edp > 0

    def test_huge_k_rejected(self):
        model = DenseTC()
        with pytest.raises(ValueError, match="capacity-legal"):
            search_mapping(model, spec(k=10_000_000))


class TestFig11Schedule:
    def test_paper_layout_four_timesteps(self):
        sched = build_fig11_schedule(TASDConfig.parse("4:8+1:8"))
        assert sched.num_timesteps == 4
        assert len(sched.steps) == 16  # 4 engines x 4 timesteps

    def test_term_alternation(self):
        """Timesteps alternate terms within a B block (1,2 then 3,4)."""
        sched = build_fig11_schedule(TASDConfig.parse("4:8+1:8"))
        terms_by_t = {}
        for s in sched.steps:
            terms_by_t.setdefault(s.timestep, set()).add(s.term)
        assert terms_by_t[0] == {0} and terms_by_t[1] == {1}
        assert terms_by_t[2] == {0} and terms_by_t[3] == {1}

    def test_b_fetched_once_per_block(self):
        sched = build_fig11_schedule(TASDConfig.parse("4:8+1:8"), b_blocks=2)
        counts = replay_counts(sched)
        assert counts.b_l2_fetches == 2
        assert counts.b_reuse_hits == len(sched.steps) - 2

    def test_no_partial_sum_spills(self):
        """The decomposition-aware order never evicts an unfinished C tile."""
        for text in ("2:8", "4:8+1:8", "4:8+2:8+1:8"):
            sched = build_fig11_schedule(TASDConfig.parse(text), b_blocks=3)
            assert replay_counts(sched).c_spills == 0

    def test_c_written_back_exactly_once_per_tile(self):
        sched = build_fig11_schedule(TASDConfig.parse("4:8+1:8"), a_stripes=4, b_blocks=2)
        counts = replay_counts(sched)
        assert counts.c_writebacks == 4 * 2  # stripes x blocks

    def test_a_streams_once_per_step(self):
        sched = build_fig11_schedule(TASDConfig.parse("4:8+1:8"))
        assert replay_counts(sched).a_fetches == len(sched.steps)

    def test_stripes_must_divide_engines(self):
        with pytest.raises(ValueError):
            build_fig11_schedule(TASDConfig.parse("2:8"), a_stripes=6, num_engines=4)

    def test_more_terms_scale_timesteps(self):
        sched = build_fig11_schedule(TASDConfig.parse("4:8+2:8+1:8"), b_blocks=2)
        assert sched.num_timesteps == 6  # 3 terms x 2 blocks
