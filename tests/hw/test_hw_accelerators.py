"""Tests for the accelerator models (TC / DSTC / structured / TTC)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.series import DENSE_CONFIG, TASDConfig
from repro.hw import (
    DSTC,
    TTC,
    DenseTC,
    LayerSpec,
    StructuredSparseAccelerator,
    build_model,
    geomean,
    normalize,
)
from repro.hw.designs import TABLE3_DESIGNS


def spec(m=512, k=1024, n=256, **kw) -> LayerSpec:
    return LayerSpec(name="layer", m=m, k=k, n=n, **kw)


class TestDenseTC:
    def test_cycles_at_peak_for_aligned_gemm(self):
        tc = DenseTC()
        r = tc.run_layer(spec(m=64, k=4096, n=64))
        # 16 tiles / 4 engines * K cycles (compute-bound when K large)
        assert r.compute_cycles == 4 * 4096

    def test_ignores_sparsity(self):
        tc = DenseTC()
        dense = tc.run_layer(spec())
        sparse = tc.run_layer(spec(a_density=0.05, b_density=0.5))
        assert dense.cycles == sparse.cycles
        assert dense.energy == pytest.approx(sparse.energy)

    def test_memory_bound_small_k(self):
        tc = DenseTC()
        r = tc.run_layer(spec(m=4096, k=16, n=4096))
        assert r.memory_cycles > r.compute_cycles

    def test_edp_positive(self):
        r = DenseTC().run_layer(spec())
        assert r.edp > 0
        assert r.energy == sum(r.energy_breakdown.values())


class TestDSTC:
    def test_dense_inputs_worse_than_tc(self):
        """The Fig. 12 dense-BERT effect: overheads with nothing to skip."""
        tc = DenseTC().run_layer(spec())
        d = DSTC().run_layer(spec())
        assert d.edp > tc.edp

    def test_both_side_sparse_wins(self):
        tc = DenseTC().run_layer(spec())
        d = DSTC().run_layer(spec(a_density=0.05, b_density=0.5))
        assert d.edp < 0.5 * tc.edp

    def test_compute_scales_with_density_product(self):
        d1 = DSTC().run_layer(spec(a_density=0.5, b_density=0.5))
        d2 = DSTC().run_layer(spec(a_density=0.25, b_density=0.5))
        assert d2.compute_cycles < d1.compute_cycles

    def test_imbalance_grows_with_sparsity(self):
        m = DSTC()
        assert m._imbalance(0.05) > m._imbalance(0.5) > m._imbalance(1.0)

    def test_metadata_only_when_compressed(self):
        m = DSTC()
        assert m._compressed_factor(1.0) == 1.0  # dense operand: raw storage
        assert m._compressed_factor(0.4) == pytest.approx(0.6)


class TestStructuredSparse:
    def test_dense_config_matches_tc(self):
        """Without a config the structured accelerator is exactly a TC."""
        tc = DenseTC().run_layer(spec(a_density=0.3, b_density=0.5))
        s = StructuredSparseAccelerator().run_layer(spec(a_density=0.3, b_density=0.5))
        assert s.cycles == tc.cycles
        assert s.energy == pytest.approx(tc.energy)

    def test_compute_scales_with_series_density(self):
        s = StructuredSparseAccelerator()
        half = s.run_layer(spec(a_config=TASDConfig.parse("2:4")))
        quarter = s.run_layer(spec(a_config=TASDConfig.parse("1:4")))
        assert quarter.compute_cycles == pytest.approx(half.compute_cycles / 2)

    def test_two_term_costs_more_than_effective_single(self):
        """3:8 as 2:8+1:8 pays extra B/C traffic vs a native 3:8."""
        s = StructuredSparseAccelerator()
        native = s.run_layer(spec(a_config=TASDConfig((TASDConfig.parse("2:8+1:8").effective_pattern,))))
        composed = s.run_layer(spec(a_config=TASDConfig.parse("2:8+1:8")))
        assert composed.energy > native.energy
        assert composed.compute_cycles == pytest.approx(native.compute_cycles)

    def test_b_gating_saves_mac_energy(self):
        gated = StructuredSparseAccelerator(gate_on_b=True).run_layer(
            spec(a_config=TASDConfig.parse("2:4"), b_density=0.5)
        )
        ungated = StructuredSparseAccelerator(gate_on_b=False).run_layer(
            spec(a_config=TASDConfig.parse("2:4"), b_density=0.5)
        )
        assert gated.energy_breakdown["mac"] == pytest.approx(
            ungated.energy_breakdown["mac"] / 2
        )

    def test_a_traffic_shrinks_with_compression(self):
        s = StructuredSparseAccelerator()
        dense = s.run_layer(spec())
        sparse = s.run_layer(spec(a_config=TASDConfig.parse("2:8")))
        assert sparse.energy_breakdown["dram"] < dense.energy_breakdown["dram"]


class TestTTC:
    def test_tasd_unit_energy_only_when_dynamic(self):
        ttc = TTC()
        static = ttc.run_layer(spec(a_config=TASDConfig.parse("4:8+1:8"), a_dynamic=False))
        dynamic = ttc.run_layer(spec(a_config=TASDConfig.parse("4:8+1:8"), a_dynamic=True))
        assert "tasd_unit" not in static.energy_breakdown
        assert dynamic.energy_breakdown["tasd_unit"] > 0

    def test_tasd_unit_energy_small(self):
        """Comparator trees are ~2 % of PE area; energy share must be minor."""
        ttc = TTC()
        r = ttc.run_layer(spec(a_config=TASDConfig.parse("4:8+1:8"), a_dynamic=True))
        assert r.energy_breakdown["tasd_unit"] < 0.05 * r.energy


class TestDesignFactory:
    def test_all_table3_designs_build(self):
        for name in TABLE3_DESIGNS:
            dp = build_model(name)
            assert dp.model.run_layer(spec()).cycles > 0

    def test_unknown_design(self):
        with pytest.raises(ValueError):
            build_model("TPUv9")

    def test_ttc_menus_attached(self):
        assert build_model("TTC-VEGETA-M8").menu is not None
        assert build_model("TC").menu is None

    def test_vegeta_without_tasd_units(self):
        assert not build_model("VEGETA").menu.dynamic_decomposition


class TestNetworkAggregation:
    def test_network_sums_layers(self):
        tc = DenseTC()
        specs = [spec(m=128, k=256, n=64), spec(m=64, k=128, n=32)]
        net = tc.run_network(specs)
        assert net.cycles == sum(r.cycles for r in net.layers)
        assert net.energy == pytest.approx(sum(r.energy for r in net.layers))

    def test_normalize(self):
        tc = DenseTC()
        base = tc.run_network([spec()])
        norm = normalize(base, base)
        assert norm.edp == norm.latency == norm.energy == 1.0
        assert norm.edp_improvement == 0.0

    def test_geomean(self):
        assert geomean([0.25, 1.0]) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([0.0, 1.0])

    def test_energy_by_component(self):
        tc = DenseTC()
        net = tc.run_network([spec(), spec()])
        comp = net.energy_by_component()
        assert comp["mac"] == pytest.approx(2 * tc.run_layer(spec()).energy_breakdown["mac"])
