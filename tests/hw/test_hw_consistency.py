"""Cross-model consistency properties of the accelerator substrate.

These tie the models together: energy and cycles must respond to operand
properties in physically sensible directions, and the design family must
preserve dominance relations the paper's argument depends on.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.series import TASDConfig
from repro.hw import DSTC, DenseTC, LayerSpec, StructuredSparseAccelerator, TTC


def spec(**kw) -> LayerSpec:
    base = dict(name="l", m=512, k=1024, n=256)
    base.update(kw)
    return LayerSpec(**base)


class TestPhysicalSanity:
    def test_energy_monotone_in_gemm_size(self):
        tc = DenseTC()
        small = tc.run_layer(spec(m=128, k=256, n=64))
        big = tc.run_layer(spec(m=256, k=512, n=128))
        assert big.energy > small.energy
        assert big.cycles > small.cycles

    def test_structured_energy_monotone_in_series_density(self):
        s = StructuredSparseAccelerator()
        energies = [
            s.run_layer(spec(a_config=TASDConfig.single(n, 8), a_density=0.9)).energy
            for n in (1, 2, 4)
        ]
        assert energies == sorted(energies)

    def test_cycles_never_below_memory_floor(self):
        tc = DenseTC()
        r = tc.run_layer(spec(m=8192, k=8, n=8192))  # traffic-heavy
        assert r.cycles >= r.memory_cycles

    def test_dstc_never_beats_zero_overhead_ideal(self):
        """DSTC cycles can't go below density-scaled ideal compute."""
        d = DSTC()
        for da, db in ((0.1, 0.5), (0.5, 0.5), (1.0, 1.0)):
            r = d.run_layer(spec(a_density=da, b_density=db))
            ideal = DenseTC().run_layer(spec()).compute_cycles * da * db
            assert r.compute_cycles >= ideal * 0.999

    def test_ttc_dense_config_equals_structured_baseline(self):
        ttc = TTC()
        base = StructuredSparseAccelerator()
        a = ttc.run_layer(spec(a_density=0.5, b_density=0.5))
        b = base.run_layer(spec(a_density=0.5, b_density=0.5))
        assert a.cycles == b.cycles
        assert a.energy == pytest.approx(b.energy)

    def test_breakdown_components_nonnegative(self):
        for model in (DenseTC(), DSTC(), TTC()):
            r = model.run_layer(spec(a_density=0.3, b_density=0.6,
                                     a_config=TASDConfig.parse("2:8"), a_dynamic=True))
            for comp, val in r.energy_breakdown.items():
                assert val >= 0.0, comp


@given(
    st.floats(min_value=0.05, max_value=1.0),
    st.floats(min_value=0.05, max_value=1.0),
)
def test_property_dstc_cycles_monotone_in_density(da, db):
    d = DSTC()
    sparse = d.run_layer(spec(a_density=da * 0.5, b_density=db))
    dense = d.run_layer(spec(a_density=da, b_density=db))
    assert sparse.compute_cycles <= dense.compute_cycles * 1.5  # imbalance-bounded


@given(st.sampled_from(["1:8", "2:8", "4:8", "2:8+1:8", "4:8+2:8"]))
def test_property_ttc_beats_tc_on_sparse_weights(config_text):
    """Any non-dense series on very sparse weights must beat dense TC EDP."""
    config = TASDConfig.parse(config_text)
    ttc = TTC().run_layer(spec(a_density=0.05, b_density=0.5, a_config=config))
    tc = DenseTC().run_layer(spec(a_density=0.05, b_density=0.5))
    assert ttc.edp < tc.edp
