"""Tests for architecture config and dataflow access counting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw import DEFAULT_ARCH, ArchConfig, Bandwidth, EnergyTable, choose_tiles, count_accesses


class TestArchConfig:
    def test_macs_per_cycle(self):
        assert DEFAULT_ARCH.macs_per_cycle == 4 * 16 * 16

    def test_capacities_in_words(self):
        assert DEFAULT_ARCH.l1_words == 64 * 1024 // 2
        assert DEFAULT_ARCH.l2_words == 2048 * 1024 // 2

    def test_with_overheads(self):
        derived = DEFAULT_ARCH.with_overheads(1.38, 0.7, name="X")
        assert derived.mac_energy_overhead == 1.38
        assert derived.name == "X"
        assert DEFAULT_ARCH.mac_energy_overhead == 1.0  # original untouched

    def test_energy_scaled(self):
        e = EnergyTable().scaled(dram=50.0)
        assert e.dram == 50.0
        assert e.mac == EnergyTable().mac

    def test_energy_hierarchy_ordering(self):
        """Sanity: each level costs more than the one below it."""
        e = DEFAULT_ARCH.energy
        assert e.rf < e.l1 < e.l2 < e.dram


class TestChooseTiles:
    def test_tiles_fit_l2(self):
        tiles = choose_tiles(1024, 2048, 1024, DEFAULT_ARCH)
        assert tiles.l2_words(2048) <= DEFAULT_ARCH.l2_words * 1.01

    def test_tiles_multiple_of_pe_dims(self):
        tiles = choose_tiles(300, 700, 500, DEFAULT_ARCH)
        assert tiles.tn2 % 16 == 0 or tiles.tn2 == 500
        assert tiles.tm1 == 16 and tiles.tn1 == 16

    def test_small_gemm_single_tile(self):
        tiles = choose_tiles(16, 64, 16, DEFAULT_ARCH)
        assert tiles.tm2 >= 16 and tiles.tn2 >= 16


class TestCountAccesses:
    def test_minimum_traffic_bounds(self):
        """Every tensor must cross DRAM at least once (compulsory misses)."""
        m, k, n = 784, 1152, 128
        counts = count_accesses(m, k, n, DEFAULT_ARCH)
        assert counts.dram["A"] >= m * k
        assert counts.dram["B"] >= k * n
        assert counts.dram["C"] >= m * n

    def test_b_read_once_from_dram(self):
        counts = count_accesses(784, 1152, 128, DEFAULT_ARCH)
        assert counts.dram["B"] == 1152 * 128

    def test_inner_levels_at_least_outer(self):
        """Conservation: L1 serves at least as many words as L2 delivers."""
        counts = count_accesses(512, 1024, 256, DEFAULT_ARCH)
        for t in ("A", "B"):
            assert counts.l1[t] >= counts.dram[t] * 0.999
            assert counts.l2[t] >= counts.dram[t] * 0.999

    def test_reuse_grows_with_n(self):
        """Bigger N -> more reuse passes of A through L2."""
        small = count_accesses(256, 512, 64, DEFAULT_ARCH)
        big = count_accesses(256, 512, 2048, DEFAULT_ARCH)
        assert big.l2["A"] / (256 * 512) > small.l2["A"] / (256 * 512)

    def test_scaled_copy_immutability(self):
        counts = count_accesses(64, 64, 64, DEFAULT_ARCH)
        scaled = counts.scaled("A", 0.5)
        assert scaled.dram["A"] == counts.dram["A"] * 0.5
        assert counts.dram["A"] == scaled.dram["A"] * 2  # original unchanged

    def test_total(self):
        counts = count_accesses(64, 64, 64, DEFAULT_ARCH)
        assert counts.total("dram") == sum(counts.dram.values())


@given(
    st.integers(min_value=16, max_value=1024),
    st.integers(min_value=16, max_value=2048),
    st.integers(min_value=16, max_value=1024),
)
def test_property_access_counts_positive_and_bounded(m, k, n):
    counts = count_accesses(m, k, n, DEFAULT_ARCH)
    for level in ("dram", "l2", "l1"):
        for t, v in getattr(counts, level).items():
            assert v > 0
    # A's DRAM traffic can never exceed one reload per 16-wide N tile.
    assert counts.dram["A"] <= m * k * (-(-n // 16))
