"""Tests for design-space exploration (repro.hw.dse)."""

from __future__ import annotations

import pytest

from repro.hw.dse import power_of_two_menu, sweep_block_size, sweep_term_budget


class TestMenuBuilder:
    def test_power_of_two_patterns(self):
        menu = power_of_two_menu(8, max_terms=2)
        assert {str(p) for p in menu.native_patterns} == {"1:8", "2:8", "4:8"}

    def test_m16_patterns(self):
        menu = power_of_two_menu(16, max_terms=1)
        assert {str(p) for p in menu.native_patterns} == {"1:16", "2:16", "4:16", "8:16"}

    def test_menu_grows_with_terms(self):
        assert len(power_of_two_menu(8, 2).menu()) > len(power_of_two_menu(8, 1).menu())


class TestSweeps:
    @pytest.fixture(scope="class")
    def term_sweep(self):
        return sweep_term_budget(m=8, budgets=(1, 2))

    def test_extra_terms_never_hurt_geomean(self, term_sweep):
        """Section 5.2's flexibility claim along the term axis."""
        one, two = term_sweep
        assert two.geomean_edp <= one.geomean_edp * 1.02

    def test_sweep_points_have_metadata(self, term_sweep):
        for p in term_sweep:
            assert p.block_size == 8
            assert p.menu_size >= 2
            assert 0.0 < p.geomean_edp < 1.0  # all TTC designs beat TC overall

    def test_block_size_flexibility_helps(self):
        """Section 5.2's flexibility claim along the M axis (N:4 -> N:8)."""
        points = {p.block_size: p.geomean_edp for p in sweep_block_size(ms=(4, 8))}
        assert points[8] <= points[4] * 1.02
