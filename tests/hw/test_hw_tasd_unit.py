"""Tests for the cycle-level TASD-unit simulator (Fig. 10 / Little's law)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.series import DENSE_CONFIG, TASDConfig
from repro.hw import min_units_no_stall, service_cycles, simulate_tasd_units


class TestServiceCycles:
    def test_fig10_config(self):
        """4:8 + 1:8 occupies a unit for 5 extraction cycles (T2..T6)."""
        assert service_cycles(TASDConfig.parse("4:8+1:8")) == 5

    def test_dense_zero(self):
        assert service_cycles(DENSE_CONFIG) == 0

    def test_single_term(self):
        assert service_cycles(TASDConfig.parse("2:8")) == 2


class TestLittlesLaw:
    def test_paper_sizing(self):
        """Section 4.4: sum of Ns ≤ M guarantees 2M units never stall; the
        worst case (ΣN = 8) needs 16 units — the number in the TTC design."""
        worst = TASDConfig.parse("4:8+4:8")
        assert min_units_no_stall(worst, blocks_per_cycle=2) == 16

    def test_no_stall_at_bound(self):
        for text in ("1:8", "2:8", "4:8", "4:8+1:8", "4:8+2:8", "4:8+4:8"):
            config = TASDConfig.parse(text)
            bound = min_units_no_stall(config)
            sim = simulate_tasd_units(config, num_units=bound, num_blocks=1000)
            assert not sim.stalled, f"{text} stalled with {bound} units"

    def test_sixteen_units_cover_all_m8_menus(self):
        """16 units suffice for every config a TTC-VEGETA-M8 can select."""
        from repro.tasder.config import TTC_VEGETA_M8

        for config in TTC_VEGETA_M8.menu().values():
            sim = simulate_tasd_units(config, num_units=16, num_blocks=500)
            assert not sim.stalled

    def test_stalls_below_bound(self):
        config = TASDConfig.parse("4:8+1:8")
        bound = min_units_no_stall(config)
        sim = simulate_tasd_units(config, num_units=bound // 2, num_blocks=500)
        assert sim.stalled

    def test_stalls_decrease_with_units(self):
        config = TASDConfig.parse("4:8+2:8")
        stalls = [
            simulate_tasd_units(config, num_units=u, num_blocks=400).stall_cycles
            for u in (2, 4, 8, 12)
        ]
        assert stalls == sorted(stalls, reverse=True)

    def test_all_blocks_processed(self):
        sim = simulate_tasd_units(TASDConfig.parse("2:8"), num_units=4, num_blocks=333)
        assert sim.blocks_processed == 333

    def test_dense_config_trivial(self):
        sim = simulate_tasd_units(DENSE_CONFIG, num_units=1, num_blocks=100)
        assert sim.total_cycles == 0

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            simulate_tasd_units(TASDConfig.parse("2:8"), num_units=0, num_blocks=10)

    def test_busy_fraction_bounds(self):
        sim = simulate_tasd_units(TASDConfig.parse("4:8"), num_units=8, num_blocks=200)
        assert 0.0 < sim.unit_busy_fraction <= 1.0


@given(
    st.sampled_from(["1:8", "2:8", "4:8", "2:8+1:8", "4:8+2:8"]),
    st.integers(min_value=1, max_value=3),
)
def test_property_littles_bound_never_stalls(text, blocks_per_cycle):
    config = TASDConfig.parse(text)
    bound = min_units_no_stall(config, blocks_per_cycle)
    sim = simulate_tasd_units(
        config, num_units=bound, num_blocks=300, blocks_per_cycle=blocks_per_cycle
    )
    assert not sim.stalled
