"""Tests for the TASD-W / TASD-A searches and the Tasder framework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.series import DENSE_CONFIG, TASDConfig
from repro.nn import Adam, synthetic_images, train_classifier
from repro.nn.models import MLP
from repro.nn.train import evaluate_accuracy
from repro.pruning import gemm_layers, global_magnitude_prune, prune_and_finetune
from repro.tasder import (
    QualityGate,
    TTC_STC_M4,
    TTC_VEGETA_M8,
    Tasder,
    activation_search,
    calibrate,
    candidate_drop_table,
    collect_gemm_shapes,
    evaluate_transform,
    greedy_weight_search,
    network_wise_weight_sweep,
    select_activation_configs,
    sparsity_based_weight_selection,
    transform_compute_fraction,
)
from repro.tasder.transform import TASDTransform
from repro.tasder.weight_search import weight_dropped_fraction


@pytest.fixture(scope="module")
def trained_sparse_mlp():
    """A trained, 85 %-pruned MLP shared across search tests."""
    ds = synthetic_images(n_train=256, n_eval=128, size=8, noise=0.5, seed=0)
    model = MLP(192, (96, 96), 10, rng=np.random.default_rng(0))
    x = ds.x_train.reshape(len(ds.x_train), -1)
    train_classifier(model, x, ds.y_train, epochs=6, optimizer=Adam(model, lr=2e-3), seed=0)
    prune_and_finetune(model, x, ds.y_train, sparsity=0.85, finetune_epochs=2)

    class FlatDs:
        x_train = x
        y_train = ds.y_train
        x_eval = ds.x_eval.reshape(len(ds.x_eval), -1)
        y_eval = ds.y_eval
        x_calib = ds.x_calib.reshape(len(ds.x_calib), -1)

    return model, FlatDs()


class TestQualityGate:
    def test_accepts_at_threshold(self):
        gate = QualityGate(0.90, threshold=0.99)
        assert gate.accepts(0.891)
        assert not gate.accepts(0.88)

    def test_min_accuracy(self):
        assert QualityGate(0.8).min_accuracy == pytest.approx(0.792)


class TestDropTable:
    def test_sorted_ascending(self, trained_sparse_mlp):
        model, _ = trained_sparse_mlp
        table = candidate_drop_table(model, TTC_VEGETA_M8)
        drops = [row[0] for row in table]
        assert drops == sorted(drops)

    def test_covers_all_layer_config_pairs(self, trained_sparse_mlp):
        model, _ = trained_sparse_mlp
        table = candidate_drop_table(model, TTC_VEGETA_M8)
        n_layers = len(gemm_layers(model))
        n_configs = len(TTC_VEGETA_M8.configs(include_dense=False))
        assert len(table) == n_layers * n_configs

    def test_dropped_fraction_monotone_in_aggressiveness(self, trained_sparse_mlp):
        model, _ = trained_sparse_mlp
        w = gemm_layers(model)[0][1].weight_matrix()
        d1 = weight_dropped_fraction(w, TASDConfig.parse("4:8"))
        d2 = weight_dropped_fraction(w, TASDConfig.parse("2:8"))
        d3 = weight_dropped_fraction(w, TASDConfig.parse("1:8"))
        assert d1 <= d2 <= d3


class TestGreedySearch:
    def test_meets_gate(self, trained_sparse_mlp):
        model, ds = trained_sparse_mlp
        result = greedy_weight_search(model, TTC_VEGETA_M8, ds.x_eval, ds.y_eval, eval_every=4)
        assert result.accuracy >= 0.99 * result.original_accuracy - 1e-9
        assert result.applications > 0

    def test_transform_restores_model(self, trained_sparse_mlp):
        model, ds = trained_sparse_mlp
        before = evaluate_accuracy(model, ds.x_eval, ds.y_eval)
        greedy_weight_search(model, TTC_VEGETA_M8, ds.x_eval, ds.y_eval, eval_every=4)
        assert evaluate_accuracy(model, ds.x_eval, ds.y_eval) == before

    def test_configs_from_menu_only(self, trained_sparse_mlp):
        model, ds = trained_sparse_mlp
        result = greedy_weight_search(model, TTC_VEGETA_M8, ds.x_eval, ds.y_eval, eval_every=4)
        menu_configs = set(TTC_VEGETA_M8.menu().values())
        for cfg in result.transform.weight_configs.values():
            assert cfg in menu_configs

    def test_sparser_model_gets_more_aggressive_configs(self, rng):
        """Extremely sparse layers should receive low-density configs."""
        model = MLP(64, (64,), 4, rng=rng)
        global_magnitude_prune(model, 0.97)
        x = rng.normal(size=(64, 64))
        y = rng.integers(0, 4, size=64)
        result = greedy_weight_search(model, TTC_VEGETA_M8, x, y, threshold=0.0, eval_every=2)
        densities = [c.density for c in result.transform.weight_configs.values()]
        assert min(densities) <= 0.25

    def test_gate_violation_rolls_back(self, rng):
        """With an impossible threshold, nothing should be committed."""
        model = MLP(16, (16,), 4, rng=rng)
        x = rng.normal(size=(64, 16))
        y = rng.integers(0, 4, size=64)
        result = greedy_weight_search(model, TTC_STC_M4, x, y, threshold=1.5, eval_every=1)
        assert result.transform.weight_configs == {}


class TestSparsityBasedSelection:
    def test_respects_layer_sparsity(self, trained_sparse_mlp):
        model, _ = trained_sparse_mlp
        transform = sparsity_based_weight_selection(model, TTC_VEGETA_M8, alpha=0.0)
        for name, layer in gemm_layers(model):
            w = layer.weight_matrix()
            sparsity = 1.0 - np.count_nonzero(w) / w.size
            cfg = transform.weight_configs[name]
            assert cfg.approximated_sparsity < sparsity + 1e-9

    def test_network_wise_sweep_returns_all(self, trained_sparse_mlp):
        model, ds = trained_sparse_mlp
        configs = [TASDConfig.single(n, 4) for n in (1, 2, 3, 4)]
        results = network_wise_weight_sweep(model, configs, ds.x_eval, ds.y_eval)
        assert len(results) == 4
        # denser configs never hurt accuracy relative to the sparsest
        accs = {str(c): a for c, a in results}
        assert accs["4:4"] >= accs["1:4"]


class TestActivationSearch:
    def test_selection_uses_menu(self, trained_sparse_mlp):
        model, ds = trained_sparse_mlp
        calib = calibrate(model, ds.x_calib)
        transform = select_activation_configs(calib, TTC_VEGETA_M8, alpha=0.1)
        menu_configs = set(TTC_VEGETA_M8.menu().values())
        assert transform.activation_configs
        for cfg in transform.activation_configs.values():
            assert cfg in menu_configs

    def test_rejects_non_dynamic_hw(self, trained_sparse_mlp):
        from repro.tasder import VEGETA_M8

        model, ds = trained_sparse_mlp
        calib = calibrate(model, ds.x_calib)
        with pytest.raises(ValueError, match="TASD unit"):
            select_activation_configs(calib, VEGETA_M8)

    def test_skip_layers(self, trained_sparse_mlp):
        model, ds = trained_sparse_mlp
        names = [n for n, _ in gemm_layers(model)]
        transform = activation_search(
            model, TTC_VEGETA_M8, ds.x_calib, alpha=0.2, skip_layers=(names[0],)
        )
        assert names[0] not in transform.activation_configs


class TestComputeAccounting:
    def test_compute_fraction_dense_is_one(self, trained_sparse_mlp):
        model, ds = trained_sparse_mlp
        shapes = collect_gemm_shapes(model, ds.x_eval[:2])
        assert transform_compute_fraction(TASDTransform(), shapes) == 1.0

    def test_compute_fraction_weighted(self, trained_sparse_mlp):
        model, ds = trained_sparse_mlp
        shapes = collect_gemm_shapes(model, ds.x_eval[:2])
        names = list(shapes)
        transform = TASDTransform(
            weight_configs={n: TASDConfig.parse("2:8") for n in names}
        )
        assert transform_compute_fraction(transform, shapes) == pytest.approx(0.25)

    def test_collect_shapes_per_sample(self, trained_sparse_mlp):
        model, ds = trained_sparse_mlp
        shapes = collect_gemm_shapes(model, ds.x_eval[:4])
        for gs in shapes.values():
            assert gs.m == 1  # MLP: one row per sample


class TestTasderFramework:
    def test_optimize_weights_end_to_end(self, trained_sparse_mlp):
        model, ds = trained_sparse_mlp
        tasder = Tasder(model, ds, TTC_VEGETA_M8)
        result = tasder.optimize_weights(eval_every=4)
        assert result.mac_reduction > 0.3
        assert result.accuracy_retention >= 0.99 - 1e-9

    def test_optimize_activations_end_to_end(self, trained_sparse_mlp):
        model, ds = trained_sparse_mlp
        tasder = Tasder(model, ds, TTC_VEGETA_M8, alpha=0.1)
        result = tasder.optimize_activations()
        assert 0.0 <= result.compute_fraction <= 1.0

    def test_unknown_method(self, trained_sparse_mlp):
        model, ds = trained_sparse_mlp
        with pytest.raises(ValueError):
            Tasder(model, ds, TTC_VEGETA_M8).optimize_weights(method="magic")

    def test_apply_installs_transform(self, trained_sparse_mlp):
        model, ds = trained_sparse_mlp
        tasder = Tasder(model, ds, TTC_VEGETA_M8)
        result = tasder.optimize_weights(eval_every=4)
        tasder.apply(result.transform)
        acc = evaluate_accuracy(model, ds.x_eval, ds.y_eval)
        assert acc == pytest.approx(result.transformed_accuracy)
        from repro.tasder import clear_transform

        clear_transform(model)
