"""Tests for TASDER menus, transforms and calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.patterns import NMPattern, is_pattern_legal
from repro.core.series import DENSE_CONFIG, TASDConfig
from repro.nn import synthetic_images
from repro.nn.models import MLP, resnet18
from repro.nn.train import evaluate_accuracy, predict_logits
from repro.pruning import gemm_layers
from repro.tasder import (
    TTC_STC_M4,
    TTC_STC_M8,
    TTC_VEGETA_M4,
    TTC_VEGETA_M8,
    VEGETA_M8,
    TASDTransform,
    apply_activation_transform,
    apply_weight_transform,
    calibrate,
    clear_transform,
    decompose_activation,
    decompose_weight_matrix,
)


class TestHardwareMenu:
    def test_vegeta_m8_menu_densities(self):
        menu = TTC_VEGETA_M8.menu()
        assert sorted(round(d, 4) for d in menu) == [0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 1.0]

    def test_stc_m4_menu(self):
        assert sorted(TTC_STC_M4.menu()) == [0.5, 1.0]

    def test_configs_ordering(self):
        configs = TTC_VEGETA_M8.configs()
        densities = [c.density for c in configs]
        assert densities == sorted(densities, reverse=True)
        assert configs[0].is_dense

    def test_block_size(self):
        assert TTC_VEGETA_M8.block_size == 8
        assert TTC_VEGETA_M4.block_size == 4

    def test_select_by_sparsity_alpha_rule(self):
        # S=0.55, alpha=0: densest admissible approx sparsity below 0.55 is 0.5
        cfg = TTC_VEGETA_M8.select_by_sparsity(0.55, alpha=0.0)
        assert cfg.approximated_sparsity == pytest.approx(0.5)
        # alpha=0.1 raises the budget past 5:8's 0.625... 0.55+0.1=0.65 > 0.625
        cfg = TTC_VEGETA_M8.select_by_sparsity(0.55, alpha=0.1)
        assert cfg.approximated_sparsity == pytest.approx(0.625)

    def test_select_by_sparsity_dense_fallback(self):
        assert TTC_VEGETA_M8.select_by_sparsity(0.0, alpha=0.0).is_dense
        assert TTC_STC_M4.select_by_sparsity(0.3, alpha=0.0).is_dense

    def test_larger_alpha_never_less_aggressive(self):
        for s in (0.2, 0.5, 0.8):
            a0 = TTC_VEGETA_M8.select_by_sparsity(s, 0.0).approximated_sparsity
            a1 = TTC_VEGETA_M8.select_by_sparsity(s, 0.2).approximated_sparsity
            assert a1 >= a0

    def test_table3_term_limits(self):
        assert TTC_STC_M8.max_terms == 1
        assert TTC_VEGETA_M8.max_terms == 2
        assert not VEGETA_M8.dynamic_decomposition
        assert TTC_VEGETA_M8.dynamic_decomposition


class TestDecomposeHelpers:
    def test_weight_matrix_ragged_k(self, rng):
        w = rng.normal(size=(4, 10))  # K=10 not divisible by 8
        approx = decompose_weight_matrix(w, TASDConfig.parse("2:8"))
        assert approx.shape == w.shape
        # kept values are a subset of the original
        kept = approx != 0
        assert np.array_equal(approx[kept], w[kept])

    def test_weight_matrix_dense_identity(self, rng):
        w = rng.normal(size=(4, 8))
        assert np.array_equal(decompose_weight_matrix(w, DENSE_CONFIG), w)

    def test_activation_channel_axis(self, rng):
        x = rng.normal(size=(2, 16, 4, 4))  # NCHW
        out = decompose_activation(x, TASDConfig.parse("2:8"), axis=1)
        assert out.shape == x.shape
        assert is_pattern_legal(out, NMPattern(2, 8), axis=1)

    def test_activation_padding_roundtrip(self, rng):
        x = rng.normal(size=(2, 10))  # ragged feature dim
        out = decompose_activation(x, TASDConfig.parse("4:8"), axis=-1)
        assert out.shape == x.shape


class TestTransforms:
    @pytest.fixture
    def model_and_data(self, rng):
        ds = synthetic_images(n_train=32, n_eval=32, size=8, seed=0)
        model = MLP(192, (64, 64), 10, rng=rng)
        return model, ds

    def test_weight_transform_eval_only(self, model_and_data, rng):
        model, ds = model_and_data
        x = ds.x_eval.reshape(32, -1)
        before = predict_logits(model, x)
        name = gemm_layers(model)[0][0]
        apply_weight_transform(model, {name: TASDConfig.parse("1:8")})
        after = predict_logits(model, x)
        assert not np.allclose(before, after)
        clear_transform(model)
        assert np.allclose(predict_logits(model, x), before)

    def test_weight_transform_dense_noop(self, model_and_data):
        model, ds = model_and_data
        x = ds.x_eval.reshape(32, -1)
        before = predict_logits(model, x)
        name = gemm_layers(model)[0][0]
        apply_weight_transform(model, {name: DENSE_CONFIG})
        assert np.allclose(predict_logits(model, x), before)

    def test_weight_transform_unknown_layer(self, model_and_data):
        model, _ = model_and_data
        with pytest.raises(KeyError):
            apply_weight_transform(model, {"nope": DENSE_CONFIG})

    def test_weight_transform_preserves_parameters(self, model_and_data):
        """The trained parameter itself is never modified."""
        model, _ = model_and_data
        name, layer = gemm_layers(model)[0]
        original = layer.weight.data.copy()
        apply_weight_transform(model, {name: TASDConfig.parse("1:8")})
        assert np.array_equal(layer.weight.data, original)

    def test_activation_transform_changes_eval_output(self, model_and_data):
        model, ds = model_and_data
        x = ds.x_eval.reshape(32, -1)
        before = predict_logits(model, x)
        names = [n for n, _ in gemm_layers(model)]
        apply_activation_transform(model, {n: TASDConfig.parse("1:8") for n in names})
        after = predict_logits(model, x)
        assert not np.allclose(before, after)
        # training path unaffected
        model.train()
        assert np.allclose(model(x), before, atol=1e-8)
        clear_transform(model)
        assert np.allclose(predict_logits(model, x), before)

    def test_activation_transform_install_uninstall_idempotent(self, model_and_data):
        model, ds = model_and_data
        x = ds.x_eval.reshape(32, -1)
        names = [n for n, _ in gemm_layers(model)]
        cfg = {n: TASDConfig.parse("2:8") for n in names}
        apply_activation_transform(model, cfg)
        once = predict_logits(model, x)
        apply_activation_transform(model, cfg)  # re-install over itself
        assert np.allclose(predict_logits(model, x), once)

    def test_transform_merge(self):
        a = TASDTransform(weight_configs={"x": TASDConfig.parse("2:4")})
        b = TASDTransform(weight_configs={"x": TASDConfig.parse("1:4")},
                          activation_configs={"y": TASDConfig.parse("2:8")})
        merged = a.merged_with(b)
        assert merged.weight_configs["x"] == TASDConfig.parse("1:4")
        assert "y" in merged.activation_configs

    def test_transform_summary_readable(self):
        t = TASDTransform(weight_configs={"layer": TASDConfig.parse("2:4")})
        assert "2:4" in t.summary()


class TestCalibration:
    def test_profiles_per_layer(self, rng):
        model = resnet18(base_width=4, rng=rng)
        ds = synthetic_images(n_train=8, n_eval=8, n_calib=8, size=8, seed=0)
        result = calibrate(model, ds.x_calib)
        assert len(result) == len(gemm_layers(model))
        for name, profile in result:
            assert 0.0 <= profile.mean_sparsity <= 1.0
            assert 0.0 < profile.mean_pseudo_density <= 1.0

    def test_relu_fed_layers_see_sparsity(self, rng):
        model = resnet18(base_width=4, rng=rng)
        ds = synthetic_images(n_train=8, n_eval=8, n_calib=8, size=8, seed=0)
        result = calibrate(model, ds.x_calib)
        sparsities = [p.mean_sparsity for _, p in result]
        assert max(sparsities) > 0.3  # post-ReLU inputs carry real zeros

    def test_hooks_cleaned_up(self, rng):
        model = MLP(8, (8,), 2, rng=rng)
        calibrate(model, np.random.default_rng(0).normal(size=(4, 8)))
        for _, layer in gemm_layers(model):
            assert not getattr(layer, "_forward_hooks", [])

    def test_effective_sparsity_pseudo_fallback(self):
        from repro.tasder.calibrate import ActivationProfile

        relu_like = ActivationProfile("l", 0.5, 0.6, 0.4, 0.9)
        assert relu_like.effective_sparsity == 0.5
        gelu_like = ActivationProfile("l", 0.0, 0.0, 0.0, 0.4)
        assert gelu_like.effective_sparsity == pytest.approx(0.6)
