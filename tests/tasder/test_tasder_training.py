"""Tests for training-time TASD (gradient compression, Section 6.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.patterns import NMPattern, is_pattern_legal
from repro.core.series import DENSE_CONFIG, TASDConfig
from repro.nn import cross_entropy, synthetic_images
from repro.nn.models import MLP
from repro.pruning import gemm_layers
from repro.tasder.training import GradientTASD, train_with_tasd_gradients


@pytest.fixture
def model_and_batch(rng):
    ds = synthetic_images(n_train=64, n_eval=16, size=8, seed=4)
    model = MLP(192, (64,), 10, rng=rng)
    x = ds.x_train.reshape(64, -1)
    return model, x, ds.y_train


class TestGradientTASD:
    def test_rejects_dense_config(self, model_and_batch):
        model, _, _ = model_and_batch
        with pytest.raises(ValueError):
            GradientTASD(model, DENSE_CONFIG)

    def test_compressed_grads_are_structured(self, model_and_batch):
        model, x, y = model_and_batch
        compressor = GradientTASD(model, TASDConfig.parse("2:8"))
        loss, d = cross_entropy(model(x), y)
        model.zero_grad()
        model.backward(d)
        compressor.compress()
        for _, layer in gemm_layers(model):
            g = layer.weight.grad
            usable = (g.shape[-1] // 8) * 8
            assert is_pattern_legal(g[:, :usable], NMPattern(2, 8), axis=-1)

    def test_error_bounded_and_reported(self, model_and_batch):
        model, x, y = model_and_batch
        compressor = GradientTASD(model, TASDConfig.parse("4:8+2:8"))
        loss, d = cross_entropy(model(x), y)
        model.zero_grad()
        model.backward(d)
        err = compressor.compress()
        assert 0.0 <= err < 1.0
        assert compressor.compressed_steps == 1

    def test_more_terms_less_error(self, model_and_batch):
        model, x, y = model_and_batch
        errors = {}
        for text in ("2:8", "4:8", "4:8+2:8"):
            loss, d = cross_entropy(model(x), y)
            model.zero_grad()
            model.backward(d)
            errors[text] = GradientTASD(model, TASDConfig.parse(text)).compress()
        assert errors["4:8+2:8"] < errors["4:8"] < errors["2:8"]


class TestTrainingLoop:
    def test_model_still_learns_with_compressed_gradients(self, rng):
        ds = synthetic_images(n_train=128, n_eval=32, size=8, noise=0.4, seed=5)
        model = MLP(192, (64,), 10, rng=rng)
        x = ds.x_train.reshape(128, -1)
        result = train_with_tasd_gradients(
            model, x, ds.y_train, TASDConfig.parse("4:8+2:8"), epochs=6, lr=2e-3
        )
        assert result.final_accuracy > 0.6
        assert result.losses[-1] < result.losses[0]
        assert result.compute_density == pytest.approx(0.75)

    def test_gradient_error_tracked_every_step(self, rng):
        ds = synthetic_images(n_train=64, n_eval=16, size=8, seed=6)
        model = MLP(192, (32,), 10, rng=rng)
        x = ds.x_train.reshape(64, -1)
        result = train_with_tasd_gradients(
            model, x, ds.y_train, TASDConfig.parse("2:8"), epochs=2, batch_size=32
        )
        assert len(result.gradient_errors) == len(result.losses)
        assert result.mean_gradient_error > 0.0
