"""Tests for pruning (magnitude, structured, profiles, target discovery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.patterns import NMPattern
from repro.nn import synthetic_images
from repro.nn.models import MLP, resnet18
from repro.pruning import (
    activation_sparsity_profile,
    apply_masks,
    gelu_pseudo_density_profile,
    gemm_layers,
    global_magnitude_prune,
    is_nm_pruned,
    layerwise_magnitude_prune,
    magnitude_mask,
    make_mask_fn,
    nm_prune,
    nm_prune_and_finetune,
    prune_and_finetune,
    sparsity_report,
    weight_sparsity_profile,
)


class TestTargets:
    def test_gemm_layers_excludes_head_by_default(self, rng):
        model = MLP(8, (16, 16), 4, rng=rng)
        layers = gemm_layers(model)
        with_head = gemm_layers(model, include_head=True)
        assert len(with_head) == len(layers) + 1

    def test_resnet_layer_count(self, rng):
        model = resnet18(base_width=4, rng=rng)
        # stem + 16 block convs + 3 shortcut projections = 20 convs
        assert len(gemm_layers(model)) == 20

    def test_forward_order(self, rng):
        model = resnet18(base_width=4, rng=rng)
        names = [n for n, _ in gemm_layers(model)]
        assert names[0] == "stem.layers.0"


class TestMagnitudePruning:
    def test_mask_exact_fraction(self, rng):
        w = rng.normal(size=(32, 32))
        mask = magnitude_mask(w, 0.75)
        assert mask.sum() == pytest.approx(0.25 * w.size, abs=1)

    def test_mask_keeps_largest(self):
        w = np.array([[0.1, -5.0, 0.2, 3.0]])
        mask = magnitude_mask(w, 0.5)
        assert np.array_equal(mask, [[False, True, False, True]])

    def test_mask_zero_sparsity(self, rng):
        w = rng.normal(size=(4, 4))
        assert magnitude_mask(w, 0.0).all()

    def test_mask_invalid(self, rng):
        with pytest.raises(ValueError):
            magnitude_mask(rng.normal(size=(2, 2)), 1.0)

    def test_global_prune_hits_overall_target(self, rng):
        model = MLP(16, (64, 64), 4, rng=rng)
        global_magnitude_prune(model, 0.9)
        assert sparsity_report(model).overall == pytest.approx(0.9, abs=0.01)

    def test_global_prune_varies_per_layer(self, rng):
        """Global threshold -> per-layer sparsity spread (Fig. 6's premise)."""
        model = resnet18(base_width=8, rng=rng)
        global_magnitude_prune(model, 0.9)
        per_layer = list(sparsity_report(model).per_layer.values())
        assert max(per_layer) - min(per_layer) > 0.02

    def test_layerwise_prune_uniform(self, rng):
        model = MLP(16, (32,), 4, rng=rng)
        layerwise_magnitude_prune(model, 0.5)
        for s in sparsity_report(model).per_layer.values():
            assert s == pytest.approx(0.5, abs=0.02)

    def test_apply_masks_rezeros(self, rng):
        model = MLP(16, (32,), 4, rng=rng)
        masks = global_magnitude_prune(model, 0.5)
        # optimizer-like perturbation revives pruned weights
        for _, layer in gemm_layers(model, include_head=True):
            layer.weight.data += 0.01
        apply_masks(model, masks)
        assert sparsity_report(model).overall == pytest.approx(0.5, abs=0.02)

    def test_mask_fn_composes_with_training(self, rng):
        ds = synthetic_images(n_train=64, n_eval=16, size=8, seed=0)
        model = MLP(192, (32,), 10, rng=rng)
        masks, result = prune_and_finetune(
            model, ds.x_train.reshape(64, -1), ds.y_train, sparsity=0.8, finetune_epochs=1
        )
        assert sparsity_report(model).overall == pytest.approx(0.8, abs=0.02)
        assert result.epochs == 1


class TestStructuredPruning:
    def test_nm_prune_makes_legal(self, rng):
        model = MLP(16, (32, 32), 4, rng=rng)
        nm_prune(model, NMPattern(2, 4))
        assert is_nm_pruned(model, NMPattern(2, 4))

    def test_nm_prune_density(self, rng):
        model = MLP(16, (32,), 4, rng=rng)
        nm_prune(model, NMPattern(2, 4))
        assert sparsity_report(model).overall == pytest.approx(0.5, abs=0.01)

    def test_nm_prune_ragged_tail_kept(self, rng):
        model = MLP(6, (8,), 2, rng=rng)  # K=6: one 4-block + ragged 2
        nm_prune(model, NMPattern(2, 4))
        w = dict(gemm_layers(model, include_head=True))["net.layers.0"].weight.data
        assert np.count_nonzero(w[:, 4:]) == w[:, 4:].size  # tail untouched

    def test_nm_prune_and_finetune_keeps_pattern(self, rng):
        ds = synthetic_images(n_train=64, n_eval=16, size=8, seed=1)
        model = MLP(192, (32,), 10, rng=rng)
        nm_prune_and_finetune(model, ds.x_train.reshape(64, -1), ds.y_train,
                              NMPattern(2, 4), finetune_epochs=1)
        assert is_nm_pruned(model, NMPattern(2, 4))

    def test_is_nm_pruned_detects_violation(self, rng):
        model = MLP(16, (32,), 4, rng=rng)
        assert not is_nm_pruned(model, NMPattern(1, 4))


class TestProfiles:
    def test_weight_profile_shape(self):
        prof = weight_sparsity_profile(54, overall=0.95)
        assert len(prof) == 54
        assert prof[0] < prof[-1]  # first layer denser (Fig. 6)
        assert prof.max() <= 0.995

    def test_weight_profile_mean_near_overall(self):
        prof = weight_sparsity_profile(54, overall=0.95)
        assert abs(prof[10:].mean() - 0.95) < 0.04

    def test_activation_profile_band(self):
        prof = activation_sparsity_profile(54)
        assert np.all((prof >= 0.05) & (prof <= 0.95))
        assert 0.4 < prof.mean() < 0.75

    def test_pseudo_profile_band(self):
        prof = gelu_pseudo_density_profile(72)
        assert np.all((prof >= 0.15) & (prof <= 0.9))

    def test_profiles_deterministic(self):
        assert np.array_equal(weight_sparsity_profile(10), weight_sparsity_profile(10))

    def test_profile_invalid(self):
        with pytest.raises(ValueError):
            weight_sparsity_profile(0)
