"""Tests for model export → engine build (the §5.5 deployment pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.series import TASDConfig
from repro.gpu.export import (
    EngineSpec,
    build_engine_from_spec,
    export_model,
    load_spec,
    save_spec,
)
from repro.nn import synthetic_images
from repro.nn.models import MLP
from repro.pruning import gemm_layers
from repro.tasder import apply_weight_transform, clear_transform


@pytest.fixture
def model_and_input(rng):
    ds = synthetic_images(n_train=8, n_eval=8, size=8, seed=0)
    model = MLP(192, (64, 64), 10, rng=rng)
    return model, ds.x_eval.reshape(8, -1)


class TestExport:
    def test_dense_model_exports_no_sparse_layers(self, model_and_input):
        model, x = model_and_input
        spec = export_model(model, x[:2])
        assert spec.sparse_layers == frozenset()
        assert len(spec.layers) == len(gemm_layers(model))

    def test_tasd_24_layers_marked_sparse(self, model_and_input):
        """Layers whose effective weight is 2:4-legal select the sparse kernel."""
        model, x = model_and_input
        names = [n for n, _ in gemm_layers(model)]
        apply_weight_transform(model, {names[0]: TASDConfig.parse("2:4")})
        model.eval()
        spec = export_model(model, x[:2])
        assert names[0] in spec.sparse_layers
        assert names[1] not in spec.sparse_layers
        clear_transform(model)

    def test_json_roundtrip(self, model_and_input, tmp_path):
        model, x = model_and_input
        spec = export_model(model, x[:2], model_name="mlp")
        path = tmp_path / "engine.json"
        save_spec(spec, path)
        loaded = load_spec(path)
        assert loaded == spec

    def test_engine_build_from_spec(self, model_and_input):
        model, x = model_and_input
        names = [n for n, _ in gemm_layers(model)]
        apply_weight_transform(model, {n: TASDConfig.parse("2:4") for n in names})
        model.eval()
        spec = export_model(model, x[:2])
        plan = build_engine_from_spec(spec, batch=32)
        assert plan.num_sparse == len(names)
        assert plan.total_us > 0
        clear_transform(model)

    def test_sparse_engine_not_slower(self, model_and_input):
        model, x = model_and_input
        dense_spec = export_model(model, x[:2])
        names = [n for n, _ in gemm_layers(model)]
        apply_weight_transform(model, {n: TASDConfig.parse("2:4") for n in names})
        model.eval()
        sparse_spec = export_model(model, x[:2])
        clear_transform(model)
        dense_t = build_engine_from_spec(dense_spec, batch=256).total_us
        sparse_t = build_engine_from_spec(sparse_spec, batch=256).total_us
        assert sparse_t <= dense_t + 1e-9
