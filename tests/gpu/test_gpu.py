"""Tests for the real-system substitute: 2:4 kernels + GPU latency model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu import (
    RTX3080,
    build_engine,
    compress_2to4,
    decompress_2to4,
    engine_speedup,
    gemm_time_us,
    is_2to4_legal,
    layer_speedup,
    prune_2to4,
    sparse_matmul_2to4,
)
from repro.workloads import resnet_layers


class TestKernels:
    def test_prune_makes_legal(self, rng):
        w = rng.normal(size=(16, 64))
        assert not is_2to4_legal(w)
        assert is_2to4_legal(prune_2to4(w))

    def test_prune_bad_shape(self, rng):
        with pytest.raises(ValueError):
            prune_2to4(rng.normal(size=(4, 10)))

    def test_compress_roundtrip(self, rng):
        w = prune_2to4(rng.normal(size=(8, 32)))
        assert np.array_equal(decompress_2to4(compress_2to4(w)), w)

    def test_sparse_matmul_bit_exact(self, rng):
        """The headline property: the 2:4 kernel equals dense matmul."""
        w = prune_2to4(rng.normal(size=(16, 64)))
        x = rng.normal(size=(64, 24))
        assert np.allclose(sparse_matmul_2to4(compress_2to4(w), x), w @ x)

    def test_sparse_matmul_rejects_wrong_pattern(self, rng):
        from repro.core.patterns import NMPattern, pattern_view
        from repro.core.sparse_ops import nm_compress

        w = pattern_view(rng.normal(size=(4, 32)), NMPattern(4, 8))
        c = nm_compress(w, NMPattern(4, 8))
        with pytest.raises(ValueError):
            sparse_matmul_2to4(c, rng.normal(size=(32, 2)))


class TestPerfModel:
    def test_large_gemm_speedup_band(self):
        """Large MLP-style GEMMs approach the practical cuSPARSELt band."""
        s = layer_speedup(4096, 4096, 4096)
        assert 1.3 < s < 2.0

    def test_small_gemm_no_gain(self):
        """Launch overhead dominates tiny GEMMs: 2:4 gains nothing."""
        s = layer_speedup(64, 64, 64)
        assert s == pytest.approx(1.0, abs=0.05)

    def test_time_positive_and_monotone_in_size(self):
        t1 = gemm_time_us(256, 256, 256)
        t2 = gemm_time_us(1024, 1024, 1024)
        assert 0 < t1 < t2

    def test_sparse_halves_weight_traffic(self):
        """For a memory-bound (weight-heavy) GEMM, sparse cuts time via bytes."""
        dense = gemm_time_us(8192, 8192, 8, sparse=False)
        sparse = gemm_time_us(8192, 8192, 8, sparse=True)
        assert sparse < dense

    def test_x_traffic_factor(self):
        slow = gemm_time_us(64, 4608, 100000, x_traffic_factor=1.0)
        fast = gemm_time_us(64, 4608, 100000, x_traffic_factor=1 / 9)
        assert fast < slow


class TestEngine:
    @pytest.fixture(scope="class")
    def rn34_convs(self):
        return [l for l in resnet_layers(34) if l.kind == "conv"]

    def test_plan_kernel_selection(self, rn34_convs):
        sparse = {rn34_convs[-1].name}
        plan = build_engine(rn34_convs, sparse, batch=32)
        assert plan.num_sparse == 1
        assert plan.kernels[-1] == "sparse24"

    def test_speedup_monotone_in_layers(self, rn34_convs):
        names = [l.name for l in rn34_convs]
        speedups = [
            engine_speedup(rn34_convs, set(names[:k]), batch=32)
            for k in (0, 12, 24, 36)
        ]
        assert speedups[0] == 1.0
        assert speedups == sorted(speedups)

    def test_full_conversion_band(self, rn34_convs):
        """All-layer 2:4 lands in the paper's 1.3-1.6x end-to-end band."""
        s = engine_speedup(rn34_convs, {l.name for l in rn34_convs}, batch=32)
        assert 1.3 < s < 1.7

    def test_empty_sparse_set_identity(self, rn34_convs):
        assert engine_speedup(rn34_convs, set(), batch=32) == 1.0


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_kernel_equivalence(seed):
    g = np.random.default_rng(seed)
    w = prune_2to4(g.normal(size=(8, 16)))
    x = g.normal(size=(16, 4))
    assert np.allclose(sparse_matmul_2to4(compress_2to4(w), x), w @ x, atol=1e-10)
