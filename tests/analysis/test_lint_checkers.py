"""Per-checker fixtures for the invariant linter.

Each rule gets at least one must-flag and one must-pass fixture, run
through :func:`repro.analysis.lint_source` (no cache, no baseline).  The
must-flag cases are exactly the mutation checks the linter exists for:
delete a ``with self._lock``, leak a segment, raise an untyped error,
read the wall clock on the hot path, ship an unpicklable field.
"""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def lint(source: str, path: str = "<snippet>") -> list:
    return lint_source(textwrap.dedent(source), path=path)


def rules_of(diags) -> list[str]:
    return [d.rule for d in diags]


# ---------------------------------------------------------------------- #
# guarded-field
# ---------------------------------------------------------------------- #
GUARDED_LOCKED = """
    import threading

    class Engine:
        def __init__(self):
            self._lock = threading.Lock()
            self._depth = 0  # guarded-by: _lock

        def bump(self):
            with self._lock:
                self._depth += 1

        def depth(self):
            with self._lock:
                return self._depth
"""


def test_guarded_field_clean_when_lock_held():
    assert lint(GUARDED_LOCKED) == []


def test_guarded_field_flags_unlocked_access():
    # The mutation check: same class with the `with self._lock:` deleted.
    diags = lint(
        """
        import threading

        class Engine:
            def __init__(self):
                self._lock = threading.Lock()
                self._depth = 0  # guarded-by: _lock

            def bump(self):
                self._depth += 1
        """
    )
    assert rules_of(diags) == ["guarded-field"]
    assert "self._depth" in diags[0].message
    assert "_lock" in diags[0].message
    assert diags[0].qualname == "Engine.bump"


def test_guarded_field_write_and_read_both_flagged():
    diags = lint(
        """
        import threading

        class Engine:
            def __init__(self):
                self._lock = threading.Lock()
                self._depth = 0  # guarded-by: _lock

            def bad(self):
                x = self._depth
                self._depth = x + 1
        """
    )
    assert rules_of(diags) == ["guarded-field", "guarded-field"]
    assert "read" in diags[0].message
    assert "written" in diags[1].message


def test_guarded_field_constructor_exempt_and_wrong_lock_flagged():
    diags = lint(
        """
        import threading

        class Engine:
            def __init__(self):
                self._lock = threading.Lock()
                self._other = threading.Lock()
                self._depth = 0  # guarded-by: _lock

            def bad(self):
                with self._other:
                    return self._depth
        """
    )
    # __init__'s write is exempt; holding the *wrong* lock still flags.
    assert rules_of(diags) == ["guarded-field"]


def test_guarded_field_pragma_documents_benign_race():
    assert (
        lint(
            """
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._running = True  # guarded-by: _lock

                def peek(self):
                    # lint: disable=guarded-field — racy read is benign
                    return self._running
            """
        )
        == []
    )


# ---------------------------------------------------------------------- #
# shm-lifecycle
# ---------------------------------------------------------------------- #
def test_shm_leak_flagged():
    # The mutation check: a segment created, used, and never cleaned up.
    diags = lint(
        """
        from multiprocessing import shared_memory

        def leaky(n):
            shm = shared_memory.SharedMemory(create=True, size=n)
            return shm.name
        """
    )
    assert rules_of(diags) == ["shm-lifecycle"]
    assert "/dev/shm" in diags[0].message


def test_shm_finally_cleanup_passes():
    assert (
        lint(
            """
            from multiprocessing import shared_memory

            def careful(n):
                shm = shared_memory.SharedMemory(create=True, size=n)
                try:
                    return bytes(shm.buf[:4])
                finally:
                    shm.close()
                    shm.unlink()
            """
        )
        == []
    )


def test_shm_ownership_handoff_passes():
    # cls(shm, owner=True) / return shm / self._shm = shm all hand off.
    assert (
        lint(
            """
            from multiprocessing import shared_memory

            class Store:
                @classmethod
                def create(cls, n):
                    shm = shared_memory.SharedMemory(create=True, size=n)
                    return cls(shm, owner=True)

            def mint(n):
                return shared_memory.SharedMemory(create=True, size=n)
            """
        )
        == []
    )


def test_share_plan_tuple_binding_needs_cleanup():
    diags = lint(
        """
        def bad(plan, share_plan):
            store, spec = share_plan(plan)
            return spec

        def good(plan, share_plan):
            store, spec = share_plan(plan)
            try:
                return dict(spec)
            finally:
                store.unlink()
        """
    )
    assert rules_of(diags) == ["shm-lifecycle"]
    assert diags[0].qualname == "bad"


def test_shm_attach_without_create_not_a_trigger():
    assert (
        lint(
            """
            from multiprocessing import shared_memory

            def attach(name):
                shm = shared_memory.SharedMemory(name=name)
                return bytes(shm.buf[:4])
            """
        )
        == []
    )


# ---------------------------------------------------------------------- #
# typed-raise
# ---------------------------------------------------------------------- #
RUNTIME_PATH = "src/repro/runtime/fake.py"


def test_untyped_raise_flagged_in_runtime_public_api():
    # The mutation check: a public entry point raising bare RuntimeError.
    diags = lint(
        """
        class Engine:
            def submit(self, x):
                raise RuntimeError("engine is stopped")
        """,
        path=RUNTIME_PATH,
    )
    assert rules_of(diags) == ["typed-raise"]
    assert "RuntimeError" in diags[0].message


def test_typed_and_propagating_raises_pass():
    assert (
        lint(
            """
            class EngineStopped(RuntimeError):
                pass

            class Engine:
                def submit(self, x):
                    if x is None:
                        raise ValueError("x required")
                    raise EngineStopped("stopped")

                def forward(self, exc):
                    try:
                        raise exc
                    except OSError:
                        raise
            """,
            path=RUNTIME_PATH,
        )
        == []
    )


def test_private_helpers_and_non_runtime_paths_unchecked():
    bad = """
        class Engine:
            def _retry(self):
                raise RuntimeError("internal sentinel")

        def _helper():
            raise RuntimeError("private")
    """
    assert lint(bad, path=RUNTIME_PATH) == []
    # A public raiser outside src/repro/runtime/ is out of contract scope.
    assert (
        lint(
            """
            def runner():
                raise RuntimeError("scripts may")
            """,
            path="benchmarks/fake.py",
        )
        == []
    )


# ---------------------------------------------------------------------- #
# broad-except
# ---------------------------------------------------------------------- #
def test_broad_except_flagged_everywhere():
    diags = lint(
        """
        def swallow():
            try:
                work()
            except Exception:
                pass
        """,
        path="benchmarks/fake.py",
    )
    assert rules_of(diags) == ["broad-except"]


def test_broad_except_reraise_or_pragma_passes():
    assert (
        lint(
            """
            def chain():
                try:
                    work()
                except Exception as exc:
                    raise ValueError("wrapped") from exc

            def noted():
                try:
                    work()
                # lint: disable=broad-except — failure is counted and
                # asserted on below
                except Exception:
                    pass
            """
        )
        == []
    )


def test_bare_and_base_exception_also_flagged():
    diags = lint(
        """
        def a():
            try:
                work()
            except:
                pass

        def b():
            try:
                work()
            except (ValueError, BaseException):
                pass
        """
    )
    assert rules_of(diags) == ["broad-except", "broad-except"]


# ---------------------------------------------------------------------- #
# hot-path
# ---------------------------------------------------------------------- #
def test_hot_path_wall_clock_flagged():
    # The mutation check: time.time() sneaking into a @hot_path function.
    diags = lint(
        """
        import time
        from repro.analysis.annotations import hot_path

        @hot_path
        def record(batch):
            return time.time()
        """
    )
    assert rules_of(diags) == ["hot-path"]
    assert "perf_counter" in diags[0].message


def test_hot_path_lock_construction_print_and_log_flagged():
    diags = lint(
        """
        import threading
        from repro.analysis.annotations import hot_path

        @hot_path
        def busy(logger):
            lock = threading.Lock()
            print("serving")
            logger.info("served")
            return lock
        """
    )
    assert rules_of(diags) == ["hot-path"] * 3


def test_hot_path_monotonic_clocks_pass_and_undecorated_ignored():
    assert (
        lint(
            """
            import time
            from repro.analysis.annotations import hot_path

            @hot_path
            def record(batch):
                t0 = time.perf_counter()
                return time.monotonic() - t0

            def cold():
                print(time.time())
            """
        )
        == []
    )


def test_hot_path_from_import_of_time_tracked():
    diags = lint(
        """
        from time import time
        from repro.analysis.annotations import hot_path

        @hot_path
        def record():
            return time()
        """
    )
    assert rules_of(diags) == ["hot-path"]


# ---------------------------------------------------------------------- #
# cross-process
# ---------------------------------------------------------------------- #
def test_cross_process_unpicklable_field_flagged():
    # The mutation check: a lock smuggled into a pipe-shipped dataclass.
    diags = lint(
        """
        import threading
        from dataclasses import dataclass
        from repro.analysis.annotations import cross_process

        @cross_process
        @dataclass
        class Msg:
            uid: int
            lock: threading.Lock
        """
    )
    assert rules_of(diags) == ["cross-process"]
    assert "'lock'" in diags[0].message and "Msg" in diags[0].message


def test_cross_process_primitives_containers_ndarray_pass():
    assert (
        lint(
            """
            from dataclasses import dataclass
            import numpy as np
            from repro.analysis.annotations import cross_process

            @cross_process
            @dataclass
            class Msg:
                uid: int
                name: str
                payload: np.ndarray
                widths: dict[int, int]
                shape: tuple[int, ...]
                note: "str | None" = None
            """
        )
        == []
    )


def test_cross_process_resolves_through_state_dunders_and_dataclasses():
    assert (
        lint(
            """
            from dataclasses import dataclass
            from repro.analysis.annotations import cross_process

            class Histogram:
                def __getstate__(self):
                    return {}

                def __setstate__(self, state):
                    pass

            @dataclass
            class Inner:
                count: int

            @cross_process
            @dataclass
            class Counters:
                hist: Histogram
                inner: Inner
            """
        )
        == []
    )


def test_cross_process_bad_nested_field_reported_via_path():
    diags = lint(
        """
        import threading
        from dataclasses import dataclass
        from repro.analysis.annotations import cross_process

        @dataclass
        class Inner:
            lock: threading.Lock

        @cross_process
        @dataclass
        class Outer:
            inner: Inner
        """
    )
    assert rules_of(diags) == ["cross-process"]
    assert "via Inner.lock" in diags[0].message


def test_cross_process_undecorated_class_ignored():
    assert (
        lint(
            """
            import threading
            from dataclasses import dataclass

            @dataclass
            class Local:
                lock: threading.Lock
            """
        )
        == []
    )


# ---------------------------------------------------------------------- #
# shard-spec
# ---------------------------------------------------------------------- #
SHARD_CLEAN = """
    from repro.analysis.annotations import cross_process, hot_path
    from dataclasses import dataclass

    @cross_process
    @dataclass(frozen=True)
    class ShardSpec:
        layer: str
        ranges: tuple

    @hot_path
    def shard_partial(plan, name, xt, start, stop, slices):
        return slices[(name, start, stop)].matmul(xt)

    class Pool:
        @hot_path
        def run_sharded(self, x, observer=None):
            return x

        @hot_path
        def _scatter_layer(self, lp, xt):
            return xt
"""


def test_shard_spec_clean_when_decorated():
    assert lint(SHARD_CLEAN, path="src/repro/runtime/fake.py") == []


def test_shard_spec_flags_undecorated_shard_table():
    # The mutation check: ShardSpec with its @cross_process deleted.
    diags = lint(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class ShardSpec:
            layer: str
            ranges: tuple
        """,
        path="src/repro/runtime/fake.py",
    )
    assert rules_of(diags) == ["shard-spec"]
    assert "cross_process" in diags[0].message
    assert "ShardSpec" in diags[0].message


def test_shard_spec_flags_unfenced_dispatch_paths():
    # run_sharded and shard_partial with their @hot_path fences deleted.
    diags = lint(
        """
        class Pool:
            def run_sharded(self, x, observer=None):
                return x

        def shard_partial(plan, name, xt, start, stop, slices):
            return xt
        """,
        path="src/repro/runtime/fake.py",
    )
    assert sorted(rules_of(diags)) == ["shard-spec", "shard-spec"]
    assert all("hot_path" in d.message for d in diags)


def test_shard_spec_other_names_ignored():
    assert (
        lint(
            """
            class OtherSpec:
                pass

            def run_batches(x):
                return x
            """,
            path="src/repro/runtime/fake.py",
        )
        == []
    )
