"""Engine-level behavior: suppression scoping, the baseline ratchet,
the content-digest cache, the CLI, and the linter's own gate over this
repository (must be clean — the CI contract)."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, lint_paths, lint_source
from repro.analysis.engine import update_baseline
from repro.lint import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]

BROAD = textwrap.dedent(
    """
    def swallow():
        try:
            work()
        except Exception:
            pass
    """
)

CLEAN = textwrap.dedent(
    """
    def swallow():
        try:
            work()
        except ValueError:
            pass
    """
)


# ---------------------------------------------------------------------- #
# Suppression pragmas
# ---------------------------------------------------------------------- #
def test_line_pragma_suppresses_only_that_rule():
    src = textwrap.dedent(
        """
        def swallow():
            try:
                work()
            except Exception:  # lint: disable=broad-except — counted below
                pass
        """
    )
    assert lint_source(src) == []
    # A pragma for a different rule does not suppress this one.
    other = src.replace("disable=broad-except", "disable=hot-path")
    assert [d.rule for d in lint_source(other)] == ["broad-except"]


def test_comment_line_pragma_covers_next_code_line():
    src = textwrap.dedent(
        """
        def swallow():
            try:
                work()
            # lint: disable=broad-except — reason lives on its own line
            except Exception:
                pass
        """
    )
    assert lint_source(src) == []


def test_def_line_pragma_covers_whole_body():
    src = textwrap.dedent(
        """
        # lint: disable=broad-except — this helper deliberately swallows
        def swallow():
            try:
                work()
            except Exception:
                pass
            try:
                more()
            except Exception:
                pass
        """
    )
    assert lint_source(src) == []


def test_multi_rule_pragma():
    src = textwrap.dedent(
        """
        import time
        from repro.analysis.annotations import hot_path

        @hot_path
        def record():
            try:
                # lint: disable=hot-path,broad-except — fixture
                return time.time()
            except Exception:
                pass
        """
    )
    # The except line carries no pragma of its own; only hot-path's
    # offending line is covered.
    assert [d.rule for d in lint_source(src)] == ["broad-except"]


# ---------------------------------------------------------------------- #
# Baseline ratchet
# ---------------------------------------------------------------------- #
def test_baseline_absorbs_known_finding_and_flags_new_ones(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BROAD)
    baseline = tmp_path / "baseline.json"

    first = lint_paths([target], root=tmp_path, use_cache=False)
    assert [d.rule for d in first.diagnostics] == ["broad-except"]

    update_baseline(first, baseline, root=tmp_path, justification="known debt")
    entries = json.loads(baseline.read_text())["entries"]
    assert len(entries) == 1 and entries[0]["justification"] == "known debt"

    second = lint_paths([target], root=tmp_path, baseline_path=baseline, use_cache=False)
    assert second.diagnostics == [] and len(second.baselined) == 1
    assert second.stale_baseline == []

    # A *new* violation in the same file is not covered by the old entry.
    target.write_text(BROAD + BROAD.replace("swallow", "swallow_two"))
    third = lint_paths([target], root=tmp_path, baseline_path=baseline, use_cache=False)
    assert [d.qualname for d in third.diagnostics] == ["swallow_two"]
    assert len(third.baselined) == 1


def test_baseline_fingerprint_survives_line_drift(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BROAD)
    baseline = tmp_path / "baseline.json"
    update_baseline(
        lint_paths([target], root=tmp_path, use_cache=False), baseline, root=tmp_path
    )
    # Unrelated lines above shift the finding's line number; the
    # fingerprint keys on (rule, path, qualname, line text), not number.
    target.write_text("import os\nimport sys\n" + BROAD)
    result = lint_paths([target], root=tmp_path, baseline_path=baseline, use_cache=False)
    assert result.diagnostics == [] and len(result.baselined) == 1


def test_ratchet_reports_stale_entries_once_fixed(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BROAD)
    baseline = tmp_path / "baseline.json"
    update_baseline(
        lint_paths([target], root=tmp_path, use_cache=False), baseline, root=tmp_path
    )
    target.write_text(CLEAN)
    result = lint_paths([target], root=tmp_path, baseline_path=baseline, use_cache=False)
    assert result.diagnostics == []
    assert [e.rule for e in result.stale_baseline] == ["broad-except"]
    # --strict turns the stale entry into a failing exit (the ratchet).
    assert (
        lint_main(
            [str(target), "--root", str(tmp_path), "--baseline", str(baseline), "--no-cache"]
        )
        == 0
    )
    assert (
        lint_main(
            [
                str(target),
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--no-cache",
                "--strict",
            ]
        )
        == 1
    )


def test_baseline_loader_rejects_unknown_version(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError):
        Baseline.load(bad)


# ---------------------------------------------------------------------- #
# Cache
# ---------------------------------------------------------------------- #
def test_cache_replays_unchanged_files_and_invalidates_on_edit(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BROAD)
    cache = tmp_path / "cache.json"

    cold = lint_paths([target], root=tmp_path, cache_path=cache)
    assert cold.cache_hits == 0 and len(cold.diagnostics) == 1

    warm = lint_paths([target], root=tmp_path, cache_path=cache)
    assert warm.cache_hits == 1
    assert warm.diagnostics == cold.diagnostics

    target.write_text(CLEAN)
    edited = lint_paths([target], root=tmp_path, cache_path=cache)
    assert edited.cache_hits == 0 and edited.diagnostics == []


def test_cached_diagnostics_are_post_suppression(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        BROAD.replace(
            "except Exception:",
            "except Exception:  # lint: disable=broad-except — fixture",
        )
    )
    cache = tmp_path / "cache.json"
    assert lint_paths([target], root=tmp_path, cache_path=cache).clean
    warm = lint_paths([target], root=tmp_path, cache_path=cache)
    assert warm.cache_hits == 1 and warm.clean


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
def test_cli_exit_codes_and_json(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(BROAD)
    args = [str(target), "--root", str(tmp_path), "--no-cache"]
    assert lint_main(args) == 1
    capsys.readouterr()
    assert lint_main(args + ["--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [d["rule"] for d in payload["findings"]] == ["broad-except"]

    target.write_text(CLEAN)
    assert lint_main(args) == 0
    assert lint_main(["--list-rules"]) == 0
    assert lint_main([str(target), "--root", str(tmp_path), "--rule", "no-such-rule"]) == 2


def test_cli_rule_filter(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(BROAD)
    args = [str(target), "--root", str(tmp_path), "--no-cache"]
    assert lint_main(args + ["--rule", "hot-path"]) == 0
    assert lint_main(args + ["--rule", "broad-except"]) == 1
    capsys.readouterr()


def test_cli_update_baseline_roundtrip(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(BROAD)
    baseline = tmp_path / "baseline.json"
    args = [
        str(target),
        "--root",
        str(tmp_path),
        "--baseline",
        str(baseline),
        "--no-cache",
    ]
    assert lint_main(args + ["--update-baseline"]) == 0
    assert lint_main(args + ["--strict"]) == 0
    capsys.readouterr()


def test_cli_syntax_error_is_a_finding(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("def broken(:\n")
    assert lint_main([str(target), "--root", str(tmp_path), "--no-cache"]) == 1
    assert "syntax error" in capsys.readouterr().out


# ---------------------------------------------------------------------- #
# Self-gate: this repository lints clean under --strict
# ---------------------------------------------------------------------- #
def test_repo_lints_clean_strict(tmp_path):
    result = lint_paths(
        [REPO_ROOT / p for p in ("src", "tests", "benchmarks")],
        root=REPO_ROOT,
        baseline_path=REPO_ROOT / "lint-baseline.json",
        use_cache=False,
    )
    assert result.errors == []
    assert result.diagnostics == [], "\n".join(d.render() for d in result.diagnostics)
    assert result.stale_baseline == []
    assert result.files > 100  # the sweep really covered the tree
