"""Cross-subsystem consistency: the scaled models, the full-size shape
derivations, and the experiment plumbing must describe the *same* networks.

These checks catch the silent drift failure mode of a repo this layered:
e.g. the Fig. 16 driver maps scaled-model layers onto full-size shapes by
position, which is only sound if both sides enumerate identical topologies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.validation import validate_against_paper
from repro.nn.models import BertEncoder, ResNet, VGG
from repro.pruning import gemm_layers
from repro.workloads import bert_layers, resnet_layers, vgg_layers


class TestScaledModelMatchesFullSizeTopology:
    @pytest.mark.parametrize("depth", [18, 34, 50])
    def test_resnet_gemm_layer_counts(self, depth, rng):
        """Scaled ResNets enumerate exactly the full-size conv layers."""
        model = ResNet(depth=depth, base_width=4, rng=rng)
        scaled = gemm_layers(model)  # head excluded
        full = [l for l in resnet_layers(depth) if l.kind == "conv"]
        assert len(scaled) == len(full)

    @pytest.mark.parametrize("depth", [11, 16])
    def test_vgg_gemm_layer_counts(self, depth, rng):
        model = VGG(depth=depth, base_width=4, rng=rng)
        scaled = gemm_layers(model)
        full = [l for l in vgg_layers(depth) if l.kind == "conv"]
        # the scaled VGG folds the classifier to one head (excluded); the
        # full-size derivation adds two FCs — conv counts must agree.
        assert len(scaled) == len(full)

    def test_resnet_channel_ratios_preserved(self, rng):
        """Width scaling is uniform: stage-to-stage channel ratios match."""
        model = ResNet(depth=50, base_width=4, rng=rng)
        scaled_out = [layer.weight_matrix().shape[0] for _, layer in gemm_layers(model)]
        full_out = [l.out_features for l in resnet_layers(50) if l.kind == "conv"]
        ratios = {f / s for s, f in zip(scaled_out, full_out)}
        assert len(ratios) == 1  # a single global scale factor (64/4 = 16)

    def test_resnet_kernel_structure_preserved(self, rng):
        """3x3 vs 1x1 conv placement matches the full-size derivation."""
        model = ResNet(depth=50, base_width=4, rng=rng)
        scaled_k = [
            layer.weight.data.shape[-1] for _, layer in gemm_layers(model)
        ]  # kernel width per conv
        full_is_3x3 = [
            l.reduction % 9 == 0 and ".conv2" in l.name or l.name == "conv1"
            for l in resnet_layers(50)
            if l.kind == "conv"
        ]
        for k, is_3x3 in zip(scaled_k, full_is_3x3):
            if is_3x3 and "conv1" not in str(is_3x3):
                assert k in (3, 7)

    def test_bert_layer_counts(self, rng):
        model = BertEncoder(num_layers=4, rng=rng)
        scaled = gemm_layers(model)
        full = bert_layers(num_layers=4)
        # scaled model counts qkv as ONE fused projection; full-size lists
        # q/k/v separately: scaled has 4 FCs per block vs full-size 6.
        assert len(scaled) == 4 * 4
        assert len(full) == 4 * 6

    def test_fig16_mapping_precondition(self, rng):
        """The positional mini->full mapping Fig. 16 relies on."""
        model = ResNet(depth=34, base_width=4, rng=rng)
        assert len(gemm_layers(model)) == len(
            [l for l in resnet_layers(34) if l.kind == "conv"]
        )


class TestPaperCorrelation:
    @pytest.fixture(scope="class")
    def validation(self):
        return validate_against_paper()

    def test_rank_correlation_high(self, validation):
        """Measured EDPs must rank the paper's quoted cells correctly
        (measured: 0.895 over the 12 quoted cells)."""
        assert validation.spearman > 0.85

    def test_log_errors_bounded(self, validation):
        """'Roughly what factor': within ~2x everywhere, ~1.35x on average."""
        assert validation.max_log2_error < 1.0
        assert validation.mean_log2_error < 0.45

    def test_covers_all_quoted_cells(self, validation):
        assert len(validation.cells) == 12

    def test_table_renders(self, validation):
        out = validation.table()
        assert "Spearman" in out
