"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep property tests snappy and deterministic in CI-like runs.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def fig4_matrix() -> np.ndarray:
    """The worked 2x8 example of Fig. 4."""
    return np.array(
        [
            [1, 3, 0, 0, 2, 4, 4, 1],
            [2, 0, 0, 0, 0, 3, 1, 4],
        ],
        dtype=float,
    )
