"""End-to-end integration: the paper's full pipeline on one small model.

Train → prune (unstructured) → TASDER (TASD-W greedy + TASD-A calibrated)
→ apply transforms → verify accuracy gate → map per-layer configs onto the
analytical accelerator → confirm the EDP story end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.series import DENSE_CONFIG
from repro.hw import LayerSpec, build_model
from repro.nn import Adam, evaluate_accuracy, synthetic_images, train_classifier
from repro.nn.models import resnet18
from repro.pruning import gemm_layers, prune_and_finetune, sparsity_report
from repro.tasder import TTC_VEGETA_M8, Tasder, clear_transform, collect_gemm_shapes


@pytest.fixture(scope="module")
def pipeline():
    dataset = synthetic_images(n_train=384, n_eval=192, size=16, noise=0.6, seed=0)
    model = resnet18(base_width=8, rng=np.random.default_rng(0))
    train_classifier(
        model, dataset.x_train, dataset.y_train, epochs=4,
        optimizer=Adam(model, lr=2e-3), seed=0,
    )
    dense_accuracy = evaluate_accuracy(model, dataset.x_eval, dataset.y_eval)
    prune_and_finetune(model, dataset.x_train, dataset.y_train, sparsity=0.9, finetune_epochs=2)
    return model, dataset, dense_accuracy


class TestFullPipeline:
    def test_pruning_reaches_target_and_keeps_accuracy(self, pipeline):
        model, dataset, dense_accuracy = pipeline
        report = sparsity_report(model)
        assert report.overall == pytest.approx(0.9, abs=0.01)
        sparse_accuracy = evaluate_accuracy(model, dataset.x_eval, dataset.y_eval)
        assert sparse_accuracy >= 0.9 * dense_accuracy

    def test_tasdw_meets_gate_and_saves_compute(self, pipeline):
        model, dataset, _ = pipeline
        result = Tasder(model, dataset, TTC_VEGETA_M8).optimize_weights(eval_every=6)
        assert result.accuracy_retention >= 0.99 - 1e-9
        assert result.mac_reduction > 0.4  # the Fig. 20 band for 90 % sparse CNNs
        # every selected config is executable on the target hardware
        menu = set(TTC_VEGETA_M8.menu().values())
        for cfg in result.transform.weight_configs.values():
            assert cfg in menu

    def test_tasda_is_more_conservative_than_tasdw(self, pipeline):
        """Fig. 14's asymmetry: activations tolerate less approximation."""
        model, dataset, _ = pipeline
        w = Tasder(model, dataset, TTC_VEGETA_M8).optimize_weights(eval_every=6)
        a = Tasder(model, dataset, TTC_VEGETA_M8, alpha=0.0).optimize_activations()
        assert a.compute_fraction >= w.compute_fraction - 0.05

    def test_transform_to_accelerator_end_to_end(self, pipeline):
        """Per-layer configs found on the real model drive the HW model."""
        model, dataset, _ = pipeline
        result = Tasder(model, dataset, TTC_VEGETA_M8).optimize_weights(eval_every=6)
        shapes = collect_gemm_shapes(model, dataset.x_eval[:2])
        ttc = build_model("TTC-VEGETA-M8")
        tc = build_model("TC")

        def specs(with_configs: bool):
            out = []
            for name, layer in gemm_layers(model):
                gs = shapes[name]
                w = layer.weight_matrix()
                cfg = result.transform.weight_configs.get(name, DENSE_CONFIG)
                out.append(
                    LayerSpec(
                        name=name, m=gs.n, k=gs.k, n=gs.m,
                        a_density=np.count_nonzero(w) / w.size,
                        b_density=0.5,
                        a_config=cfg if with_configs else DENSE_CONFIG,
                    )
                )
            return out

        baseline = tc.model.run_network(specs(with_configs=False))
        accelerated = ttc.model.run_network(specs(with_configs=True))
        edp = accelerated.edp / baseline.edp
        assert edp < 0.7  # TASD-W on a 90 % sparse CNN must pay off clearly

    def test_clear_transform_restores_exactly(self, pipeline):
        model, dataset, _ = pipeline
        before = evaluate_accuracy(model, dataset.x_eval, dataset.y_eval)
        tasder = Tasder(model, dataset, TTC_VEGETA_M8)
        result = tasder.optimize_weights(eval_every=6)
        tasder.apply(result.transform)
        clear_transform(model)
        assert evaluate_accuracy(model, dataset.x_eval, dataset.y_eval) == before
