"""Tests for reporting helpers, the CLI, and experiment plumbing."""

from __future__ import annotations

import pytest

from repro.cli import COMMANDS, main
from repro.experiments.reporting import format_series, format_table


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "long_header"], [(1, 2.5), (333, 4.125)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_format_table_title(self):
        out = format_table(["x"], [(1,)], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_float_formatting(self):
        out = format_table(["v"], [(0.123456,)], float_fmt="{:.2f}")
        assert "0.12" in out

    def test_format_series(self):
        out = format_series([1.0, 2.0], [0.5, 0.25], "x", "y")
        assert "0.5000" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "table2" in out

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        assert "2:8+1:8" in capsys.readouterr().out

    def test_fig15_command(self, capsys):
        assert main(["fig15"]) == 0
        assert "dram" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_every_fast_command_registered(self):
        for name in ("table1", "table2", "table3", "table4", "fig12", "fig15",
                      "fig17", "fig18", "fig19"):
            assert name in COMMANDS

    def test_autotune_and_backend_are_mutually_exclusive(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["compile", "--autotune", "--backend", "fused-gather"])

    def test_compile_with_fixed_backend(self, capsys):
        assert main(["compile", "--backend", "fused-gather", "--sparsity", "0.5"]) == 0
        assert "fused-gather" in capsys.readouterr().out
