"""Tests for reporting helpers, the CLI, and experiment plumbing."""

from __future__ import annotations

import pytest

from repro.cli import COMMANDS, main
from repro.experiments.reporting import format_series, format_table


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "long_header"], [(1, 2.5), (333, 4.125)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_format_table_title(self):
        out = format_table(["x"], [(1,)], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_float_formatting(self):
        out = format_table(["v"], [(0.123456,)], float_fmt="{:.2f}")
        assert "0.12" in out

    def test_format_series(self):
        out = format_series([1.0, 2.0], [0.5, 0.25], "x", "y")
        assert "0.5000" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "table2" in out

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        assert "2:8+1:8" in capsys.readouterr().out

    def test_fig15_command(self, capsys):
        assert main(["fig15"]) == 0
        assert "dram" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_every_fast_command_registered(self):
        for name in ("table1", "table2", "table3", "table4", "fig12", "fig15",
                      "fig17", "fig18", "fig19"):
            assert name in COMMANDS

    def test_autotune_and_backend_are_mutually_exclusive(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["compile", "--autotune", "--backend", "fused-gather"])

    def test_compile_with_fixed_backend(self, capsys):
        assert main(["compile", "--backend", "fused-gather", "--sparsity", "0.5"]) == 0
        assert "fused-gather" in capsys.readouterr().out

    def test_unknown_backend_exits_cleanly_listing_names(self):
        """serve --backend bogus must not die mid-compile with a KeyError."""
        with pytest.raises(SystemExit) as exc_info:
            main(["serve", "--backend", "bogus"])
        message = str(exc_info.value)
        assert "bogus" in message
        assert "einsum-gather" in message  # lists the valid names

    def test_compile_save_then_serve_from_plan(self, capsys, tmp_path):
        plan_path = str(tmp_path / "plan.npz")
        assert main(["compile", "--save-plan", plan_path]) == 0
        assert "plan saved" in capsys.readouterr().out
        assert main(["serve", "--plan", plan_path, "--requests", "4"]) == 0
        assert "requests" in capsys.readouterr().out

    def test_plan_flag_conflicts_with_compile_options(self, tmp_path):
        plan = str(tmp_path / "x.npz")
        with pytest.raises(SystemExit, match="only apply when compiling"):
            main(["compile", "--plan", plan, "--autotune"])
        # --config would be silently ignored (the artifact embeds its series
        # config), so it must be rejected just as explicitly.
        with pytest.raises(SystemExit, match="only apply when compiling"):
            main(["serve", "--plan", plan, "--config", "1:4"])

    def test_missing_plan_artifact_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["serve", "--plan", str(tmp_path / "missing.npz")])

    def test_unwritable_save_plan_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot save plan"):
            main(["compile", "--save-plan", str(tmp_path / "no" / "dir" / "p.npz")])

    def test_stale_plan_artifact_exits_cleanly(self, capsys, tmp_path):
        plan_path = str(tmp_path / "plan.npz")
        assert main(["compile", "--save-plan", plan_path]) == 0
        capsys.readouterr()
        # A different sparsity prunes different weights -> digest mismatch.
        with pytest.raises(SystemExit, match="different weights"):
            main(["compile", "--plan", plan_path, "--sparsity", "0.5"])


class TestServeSignals:
    """`serve` maps SIGTERM -> graceful drain and SIGHUP -> plan reload.

    The handlers only set flags (all engine work happens on the main
    thread between future waits), so the two halves are tested
    separately and deterministically: the handler mapping by delivering
    real signals to ourselves, and the serve-loop reaction by
    pre-loading the flag dict as if the signal had already arrived.
    """

    def test_handlers_set_flags_only(self):
        import os
        import signal

        from repro import cli

        flags: dict = {}
        previous = cli._install_serve_signals(flags)
        assert previous is not None  # pytest runs on the main thread
        try:
            os.kill(os.getpid(), signal.SIGTERM)
            assert flags == {"drain": True}
            os.kill(os.getpid(), signal.SIGHUP)
            assert flags == {"drain": True, "swap": True}
        finally:
            cli._restore_serve_signals(previous)
        assert signal.getsignal(signal.SIGTERM) is previous[signal.SIGTERM]

    def test_sigterm_drains_and_exits_zero(self, capsys, monkeypatch):
        from repro import cli

        def preloaded(flags):
            flags["drain"] = True  # as if SIGTERM beat the first wait
            return None

        monkeypatch.setattr(cli, "_install_serve_signals", preloaded)
        assert main(["serve", "--requests", "4"]) == 0
        out = capsys.readouterr().out
        assert "SIGTERM: drained gracefully, queue empty" in out

    def test_sighup_reloads_plan_artifact(self, capsys, monkeypatch, tmp_path):
        from repro import cli

        plan_path = str(tmp_path / "plan.npz")
        assert main(["compile", "--save-plan", plan_path]) == 0
        capsys.readouterr()

        def preloaded(flags):
            flags["swap"] = True
            return None

        monkeypatch.setattr(cli, "_install_serve_signals", preloaded)
        assert main(["serve", "--plan", plan_path, "--requests", "4"]) == 0
        out = capsys.readouterr().out
        assert f"SIGHUP: hot-swapped plan from {plan_path}" in out

    def test_sighup_without_plan_path_is_ignored(self, capsys, monkeypatch):
        from repro import cli

        def preloaded(flags):
            flags["swap"] = True
            return None

        monkeypatch.setattr(cli, "_install_serve_signals", preloaded)
        assert main(["serve", "--requests", "4"]) == 0
        out = capsys.readouterr().out
        assert "SIGHUP ignored: no --plan artifact path to reload" in out
