"""Shape assertions for the fast (no-training) experiment drivers.

These encode the *qualitative claims* of the paper's evaluation — who wins,
by roughly what factor, where crossovers fall — as executable checks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    fig12_edp,
    fig15_energy_breakdown,
    fig17_synthetic,
    fig18_matmul_error,
    fig19_ablation,
    tables,
)


@pytest.fixture(scope="module")
def fig12():
    return fig12_edp.run()


class TestTables:
    def test_table2_matches_paper(self):
        out = tables.table2()
        assert "3:8      2:8+1:8" in out.replace("  ", "  ")
        assert "7:8" in out and "-" in out
        for row in ("2:8+1:8", "4:8+1:8", "4:8+2:8", "Dense"):
            assert row in out

    def test_table1_renders(self):
        assert "TASD (this work)" in tables.table1()

    def test_table3_lists_all_designs(self):
        out = tables.table3()
        for d in ("TC", "DSTC", "TTC-STC-M4", "TTC-VEGETA-M8"):
            assert d in out

    def test_table4_dimensions(self):
        out = tables.table4()
        assert "M784-N128-K1152" in out
        assert "M3072-N128-K768" in out or "M128-N3072-K768" in out


class TestFig12Shapes:
    """The Section 5.2 claims, as assertions on normalized EDP."""

    def test_tc_baseline_is_one(self, fig12):
        for wl in fig12.workloads:
            assert fig12.cell(wl, "TC").edp == pytest.approx(1.0)

    def test_dstc_loses_on_dense_workloads(self, fig12):
        assert fig12.cell("Dense ResNet50", "DSTC").edp > 1.0
        assert fig12.cell("Dense BERT", "DSTC").edp > 1.5

    def test_dstc_dominates_two_side_sparse(self, fig12):
        """DSTC's one win: sparse ResNet50 (paper: 0.13)."""
        edp = fig12.cell("Sparse ResNet50", "DSTC").edp
        assert edp < 0.25
        for d in ("TTC-STC-M4", "TTC-STC-M8", "TTC-VEGETA-M4"):
            assert edp < fig12.cell("Sparse ResNet50", d).edp

    def test_every_ttc_improves_every_workload(self, fig12):
        for wl in fig12.workloads:
            for d in ("TTC-STC-M4", "TTC-STC-M8", "TTC-VEGETA-M4", "TTC-VEGETA-M8"):
                assert fig12.cell(wl, d).edp < 1.0, (wl, d)

    def test_vegeta_m8_best_ttc_everywhere(self, fig12):
        for wl in fig12.workloads:
            best = fig12.cell(wl, "TTC-VEGETA-M8").edp
            for d in ("TTC-STC-M4", "TTC-STC-M8", "TTC-VEGETA-M4"):
                assert best <= fig12.cell(wl, d).edp + 1e-9

    def test_flexibility_ordering(self, fig12):
        """More patterns (VEGETA > STC) helps at equal M (geomean)."""
        assert fig12.geomean_edp("TTC-VEGETA-M4") < fig12.geomean_edp("TTC-STC-M4")
        assert fig12.geomean_edp("TTC-VEGETA-M8") < fig12.geomean_edp("TTC-STC-M8")

    def test_vegeta_m8_sparse_factors(self, fig12):
        """Paper: 83 % / 82 % EDP improvement on sparse RN50 / BERT."""
        assert fig12.cell("Sparse ResNet50", "TTC-VEGETA-M8").edp < 0.3
        assert fig12.cell("Sparse BERT", "TTC-VEGETA-M8").edp < 0.3

    def test_vegeta_m8_dense_factors(self, fig12):
        """Paper: 58 % / 61 % EDP improvement on dense RN50 / BERT."""
        assert 0.25 < fig12.cell("Dense ResNet50", "TTC-VEGETA-M8").edp < 0.60
        assert 0.20 < fig12.cell("Dense BERT", "TTC-VEGETA-M8").edp < 0.60

    def test_dstc_geomean_near_paper(self, fig12):
        """Paper: DSTC reduces EDP by ~35 % on average."""
        assert 0.45 < fig12.geomean_edp("DSTC") < 0.80

    def test_ttc_vegeta_m8_geomean_near_paper(self, fig12):
        """Paper: TASD improves EDP by ~70 % on average (up to 83 %)."""
        gm = fig12.geomean_edp("TTC-VEGETA-M8")
        assert 0.15 < gm < 0.40

    def test_representative_layers_present(self, fig12):
        cell = fig12.cell("Sparse ResNet50", "TTC-VEGETA-M8")
        assert set(cell.layer_edp) == {"L1", "L2", "L3"}

    def test_tables_render(self, fig12):
        assert "Geomean" in fig12.edp_table()
        assert "Latency" in fig12.latency_energy_table()


class TestFig13Shapes:
    def test_latency_and_energy_both_improve_on_ttc(self, fig12):
        for wl in fig12.workloads:
            c = fig12.cell(wl, "TTC-VEGETA-M8")
            assert c.latency <= 1.0
            assert c.energy < 1.0

    def test_ttc_vegeta_m8_most_energy_efficient(self, fig12):
        """Paper: TTC-VEGETA-M8 is the most energy-efficient design.

        On two-side-sparse ResNet50 our calibration puts DSTC in a near-tie
        with M8 (the paper has M8 narrowly ahead); we assert strict wins on
        the other three workloads and a ≤20 % gap on sparse RN50 — the
        deviation is recorded in EXPERIMENTS.md.
        """
        for wl in fig12.workloads:
            best = fig12.cell(wl, "TTC-VEGETA-M8").energy
            for d in ("TTC-STC-M4", "TTC-STC-M8", "TTC-VEGETA-M4"):
                assert best <= fig12.cell(wl, d).energy + 1e-9
            dstc = fig12.cell(wl, "DSTC").energy
            if wl == "Sparse ResNet50":
                assert best <= dstc * 1.2
            else:
                assert best <= dstc + 1e-9

    def test_dstc_latency_competitive_only_sparse_rn50(self, fig12):
        """Paper: TTC-VEGETA-M8 is slower than DSTC only on sparse RN50.

        Our calibration lands the two within a few percent there (a tie);
        everywhere else M8 must be strictly faster than DSTC.
        """
        m8 = fig12.cell("Sparse ResNet50", "TTC-VEGETA-M8").latency
        dstc = fig12.cell("Sparse ResNet50", "DSTC").latency
        assert abs(dstc - m8) / dstc < 0.15
        for wl in ("Dense ResNet50", "Dense BERT", "Sparse BERT"):
            assert fig12.cell(wl, "DSTC").latency > fig12.cell(wl, "TTC-VEGETA-M8").latency


class TestFig15Shapes:
    def test_ttc_saves_at_every_level(self):
        r = fig15_energy_breakdown.run()
        for comp in ("dram", "l2", "l1", "rf", "mac"):
            assert r.ttc_breakdown.get(comp, 0.0) < r.tc_breakdown[comp], comp

    def test_total_savings_band(self):
        """Paper: 55 % energy saving on the representative layer; we accept
        a generous band since the substrate is recalibrated."""
        r = fig15_energy_breakdown.run()
        assert 0.30 < r.savings < 0.75


class TestFig17Shapes:
    @pytest.fixture(scope="class")
    def fig17(self):
        return fig17_synthetic.run(trials=2)

    def test_two_terms_under_one_percent_at_low_density(self, fig17):
        """Takeaway 1 of Appendix A."""
        idx = fig17.densities.index(0.1)
        assert fig17.dropped_nnz["2 terms (2:4+2:8)"][idx] < 0.01

    def test_magnitude_below_nnz(self, fig17):
        """Takeaway 2: greedy keeps the largest values."""
        for label in fig17.dropped_nnz:
            for nnz, mag in zip(fig17.dropped_nnz[label], fig17.dropped_magnitude[label]):
                assert mag <= nnz + 1e-12

    def test_more_terms_monotone(self, fig17):
        for i in range(len(fig17.densities)):
            one = fig17.dropped_nnz["1 term (2:4)"][i]
            two = fig17.dropped_nnz["2 terms (2:4+2:8)"][i]
            three = fig17.dropped_nnz["3 terms (2:4+2:8+2:16)"][i]
            assert three <= two <= one

    def test_drops_grow_with_density(self, fig17):
        series = fig17.dropped_nnz["1 term (2:4)"]
        assert series == sorted(series)


class TestFig18Shapes:
    @pytest.fixture(scope="class")
    def fig18(self):
        return fig18_matmul_error.run()

    def test_error_decreases_with_lower_approx_sparsity(self, fig18):
        for label in fig18.labels():
            pts = fig18.series(label)
            errs = [p.error for p in pts]  # sorted by approx sparsity asc
            assert errs == sorted(errs)

    def test_sparser_a_has_lower_error(self, fig18):
        """80 % sparse A suffers less than 20 % sparse A at equal config."""
        s80 = {p.config: p.error for p in fig18.series("Unstructured 80% with N:8")}
        s20 = {p.config: p.error for p in fig18.series("Unstructured 20% with N:8")}
        for cfg in s80:
            assert s80[cfg] < s20[cfg]

    def test_n8_beats_n4_at_equal_sparsity(self, fig18):
        """Expressiveness: 2:8 < 1:4 error, 4:8 < 2:4 error, 6:8 < 3:4."""
        n4 = {p.approximated_sparsity: p.error for p in fig18.series("Unstructured 20% with N:4")}
        n8 = {p.approximated_sparsity: p.error for p in fig18.series("Unstructured 20% with N:8")}
        for s in (0.25, 0.5, 0.75):
            assert n8[s] < n4[s]


class TestFig19Shapes:
    @pytest.fixture(scope="class")
    def fig19(self):
        return fig19_ablation.run()

    def test_plain_vegeta_useless_on_offtheshelf(self, fig19):
        for variant in ("Dense ResNet50", "Dense BERT", "Unstr ResNet50", "Unstr BERT"):
            assert fig19.edp[(variant, "VEGETA")] == pytest.approx(1.0)

    def test_tasder_unlocks_weight_sparsity(self, fig19):
        for variant in ("Unstr ResNet50", "Unstr BERT"):
            assert fig19.edp[(variant, "VEGETA w/ TASDER")] < 0.4

    def test_ttc_adds_activation_gains(self, fig19):
        for variant in ("Dense ResNet50", "Dense BERT"):
            assert (
                fig19.edp[(variant, "TTC-VEGETA w/ TASDER")]
                < fig19.edp[(variant, "VEGETA w/ TASDER")]
            )

    def test_structured_pruned_comparable(self, fig19):
        """Paper: HW-aware fine-tuned models make VEGETA ≈ TTC."""
        for variant in ("Str ResNet50", "Str BERT"):
            v = fig19.edp[(variant, "VEGETA")]
            t = fig19.edp[(variant, "TTC-VEGETA w/ TASDER")]
            assert t == pytest.approx(v, rel=0.1)

    def test_table_renders(self, fig19):
        assert "Geomean" in fig19.table()


class TestAblations:
    def test_greedy_beats_random(self):
        ab = ablations.ablate_greedy_extraction()
        assert ab.advantage > 1.5

    def test_decomposition_aware_dataflow_pays(self):
        ab = ablations.ablate_dataflow()
        assert ab.penalty > 1.05

    def test_unit_sizing_table(self):
        ab = ablations.ablate_tasd_units()
        assert ab.little_bound == 10
        # zero stalls at the bound, stalls below it
        by_units = {u: s for u, s, _ in ab.rows}
        assert by_units[ab.little_bound] == 0
        assert by_units[2] > 0
