"""Tests for the trained-model registry (fast micro-recipes, no cache)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.zoo import RECIPES, ModelRecipe, get_trained_model


class TestRecipes:
    def test_registry_covers_paper_zoo(self):
        for name in (
            "resnet18", "resnet34", "resnet50", "vgg11", "vgg16",
            "vit", "convnext", "bert",
            "sparse_resnet18", "sparse_resnet34", "sparse_resnet50",
            "sparse_vgg11", "sparse_vgg16", "sparse_bert",
        ):
            assert name in RECIPES

    def test_fingerprint_changes_with_recipe(self):
        a = ModelRecipe("x", "resnet", epochs=1)
        b = ModelRecipe("x", "resnet", epochs=2)
        assert a.fingerprint() != b.fingerprint()

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            get_trained_model(ModelRecipe("x", "rnn"), use_cache=False)


class TestTrainAndCache:
    @pytest.fixture(scope="class")
    def micro_recipe(self):
        return ModelRecipe(
            "micro", "resnet", depth=18, base_width=4, image_size=8,
            epochs=1, sparsity=0.5, finetune_epochs=1, seed=3,
        )

    def test_train_without_cache(self, micro_recipe):
        trained = get_trained_model(micro_recipe, use_cache=False)
        assert 0.0 <= trained.accuracy <= 1.0
        assert trained.weight_sparsity == pytest.approx(0.5, abs=0.02)

    def test_cache_roundtrip_identical(self, micro_recipe, tmp_path, monkeypatch):
        import repro.experiments.zoo as zoo

        monkeypatch.setattr(zoo, "cache_dir", lambda: tmp_path)
        first = get_trained_model(micro_recipe)  # trains + writes cache
        assert any(tmp_path.iterdir())
        second = get_trained_model(micro_recipe)  # loads cache
        assert second.accuracy == first.accuracy
        a = first.model.state_dict()
        b = second.model.state_dict()
        assert all(np.array_equal(a[k], b[k]) for k in a)

    def test_cache_includes_batchnorm_buffers(self, micro_recipe, tmp_path, monkeypatch):
        """Regression: reloaded models must keep BN running statistics."""
        import repro.experiments.zoo as zoo

        monkeypatch.setattr(zoo, "cache_dir", lambda: tmp_path)
        trained = get_trained_model(micro_recipe)
        state = trained.model.state_dict()
        buffer_keys = [k for k in state if k.startswith("buffer::")]
        assert buffer_keys, "BatchNorm running stats missing from state"
        assert any("running_mean" in k for k in buffer_keys)
