"""Tests for N:M patterns and views (repro.core.patterns)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.patterns import (
    NMPattern,
    block_view,
    is_pattern_legal,
    pattern_mask,
    pattern_view,
    unblock_view,
)


class TestNMPattern:
    def test_density_and_sparsity(self):
        p = NMPattern(2, 4)
        assert p.density == 0.5
        assert p.approximated_sparsity == 0.5

    def test_dense_pattern(self):
        assert NMPattern(8, 8).is_dense
        assert not NMPattern(4, 8).is_dense

    def test_invalid_n_greater_than_m(self):
        with pytest.raises(ValueError):
            NMPattern(5, 4)

    def test_invalid_negative(self):
        with pytest.raises(ValueError):
            NMPattern(-1, 4)
        with pytest.raises(ValueError):
            NMPattern(1, 0)

    def test_parse_roundtrip(self):
        p = NMPattern.parse("2:4")
        assert p == NMPattern(2, 4)
        assert str(p) == "2:4"

    def test_parse_garbage(self):
        with pytest.raises(ValueError):
            NMPattern.parse("not-a-pattern")

    def test_metadata_bits(self):
        assert NMPattern(2, 4).metadata_bits_per_value == 2.0
        assert NMPattern(4, 8).metadata_bits_per_value == 3.0
        assert NMPattern(4, 4).metadata_bits_per_value == 0.0
        assert NMPattern(0, 4).metadata_bits_per_value == 0.0

    def test_storage_fraction_2_4(self):
        # 2 values x (16 + 2 bits) over 4 x 16 bits = 0.5625 (NVIDIA's layout)
        assert NMPattern(2, 4).storage_fraction(16) == pytest.approx(0.5625)

    def test_storage_fraction_dense_is_one(self):
        assert NMPattern(8, 8).storage_fraction(16) == pytest.approx(1.0)

    def test_ordering_is_total(self):
        pats = sorted([NMPattern(2, 4), NMPattern(1, 4), NMPattern(4, 8)])
        assert pats[0] == NMPattern(1, 4)


class TestBlockView:
    def test_roundtrip_last_axis(self, rng):
        x = rng.normal(size=(3, 16))
        assert np.array_equal(unblock_view(block_view(x, 4), axis=-1), x)

    def test_roundtrip_other_axis(self, rng):
        x = rng.normal(size=(8, 5))
        blocks = block_view(x, 4, axis=0)
        assert blocks.shape == (5, 2, 4)
        assert np.array_equal(unblock_view(blocks, axis=0), x)

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError, match="not divisible"):
            block_view(rng.normal(size=(2, 7)), 4)

    def test_3d_tensor(self, rng):
        x = rng.normal(size=(2, 3, 8))
        assert block_view(x, 4, axis=-1).shape == (2, 3, 2, 4)


class TestPatternView:
    def test_keeps_largest_magnitudes(self):
        x = np.array([[1.0, -5.0, 3.0, 0.5]])
        out = pattern_view(x, NMPattern(2, 4))
        assert np.array_equal(out, [[0.0, -5.0, 3.0, 0.0]])

    def test_view_is_legal(self, rng):
        x = rng.normal(size=(6, 24))
        for p in (NMPattern(1, 4), NMPattern(2, 4), NMPattern(3, 8), NMPattern(2, 8)):
            assert is_pattern_legal(pattern_view(x, p), p)

    def test_dense_view_identity(self, rng):
        x = rng.normal(size=(4, 8))
        assert np.array_equal(pattern_view(x, NMPattern(8, 8)), x)

    def test_zero_pattern_empties(self, rng):
        x = rng.normal(size=(4, 8))
        assert not np.any(pattern_view(x, NMPattern(0, 4)))

    def test_never_keeps_zeros(self):
        x = np.array([[0.0, 0.0, 1.0, 0.0]])
        mask = pattern_mask(x, NMPattern(2, 4))
        assert mask.sum() == 1  # only the single non-zero is kept

    def test_tie_break_lowest_index(self):
        x = np.array([[2.0, 2.0, 2.0, 2.0]])
        out = pattern_view(x, NMPattern(2, 4))
        assert np.array_equal(out, [[2.0, 2.0, 0.0, 0.0]])

    def test_deterministic(self, rng):
        x = rng.normal(size=(10, 32))
        a = pattern_view(x, NMPattern(2, 8))
        b = pattern_view(x.copy(), NMPattern(2, 8))
        assert np.array_equal(a, b)

    def test_view_on_legal_tensor_is_lossless(self, rng):
        from repro.tensor.random import random_nm_legal

        x = random_nm_legal(8, 32, 2, 4, seed=rng)
        assert np.array_equal(pattern_view(x, NMPattern(2, 4)), x)

    def test_axis_zero(self, rng):
        x = rng.normal(size=(8, 3))
        out = pattern_view(x, NMPattern(1, 4), axis=0)
        assert is_pattern_legal(out, NMPattern(1, 4), axis=0)


class TestIsPatternLegal:
    def test_legal(self):
        x = np.array([[1.0, 0.0, 2.0, 0.0]])
        assert is_pattern_legal(x, NMPattern(2, 4))

    def test_illegal(self):
        x = np.array([[1.0, 1.0, 2.0, 0.0]])
        assert not is_pattern_legal(x, NMPattern(2, 4))

    def test_all_zero_always_legal(self):
        x = np.zeros((3, 8))
        assert is_pattern_legal(x, NMPattern(1, 8))


# ---------------------------------------------------------------------- #
# Property-based tests
# ---------------------------------------------------------------------- #
@st.composite
def pattern_and_matrix(draw):
    m = draw(st.sampled_from([2, 4, 8, 16]))
    n = draw(st.integers(min_value=0, max_value=m))
    rows = draw(st.integers(min_value=1, max_value=6))
    blocks = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    x = np.random.default_rng(seed).normal(size=(rows, blocks * m))
    return NMPattern(n, m), x


@given(pattern_and_matrix())
def test_view_always_legal(pm):
    pattern, x = pm
    assert is_pattern_legal(pattern_view(x, pattern), pattern)


@given(pattern_and_matrix())
def test_view_is_subset(pm):
    """A view never invents values: every kept entry equals the original."""
    pattern, x = pm
    view = pattern_view(x, pattern)
    kept = view != 0
    assert np.array_equal(view[kept], x[kept])


@given(pattern_and_matrix())
def test_view_magnitude_optimal_per_block(pm):
    """The view keeps at least as much magnitude as any legal view could."""
    pattern, x = pm
    view = pattern_view(x, pattern)
    blocks = block_view(np.abs(x), pattern.m)
    top_n_sum = np.sort(blocks, axis=-1)[..., -pattern.n :].sum() if pattern.n else 0.0
    assert np.abs(view).sum() == pytest.approx(top_n_sum, rel=1e-12)


@given(pattern_and_matrix())
def test_view_idempotent(pm):
    pattern, x = pm
    once = pattern_view(x, pattern)
    twice = pattern_view(once, pattern)
    assert np.array_equal(once, twice)
