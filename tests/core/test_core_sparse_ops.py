"""Tests for compressed N:M storage and structured GEMM (repro.core.sparse_ops)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.patterns import NMPattern, pattern_view
from repro.core.series import DENSE_CONFIG, TASDConfig
from repro.core.sparse_ops import nm_compress, nm_decompress, nm_matmul, tasd_matmul
from repro.tensor.random import random_nm_legal, sparse_normal


class TestCompressRoundtrip:
    @pytest.mark.parametrize("nm", [(1, 4), (2, 4), (2, 8), (4, 8)])
    def test_roundtrip_exact(self, nm, rng):
        n, m = nm
        x = random_nm_legal(6, 8 * m, n, m, seed=rng)
        c = nm_compress(x, NMPattern(n, m))
        assert np.array_equal(nm_decompress(c), x)

    def test_rejects_illegal(self, rng):
        x = rng.normal(size=(4, 16))  # dense: not 2:4 legal w.h.p.
        with pytest.raises(ValueError, match="not .* legal"):
            nm_compress(x, NMPattern(2, 4))

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ValueError):
            nm_compress(rng.normal(size=(2, 2, 8)), NMPattern(2, 4))

    def test_compression_ratio(self, rng):
        x = random_nm_legal(4, 32, 2, 4, seed=rng)
        c = nm_compress(x, NMPattern(2, 4))
        assert c.values.shape == (4, 8, 2)
        # 2 of 4 values kept, 2-bit metadata each: 0.5625 of dense bits
        assert c.compressed_bits == pytest.approx(4 * 32 * 16 * 0.5625)

    def test_underfull_blocks_pad_neutrally(self):
        x = np.array([[5.0, 0.0, 0.0, 0.0]])  # one nnz in a 2:4 block
        c = nm_compress(x, NMPattern(2, 4))
        assert np.array_equal(nm_decompress(c), x)


class TestNmMatmul:
    @pytest.mark.parametrize("nm", [(1, 4), (2, 4), (2, 8), (4, 8)])
    def test_matches_dense_matmul(self, nm, rng):
        n, m = nm
        a = random_nm_legal(5, 4 * m, n, m, seed=rng)
        b = rng.normal(size=(4 * m, 7))
        c = nm_compress(a, NMPattern(n, m))
        assert np.allclose(nm_matmul(c, b), a @ b)

    def test_dimension_mismatch(self, rng):
        a = random_nm_legal(2, 8, 2, 4, seed=rng)
        c = nm_compress(a, NMPattern(2, 4))
        with pytest.raises(ValueError, match="mismatch"):
            nm_matmul(c, rng.normal(size=(16, 3)))


class TestTasdMatmul:
    def test_dense_config_exact(self, rng):
        a = rng.normal(size=(6, 16))
        b = rng.normal(size=(16, 5))
        assert np.allclose(tasd_matmul(a, b, DENSE_CONFIG), a @ b)

    def test_lossless_series_exact(self, fig4_matrix, rng):
        b = rng.normal(size=(8, 3))
        cfg = TASDConfig.parse("2:4+2:8")
        assert np.allclose(tasd_matmul(fig4_matrix, b, cfg), fig4_matrix @ b)

    def test_matches_view_matmul(self, rng):
        """Distributive execution == (view of A) @ B, up to float assoc."""
        a = sparse_normal((8, 32), density=0.5, seed=rng)
        b = rng.normal(size=(32, 6))
        cfg = TASDConfig.parse("2:8+1:8")
        approx_a = cfg.view(a, axis=-1)
        assert np.allclose(tasd_matmul(a, b, cfg), approx_a @ b)

    def test_error_shrinks_with_more_terms(self, rng):
        a = sparse_normal((16, 64), density=0.6, seed=rng)
        b = rng.normal(size=(64, 8))
        exact = a @ b
        errs = []
        for text in ("2:8", "2:8+2:8", "2:8+2:8+2:8"):
            approx = tasd_matmul(a, b, TASDConfig.parse(text))
            errs.append(np.linalg.norm(exact - approx))
        assert errs[0] >= errs[1] >= errs[2]

    def test_return_decomposition(self, rng):
        a = sparse_normal((4, 16), density=0.5, seed=rng)
        b = rng.normal(size=(16, 2))
        out, dec = tasd_matmul(a, b, TASDConfig.parse("2:4"), return_decomposition=True)
        assert dec.order == 1
        assert out.shape == (4, 2)


@given(
    st.sampled_from(["1:4", "2:4", "2:8", "4:8", "2:8+1:8", "4:8+2:8"]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_tasd_matmul_equals_view_matmul(config_text, seed):
    g = np.random.default_rng(seed)
    a = g.normal(size=(4, 16)) * (g.random((4, 16)) < 0.6)
    b = g.normal(size=(16, 3))
    cfg = TASDConfig.parse(config_text)
    assert np.allclose(tasd_matmul(a, b, cfg), cfg.view(a) @ b, atol=1e-10)


class TestStableTopNSelection:
    """The argpartition-based top-n must be bit-identical to a stable argsort.

    ``nm_compress`` selects the top-``n`` magnitudes per block with
    ``np.argpartition`` plus an in-partition stable ordering; the reference
    semantics are ``np.argsort(-|block|, kind="stable")[..., :n]``.  Ties —
    equal magnitudes of opposite sign, duplicated weights, quantized
    values — are where partition-based selection can silently diverge, so
    they get hammered here.
    """

    @staticmethod
    def reference_compress(a, pattern):
        from repro.core.patterns import block_view

        blocks = block_view(np.asarray(a), pattern.m, axis=-1)
        mag = np.abs(blocks)
        order = np.argsort(-mag, axis=-1, kind="stable")
        top = order[..., : pattern.n]
        values = np.take_along_axis(blocks, top, axis=-1)
        indices = top.astype(np.uint8)
        indices = np.where(values != 0, indices, np.uint8(0))
        return values, indices

    @pytest.mark.parametrize("nm", [(1, 4), (2, 4), (3, 4), (2, 8), (4, 8), (7, 8), (8, 8)])
    def test_matches_stable_argsort_on_random_data(self, nm, rng):
        n, m = nm
        pattern = NMPattern(n, m)
        x = pattern_view(rng.normal(size=(16, 8 * m)), pattern)
        c = nm_compress(x, pattern)
        ref_values, ref_indices = self.reference_compress(x, pattern)
        np.testing.assert_array_equal(c.values, ref_values)
        np.testing.assert_array_equal(c.indices, ref_indices)

    @pytest.mark.parametrize("nm", [(1, 4), (2, 4), (2, 8), (4, 8), (6, 8)])
    def test_matches_stable_argsort_on_tie_heavy_data(self, nm, rng):
        """Quantized integer weights produce magnitude ties in every block."""
        n, m = nm
        pattern = NMPattern(n, m)
        for seed in range(8):
            g = np.random.default_rng(seed)
            x = g.integers(-2, 3, size=(12, 8 * m)).astype(float)
            x = pattern_view(x, pattern)
            c = nm_compress(x, pattern)
            ref_values, ref_indices = self.reference_compress(x, pattern)
            np.testing.assert_array_equal(c.values, ref_values, err_msg=f"seed={seed}")
            np.testing.assert_array_equal(c.indices, ref_indices, err_msg=f"seed={seed}")

    def test_opposite_sign_tie_keeps_lowest_index(self):
        """|+2| == |-2| inside a kept pair: stable order lists index 1 first."""
        pattern = NMPattern(2, 4)
        x = np.array([[0.0, 2.0, -2.0, 0.0]])
        c = nm_compress(x, pattern)
        np.testing.assert_array_equal(c.values, [[[2.0, -2.0]]])
        np.testing.assert_array_equal(c.indices, [[[1, 2]]])

    def test_zero_boundary_keeps_padding_normalised(self):
        """Underfull block: the zero slots tie, but padding is index-0 either way."""
        pattern = NMPattern(2, 4)
        x = np.array([[0.0, -5.0, 0.0, 0.0]])
        c = nm_compress(x, pattern)
        np.testing.assert_array_equal(c.values, [[[-5.0, 0.0]]])
        np.testing.assert_array_equal(c.indices, [[[1, 0]]])

    def test_all_tied_block(self):
        pattern = NMPattern(2, 4)
        x = np.array([[1.0, -1.0, 1.0, -1.0]])
        # pattern_view keeps the first two (stable); the block is then not
        # 2:4 legal as-is, so take the view first like production code does.
        legal = pattern_view(x, pattern)
        c = nm_compress(legal, pattern)
        ref_values, ref_indices = self.reference_compress(legal, pattern)
        np.testing.assert_array_equal(c.values, ref_values)
        np.testing.assert_array_equal(c.indices, ref_indices)

    def test_roundtrip_still_exact_under_ties(self, rng):
        pattern = NMPattern(2, 4)
        x = pattern_view(rng.integers(-2, 3, size=(8, 32)).astype(float), pattern)
        assert np.array_equal(nm_decompress(nm_compress(x, pattern)), x)
