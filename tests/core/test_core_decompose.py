"""Tests for TASD decomposition (repro.core.decompose)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.decompose import Decomposition, decompose, extract_term
from repro.core.patterns import NMPattern, is_pattern_legal


class TestExtractTerm:
    def test_term_plus_residual_reconstructs(self, rng):
        x = rng.normal(size=(4, 16))
        term, residual = extract_term(x, NMPattern(2, 4))
        assert np.allclose(term + residual, x)

    def test_term_residual_disjoint_support(self, rng):
        x = rng.normal(size=(4, 16))
        term, residual = extract_term(x, NMPattern(2, 4))
        assert not np.any((term != 0) & (residual != 0))

    def test_term_is_legal(self, rng):
        x = rng.normal(size=(4, 16))
        term, _ = extract_term(x, NMPattern(3, 8))
        assert is_pattern_legal(term, NMPattern(3, 8))


class TestDecomposition:
    def test_fig4_example_lossless(self, fig4_matrix):
        """Fig. 4: A = A1(2:4) + A2(2:8) exactly, for the paper's matrix."""
        dec = decompose(fig4_matrix, [NMPattern(2, 4), NMPattern(2, 8)])
        assert dec.is_lossless
        assert np.allclose(dec.reconstruct(), fig4_matrix)

    def test_fig4_first_term_counts(self, fig4_matrix):
        """The 2:4 term covers 7 of 10 non-zeros and 21 of 25 total sum."""
        dec = decompose(fig4_matrix, [NMPattern(2, 4)])
        assert dec.terms[0].nnz == 7
        assert dec.terms[0].tensor.sum() == pytest.approx(21.0)
        assert dec.residual.sum() == pytest.approx(4.0)

    def test_empty_series(self, rng):
        x = rng.normal(size=(2, 8))
        dec = decompose(x, [])
        assert dec.order == 0
        assert np.array_equal(dec.residual, x)
        assert not np.any(dec.reconstruct())

    def test_terms_extracted_from_residual(self, rng):
        """Term 2 must not re-extract anything term 1 already kept."""
        x = rng.normal(size=(4, 16))
        dec = decompose(x, [NMPattern(2, 4), NMPattern(2, 8)])
        t1, t2 = dec.terms
        assert not np.any((t1.tensor != 0) & (t2.tensor != 0))

    def test_incremental_extract_matches_batch(self, rng):
        x = rng.normal(size=(4, 16))
        batch = decompose(x, [NMPattern(2, 4), NMPattern(1, 8)])
        inc = Decomposition(original=x)
        inc.extract(NMPattern(2, 4))
        inc.extract(NMPattern(1, 8))
        assert np.allclose(batch.residual, inc.residual)

    def test_magnitude_monotonically_captured(self, rng):
        """Each extra term reduces residual magnitude (or leaves it at 0)."""
        x = rng.normal(size=(8, 32))
        dec = Decomposition(original=x)
        prev = np.abs(dec.residual).sum()
        for p in (NMPattern(2, 8), NMPattern(2, 8), NMPattern(2, 8)):
            dec.extract(p)
            cur = np.abs(dec.residual).sum()
            assert cur <= prev
            prev = cur

    def test_full_cover_is_lossless(self, rng):
        """Enough terms to cover every slot -> zero residual."""
        x = rng.normal(size=(4, 8))
        dec = decompose(x, [NMPattern(4, 8), NMPattern(4, 8)])
        assert dec.is_lossless

    def test_patterns_property(self, rng):
        x = rng.normal(size=(2, 8))
        dec = decompose(x, [NMPattern(2, 8), NMPattern(1, 8)])
        assert dec.patterns == (NMPattern(2, 8), NMPattern(1, 8))


@given(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_sum_of_terms_plus_residual(n4, n8, seed):
    """Invariant: original == Σ terms + residual, for any series."""
    x = np.random.default_rng(seed).normal(size=(3, 16))
    patterns = []
    if n4:
        patterns.append(NMPattern(n4, 4))
    if n8:
        patterns.append(NMPattern(n8, 8))
    dec = decompose(x, patterns)
    assert np.allclose(dec.reconstruct() + dec.residual, x, atol=1e-12)


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_residual_nnz_never_grows(seed):
    x = np.random.default_rng(seed).normal(size=(4, 16))
    dec = Decomposition(original=x)
    prev_nnz = np.count_nonzero(dec.residual)
    for p in (NMPattern(1, 4), NMPattern(1, 8), NMPattern(2, 16)):
        dec.extract(p)
        nnz = np.count_nonzero(dec.residual)
        assert nnz <= prev_nnz
        prev_nnz = nnz


class TestTotalNnz:
    def test_total_nnz_sums_term_nonzeros(self, fig4_matrix):
        dec = decompose(fig4_matrix, [NMPattern(2, 4), NMPattern(2, 8)])
        assert dec.total_nnz == sum(t.nnz for t in dec.terms)
        # Fig. 4's matrix is lossless under 2:4 + 2:8, so the series covers
        # every non-zero of the original exactly once.
        assert dec.total_nnz == np.count_nonzero(fig4_matrix)

    def test_empty_series_has_zero_total_nnz(self, rng):
        assert decompose(rng.normal(size=(2, 8)), []).total_nnz == 0

    def test_residual_default_resolves_to_ndarray(self, rng):
        x = rng.normal(size=(2, 8))
        dec = Decomposition(original=x)
        assert isinstance(dec.residual, np.ndarray)
        assert dec.residual is not x  # a private copy, not an alias
