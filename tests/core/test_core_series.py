"""Tests for TASD series configs and the Table 2 menu (repro.core.series)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.patterns import NMPattern, pattern_view
from repro.core.series import DENSE_CONFIG, TASDConfig, compose_menu, menu_table


class TestTASDConfig:
    def test_parse_two_terms(self):
        cfg = TASDConfig.parse("4:8+1:8")
        assert cfg.order == 2
        assert cfg.patterns == (NMPattern(4, 8), NMPattern(1, 8))

    def test_parse_dense(self):
        assert TASDConfig.parse("dense").is_dense
        assert TASDConfig.parse("dense") == DENSE_CONFIG

    def test_str_roundtrip(self):
        for text in ("2:4", "4:8+1:8", "2:4+2:8+2:16", "dense"):
            assert str(TASDConfig.parse(text)) == text

    def test_density_sums_terms(self):
        assert TASDConfig.parse("4:8+1:8").density == pytest.approx(0.625)
        assert TASDConfig.parse("2:4").density == pytest.approx(0.5)
        assert DENSE_CONFIG.density == 1.0

    def test_density_capped_at_one(self):
        assert TASDConfig.parse("4:8+4:8+4:8").density == 1.0

    def test_effective_pattern_same_m(self):
        assert TASDConfig.parse("2:8+1:8").effective_pattern == NMPattern(3, 8)
        assert TASDConfig.parse("4:8+2:8").effective_pattern == NMPattern(6, 8)

    def test_effective_pattern_mixed_m_is_none(self):
        assert TASDConfig.parse("2:4+2:8").effective_pattern is None

    def test_effective_pattern_equivalence(self, rng):
        """A same-M series view equals the single effective-pattern view."""
        x = rng.normal(size=(6, 32))
        series = TASDConfig.parse("2:8+1:8")
        assert np.allclose(series.view(x), pattern_view(x, NMPattern(3, 8)))

    def test_dense_view_identity(self, rng):
        x = rng.normal(size=(3, 8))
        assert np.array_equal(DENSE_CONFIG.view(x), x)

    def test_single_constructor(self):
        assert TASDConfig.single(2, 4) == TASDConfig.parse("2:4")

    def test_rejects_non_pattern(self):
        with pytest.raises(TypeError):
            TASDConfig(("2:4",))  # type: ignore[arg-type]

    def test_hashable(self):
        assert len({TASDConfig.parse("2:4"), TASDConfig.parse("2:4")}) == 1


class TestComposeMenu:
    def test_table2_exact(self):
        """The derived menu must reproduce Table 2 row for row."""
        menu = compose_menu(
            [NMPattern(1, 8), NMPattern(2, 8), NMPattern(4, 8)], max_terms=2
        )
        rows = dict(menu_table(menu, m=8))
        assert rows == {
            "1:8": "1:8",
            "2:8": "2:8",
            "3:8": "2:8+1:8",
            "4:8": "4:8",
            "5:8": "4:8+1:8",
            "6:8": "4:8+2:8",
            "7:8": "-",
            "8:8": "Dense",
        }

    def test_m4_menu(self):
        menu = compose_menu([NMPattern(1, 4), NMPattern(2, 4)], max_terms=2)
        rows = dict(menu_table(menu, m=4))
        assert rows == {"1:4": "1:4", "2:4": "2:4", "3:4": "2:4+1:4", "4:4": "Dense"}

    def test_single_term_menu(self):
        menu = compose_menu([NMPattern(2, 4)], max_terms=1)
        densities = sorted(menu)
        assert densities == [0.5, 1.0]

    def test_three_terms_covers_7_of_8(self):
        menu = compose_menu(
            [NMPattern(1, 8), NMPattern(2, 8), NMPattern(4, 8)], max_terms=3
        )
        rows = dict(menu_table(menu, m=8))
        assert rows["7:8"] == "4:8+2:8+1:8"

    def test_prefers_fewer_terms(self):
        menu = compose_menu([NMPattern(1, 8), NMPattern(2, 8)], max_terms=2)
        # density 0.25 is reachable as 2:8 (1 term) or 1:8+1:8 (2 terms)
        assert menu[0.25].order == 1

    def test_no_dense_option(self):
        menu = compose_menu([NMPattern(2, 4)], max_terms=1, include_dense=False)
        assert 1.0 not in menu

    def test_zero_pattern_rejected(self):
        with pytest.raises(ValueError):
            compose_menu([NMPattern(0, 4)])


@given(st.integers(min_value=1, max_value=3))
def test_property_menu_entries_within_budget(max_terms):
    menu = compose_menu(
        [NMPattern(1, 8), NMPattern(2, 8), NMPattern(4, 8)], max_terms=max_terms
    )
    for density, config in menu.items():
        assert config.order <= max_terms
        assert config.density == pytest.approx(density)
