"""Edge cases and failure injection across the core API.

These exercise the corners users hit in practice: empty tensors, all-zero
tensors, single-block shapes, extreme densities, dtype preservation, and
adversarial value distributions (ties, infinities kept out, subnormals).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DENSE_CONFIG,
    NMPattern,
    TASDConfig,
    decompose,
    nm_compress,
    nm_matmul,
    pattern_view,
    tasd_matmul,
)
from repro.core.metrics import (
    dropped_magnitude_fraction,
    dropped_nonzero_fraction,
    sparsity_degree,
)


class TestZeroAndTinyTensors:
    def test_all_zero_matrix_decomposes_losslessly(self):
        x = np.zeros((4, 16))
        dec = decompose(x, [NMPattern(2, 4)])
        assert dec.is_lossless
        assert dropped_nonzero_fraction(dec) == 0.0
        assert dropped_magnitude_fraction(dec) == 0.0

    def test_single_block_matrix(self):
        x = np.array([[1.0, 2.0, 3.0, 4.0]])
        out = pattern_view(x, NMPattern(2, 4))
        assert np.array_equal(out, [[0.0, 0.0, 3.0, 4.0]])

    def test_single_row_single_element_blocks(self):
        x = np.array([[5.0, -1.0]])
        out = pattern_view(x, NMPattern(1, 1))
        assert np.array_equal(out, x)  # 1:1 is dense

    def test_one_by_m_matrix(self):
        x = np.ones((1, 8))
        dec = decompose(x, [NMPattern(4, 8), NMPattern(4, 8)])
        assert dec.is_lossless

    def test_matmul_with_zero_a(self, rng):
        a = np.zeros((4, 8))
        b = rng.normal(size=(8, 3))
        out = tasd_matmul(a, b, TASDConfig.parse("2:4"))
        assert not np.any(out)


class TestAdversarialValues:
    def test_all_equal_magnitudes(self):
        """Pure ties: deterministic lowest-index selection everywhere."""
        x = np.full((3, 8), 7.0)
        out = pattern_view(x, NMPattern(2, 4))
        expected_block = [7.0, 7.0, 0.0, 0.0]
        assert np.array_equal(out, np.tile(expected_block, (3, 2)))

    def test_negative_dominates_positive(self):
        x = np.array([[-10.0, 1.0, 2.0, 3.0]])
        out = pattern_view(x, NMPattern(2, 4))
        assert out[0, 0] == -10.0

    def test_subnormal_values_treated_as_nonzero(self):
        tiny = np.nextafter(0.0, 1.0)
        x = np.array([[tiny, 0.0, 0.0, 0.0]])
        dec = decompose(x, [NMPattern(1, 4)])
        assert dec.is_lossless

    def test_mixed_scale_blocks(self, rng):
        """Blocks spanning 12 orders of magnitude keep the giants."""
        x = np.array([[1e-6, 1e6, 1e-6, 1e-6, 1e6, 1e-6, 1e-6, 1e-6]])
        out = pattern_view(x, NMPattern(1, 4))
        assert np.count_nonzero(out) == 2
        assert set(out[out != 0]) == {1e6}

    def test_dtype_preserved(self):
        x = np.ones((2, 8), dtype=np.float32)
        assert pattern_view(x, NMPattern(2, 4)).dtype == np.float32


class TestConfigEdgeCases:
    def test_empty_series_view_returns_input(self, rng):
        x = rng.normal(size=(2, 8))
        assert DENSE_CONFIG.view(x) is not None
        assert np.array_equal(DENSE_CONFIG.view(x), x)

    def test_order_zero_properties(self):
        assert DENSE_CONFIG.order == 0
        assert DENSE_CONFIG.density == 1.0
        assert DENSE_CONFIG.effective_pattern is None

    def test_duplicate_terms_allowed(self, rng):
        """2:8 + 2:8 is a legitimate series equal to an effective 4:8."""
        x = rng.normal(size=(4, 16))
        series = TASDConfig.parse("2:8+2:8")
        assert series.effective_pattern == NMPattern(4, 8)
        assert np.allclose(series.view(x), pattern_view(x, NMPattern(4, 8)))

    def test_term_order_matters_for_mixed_m(self, rng):
        """2:4 then 2:8 differs from 2:8 then 2:4 (different residuals)."""
        x = rng.normal(size=(8, 32))
        a = TASDConfig.parse("2:4+2:8").view(x)
        b = TASDConfig.parse("2:8+2:4").view(x)
        assert not np.allclose(a, b)

    def test_series_longer_than_needed_is_lossless(self, rng):
        x = rng.normal(size=(2, 8)) * (rng.random((2, 8)) < 0.3)
        dec = TASDConfig.parse("4:8+4:8+4:8").apply(x)
        assert dec.is_lossless


class TestCompressedEdgeCases:
    def test_compress_all_zero(self):
        x = np.zeros((2, 8))
        c = nm_compress(x, NMPattern(2, 4))
        assert c.nnz == 0
        assert np.array_equal(nm_matmul(c, np.ones((8, 3))), np.zeros((2, 3)))

    def test_compress_single_row(self, rng):
        from repro.tensor.random import random_nm_legal

        x = random_nm_legal(1, 8, 2, 4, seed=rng)
        c = nm_compress(x, NMPattern(2, 4))
        b = rng.normal(size=(8, 2))
        assert np.allclose(nm_matmul(c, b), x @ b)

    def test_matmul_single_output_column(self, rng):
        from repro.tensor.random import random_nm_legal

        x = random_nm_legal(4, 16, 2, 4, seed=rng)
        b = rng.normal(size=(16, 1))
        c = nm_compress(x, NMPattern(2, 4))
        assert np.allclose(nm_matmul(c, b), x @ b)


class TestMetricEdgeCases:
    def test_sparsity_of_scalarlike(self):
        assert sparsity_degree(np.array([[0.0]])) == 1.0
        assert sparsity_degree(np.array([[3.0]])) == 0.0

    def test_dropped_fraction_of_dense_pattern(self, rng):
        x = rng.normal(size=(4, 8))
        dec = decompose(x, [NMPattern(8, 8)])
        assert dropped_nonzero_fraction(dec) == 0.0

    def test_magnitude_fraction_zero_matrix(self):
        dec = decompose(np.zeros((2, 4)), [NMPattern(1, 4)])
        assert dropped_magnitude_fraction(dec) == 0.0
