"""Tests for the extension features: channel permutation, generalized
patterns, and their composition with the core decomposition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.patterns import NMPattern, pattern_view
from repro.core.patterns_ext import BlockPattern, VectorPattern, generalized_decompose
from repro.core.permute import (
    decompose_with_permutation,
    greedy_balance_permutation,
    invert_permutation,
    kept_magnitude,
    permute_columns,
)
from repro.core.series import TASDConfig
from repro.tensor.random import sparse_normal


class TestPermutation:
    def test_inverse_roundtrip(self, rng):
        perm = rng.permutation(16)
        inv = invert_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(16))
        assert np.array_equal(inv[perm], np.arange(16))

    def test_permutation_is_valid(self, rng):
        w = rng.normal(size=(8, 32))
        perm = greedy_balance_permutation(w, NMPattern(2, 4))
        assert sorted(perm) == list(range(32))

    def test_permutation_never_loses_magnitude(self, rng):
        """decompose_with_permutation falls back to identity if unhelpful."""
        for seed in range(5):
            w = sparse_normal((16, 64), density=0.4, seed=seed)
            result = decompose_with_permutation(w, TASDConfig.parse("2:4"))
            assert result.kept_magnitude_after >= result.kept_magnitude_before - 1e-12
            assert result.improvement >= -1e-12

    def test_permutation_helps_adversarial_layout(self):
        """Columns with all the mass packed into one block per group: a
        balanced permutation must strictly improve the kept magnitude."""
        rng = np.random.default_rng(0)
        w = np.zeros((8, 16))
        w[:, :4] = rng.normal(size=(8, 4)) * 10  # all heavy columns in block 0
        w[:, 4:] = rng.normal(size=(8, 12)) * 0.1
        pattern = NMPattern(2, 4)
        result = decompose_with_permutation(w, TASDConfig((pattern,)))
        assert result.improvement > 0.05

    def test_matmul_exactness_with_inverse_on_operand(self, rng):
        """Permuting W's columns and B's rows identically changes nothing."""
        w = rng.normal(size=(8, 32))
        b = rng.normal(size=(32, 5))
        perm = greedy_balance_permutation(w, NMPattern(2, 4))
        assert np.allclose(permute_columns(w, perm) @ b[perm], w @ b)

    def test_dense_config_rejected(self, rng):
        from repro.core.series import DENSE_CONFIG

        with pytest.raises(ValueError):
            decompose_with_permutation(rng.normal(size=(4, 8)), DENSE_CONFIG)

    def test_indivisible_k_rejected(self, rng):
        with pytest.raises(ValueError):
            greedy_balance_permutation(rng.normal(size=(4, 10)), NMPattern(2, 4))

    def test_kept_magnitude_matches_view(self, rng):
        w = rng.normal(size=(8, 16))
        p = NMPattern(2, 4)
        assert kept_magnitude(w, p) == pytest.approx(np.abs(pattern_view(w, p)).sum())


class TestBlockPattern:
    def test_density(self):
        assert BlockPattern(block=4, keep=1, total=4).density == 0.25

    def test_view_keeps_whole_blocks(self, rng):
        x = rng.normal(size=(8, 16))
        p = BlockPattern(block=4, keep=1, total=2)
        out = p.view(x)
        tiles = out.reshape(2, 4, 4, 4).transpose(0, 2, 1, 3)
        nonzero_tiles = [np.any(tiles[i, j]) for i in range(2) for j in range(4)]
        assert sum(nonzero_tiles) == 4  # half the tiles survive

    def test_view_keeps_heaviest_blocks(self):
        x = np.ones((4, 8))
        x[:, :4] *= 5.0  # first tile much heavier
        out = BlockPattern(block=4, keep=1, total=2).view(x)
        assert np.all(out[:, :4] == 5.0)
        assert not np.any(out[:, 4:])

    def test_invalid_shapes(self, rng):
        with pytest.raises(ValueError):
            BlockPattern(block=4, keep=1, total=2).view(rng.normal(size=(6, 8)))
        with pytest.raises(ValueError):
            BlockPattern(block=4, keep=3, total=2)


class TestVectorPattern:
    def test_whole_columns_survive_or_die(self, rng):
        x = rng.normal(size=(8, 16))
        out = VectorPattern(2, 4).view(x)
        col_nnz = np.count_nonzero(out, axis=0)
        assert set(col_nnz) <= {0, 8}
        assert (col_nnz > 0).sum() == 8  # 2 of every 4 columns

    def test_density(self):
        assert VectorPattern(1, 4).density == 0.25

    def test_keeps_heaviest_columns(self):
        x = np.ones((4, 4))
        x[:, 2] = 10.0
        out = VectorPattern(1, 4).view(x)
        assert np.all(out[:, 2] == 10.0)
        assert np.count_nonzero(out) == 4


class TestGeneralizedDecompose:
    def test_mixed_series_reconstructs(self, rng):
        x = rng.normal(size=(8, 32))
        dec = generalized_decompose(
            x, [NMPattern(2, 8), BlockPattern(block=4, keep=1, total=2), VectorPattern(1, 4)]
        )
        assert np.allclose(dec.reconstruct() + dec.residual, x)

    def test_residual_magnitude_shrinks(self, rng):
        x = rng.normal(size=(8, 32))
        dec = generalized_decompose(x, [VectorPattern(2, 4), NMPattern(2, 8)])
        assert np.abs(dec.residual).sum() < np.abs(x).sum()

    def test_coarse_patterns_lose_more_than_nm(self, rng):
        """Fine-grained N:M keeps more magnitude than vector sparsity at
        equal density — the reason the paper's hardware targets N:M."""
        x = sparse_normal((32, 64), density=0.8, seed=rng)
        nm = generalized_decompose(x, [NMPattern(2, 4)])
        vec = generalized_decompose(x, [VectorPattern(2, 4)])
        assert np.abs(nm.residual).sum() < np.abs(vec.residual).sum()

    def test_rejects_non_pattern(self, rng):
        with pytest.raises(TypeError):
            generalized_decompose(rng.normal(size=(4, 8)), ["2:4"])  # type: ignore[list-item]


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_permutation_preserves_multiset(seed):
    g = np.random.default_rng(seed)
    w = g.normal(size=(4, 16))
    perm = greedy_balance_permutation(w, NMPattern(2, 4))
    assert np.allclose(np.sort(permute_columns(w, perm), axis=None), np.sort(w, axis=None))
