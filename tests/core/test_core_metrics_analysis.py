"""Tests for approximation metrics and the closed-form drop model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.analysis import (
    expected_block_overflow,
    expected_dropped_nonzero_fraction,
    expected_kept_nonzero_fraction,
    monte_carlo_dropped_fraction,
    probability_block_legal,
    series_expected_dropped_fraction,
)
from repro.core.decompose import decompose
from repro.core.metrics import (
    density,
    dropped_magnitude_fraction,
    dropped_nonzero_fraction,
    matmul_relative_error,
    relative_frobenius_error,
    report,
    sparsity_degree,
)
from repro.core.patterns import NMPattern
from repro.core.series import TASDConfig
from repro.tensor.random import sparse_normal


class TestMetrics:
    def test_sparsity_degree(self):
        x = np.array([[1.0, 0.0], [0.0, 0.0]])
        assert sparsity_degree(x) == 0.75
        assert density(x) == 0.25

    def test_empty_tensor(self):
        assert sparsity_degree(np.array([])) == 0.0

    def test_dropped_fractions_zero_for_lossless(self, fig4_matrix):
        dec = decompose(fig4_matrix, [NMPattern(2, 4), NMPattern(2, 8)])
        assert dropped_nonzero_fraction(dec) == 0.0
        assert dropped_magnitude_fraction(dec) == 0.0

    def test_fig4_one_term_drop_rates(self, fig4_matrix):
        """Fig. 4: 2:4 view covers 70 % of nnz and 84 % of magnitude."""
        dec = decompose(fig4_matrix, [NMPattern(2, 4)])
        assert dropped_nonzero_fraction(dec) == pytest.approx(0.3)
        assert dropped_magnitude_fraction(dec) == pytest.approx(4.0 / 25.0)

    def test_magnitude_drop_below_nnz_drop(self, rng):
        """Greedy keeps the largest values, so magnitude loss < count loss."""
        x = sparse_normal((64, 64), density=0.6, seed=rng)
        dec = decompose(x, [NMPattern(2, 4)])
        assert dropped_magnitude_fraction(dec) < dropped_nonzero_fraction(dec)

    def test_relative_frobenius(self):
        a = np.ones((2, 2))
        assert relative_frobenius_error(a, a) == 0.0
        assert relative_frobenius_error(a, np.zeros((2, 2))) == pytest.approx(1.0)

    def test_matmul_error_zero_when_exact(self, rng):
        a = rng.normal(size=(8, 8))
        b = rng.normal(size=(8, 4))
        assert matmul_relative_error(a, a, b) == 0.0

    def test_report_fields(self, fig4_matrix):
        dec = decompose(fig4_matrix, [NMPattern(2, 4), NMPattern(2, 8)])
        rep = report(dec)
        assert rep.lossless
        assert rep.series == "2:4+2:8"
        assert rep.original_sparsity == pytest.approx(0.375)
        assert rep.approximated_density == pytest.approx(0.75)


class TestClosedFormAnalysis:
    def test_zero_density(self):
        assert expected_dropped_nonzero_fraction(0.0, NMPattern(2, 4)) == 0.0

    def test_dense_pattern_never_drops(self):
        assert expected_dropped_nonzero_fraction(0.9, NMPattern(8, 8)) == 0.0

    def test_known_value_d05_2_4(self):
        """E[(B-2)+]/E[B] for B ~ Bin(4, .5) = 0.375/2 = 0.1875."""
        assert expected_dropped_nonzero_fraction(0.5, NMPattern(2, 4)) == pytest.approx(0.1875)

    def test_full_density_n_m(self):
        """At density 1, an N:M view drops exactly (M-N)/M."""
        assert expected_dropped_nonzero_fraction(1.0, NMPattern(2, 4)) == pytest.approx(0.5)
        assert expected_dropped_nonzero_fraction(1.0, NMPattern(6, 8)) == pytest.approx(0.25)

    def test_kept_complement(self):
        p = NMPattern(2, 8)
        d = 0.3
        assert expected_kept_nonzero_fraction(d, p) == pytest.approx(
            1.0 - expected_dropped_nonzero_fraction(d, p)
        )

    def test_expressiveness_m8_beats_m4(self):
        """Appendix A: at equal density, larger M drops fewer non-zeros."""
        for d in (0.3, 0.5, 0.7):
            drop_4 = expected_dropped_nonzero_fraction(d, NMPattern(2, 4))
            drop_8 = expected_dropped_nonzero_fraction(d, NMPattern(4, 8))
            assert drop_8 < drop_4

    def test_monotone_in_density(self):
        p = NMPattern(2, 8)
        drops = [expected_dropped_nonzero_fraction(d, p) for d in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert drops == sorted(drops)

    def test_probability_block_legal(self):
        assert probability_block_legal(0.0, NMPattern(1, 4)) == pytest.approx(1.0)
        assert probability_block_legal(1.0, NMPattern(3, 4)) == pytest.approx(0.0, abs=1e-12)

    def test_series_same_m_uses_effective(self):
        series = TASDConfig.parse("2:8+1:8")
        direct = expected_dropped_nonzero_fraction(0.4, NMPattern(3, 8))
        assert series_expected_dropped_fraction(0.4, series) == pytest.approx(direct)

    def test_series_dense_is_zero(self):
        from repro.core.series import DENSE_CONFIG

        assert series_expected_dropped_fraction(0.5, DENSE_CONFIG) == 0.0

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            expected_dropped_nonzero_fraction(1.5, NMPattern(2, 4))

    @pytest.mark.parametrize("density", [0.1, 0.3, 0.5, 0.8])
    @pytest.mark.parametrize("config_text", ["2:4", "1:8", "2:8+1:8", "4:8+2:8"])
    def test_analytic_matches_monte_carlo(self, density, config_text):
        """The property the whole workload pipeline leans on: the binomial
        model agrees with empirical decomposition on random tensors."""
        config = TASDConfig.parse(config_text)
        analytic = series_expected_dropped_fraction(density, config)
        empirical = monte_carlo_dropped_fraction(density, config, n_blocks=30_000)
        assert empirical == pytest.approx(analytic, abs=0.01)


@given(
    st.floats(min_value=0.01, max_value=0.99),
    st.sampled_from([(1, 4), (2, 4), (2, 8), (4, 8), (4, 16)]),
)
def test_property_drop_fraction_in_unit_interval(d, nm):
    frac = expected_dropped_nonzero_fraction(d, NMPattern(*nm))
    assert 0.0 <= frac <= 1.0


@given(st.floats(min_value=0.01, max_value=0.99))
def test_property_overflow_consistent_with_fraction(d):
    p = NMPattern(2, 8)
    assert expected_dropped_nonzero_fraction(d, p) == pytest.approx(
        expected_block_overflow(d, p) / (p.m * d)
    )
