"""Tests for the request-trace ring buffer."""

from __future__ import annotations

import threading

import pytest

from repro.runtime.tracing import SPAN_NAMES, RequestTrace, Span, TraceBuffer


def _trace(request_id=0, **kw):
    return RequestTrace.from_timestamps(
        request_id=request_id,
        submitted_at=kw.get("submitted_at", 0.0),
        collected_at=kw.get("collected_at", 0.001),
        dispatched_at=kw.get("dispatched_at", 0.003),
        done_at=kw.get("done_at", 0.013),
        resolved_at=kw.get("resolved_at", 0.014),
        batch_size=kw.get("batch_size", 2),
        samples=kw.get("samples", 1),
        error=kw.get("error"),
    )


def test_from_timestamps_builds_the_standard_span_set():
    t = _trace(request_id=7)
    assert tuple(s.name for s in t.spans) == SPAN_NAMES
    assert t.span("enqueue").duration == pytest.approx(0.001)
    assert t.span("batch_form").duration == pytest.approx(0.002)
    assert t.span("execute").duration == pytest.approx(0.010)
    assert t.span("reply").duration == pytest.approx(0.001)
    assert t.latency == pytest.approx(0.014)
    assert t.ok and t.request_id == 7
    assert t.span("nonexistent") is None
    # Spans tile the timeline: each starts where the previous ended.
    for a, b in zip(t.spans, t.spans[1:]):
        assert b.start == pytest.approx(a.end)


def test_from_timestamps_clamps_out_of_order_stamps():
    """A request served synchronously at shutdown skips stages; spans must
    come out zero-length, never negative."""
    t = _trace(collected_at=0.0, dispatched_at=0.0, done_at=0.005, resolved_at=0.0)
    assert all(s.duration >= 0.0 for s in t.spans)
    assert t.span("enqueue").duration == 0.0
    assert t.span("reply").duration == 0.0
    assert t.latency == pytest.approx(0.005)


def test_error_traces_are_not_ok():
    t = _trace(error="ValueError: bad batch")
    assert not t.ok
    assert t.error == "ValueError: bad batch"


def test_ring_buffer_capacity_is_a_hard_bound():
    buf = TraceBuffer(capacity=8)
    for i in range(20):
        buf.record(_trace(request_id=i))
    assert len(buf) == 8
    assert buf.recorded == 20
    assert buf.dropped == 12
    kept = [t.request_id for t in buf.snapshot()]
    assert kept == list(range(12, 20))  # the most recent 8, oldest first


def test_ring_buffer_rejects_nonpositive_capacity():
    with pytest.raises(ValueError, match="capacity must be positive"):
        TraceBuffer(capacity=0)


def test_ring_buffer_concurrent_recorders_stay_bounded():
    buf = TraceBuffer(capacity=16)
    n, threads = 500, 8

    def work():
        for i in range(n):
            buf.record(_trace(request_id=i))

    ts = [threading.Thread(target=work) for _ in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert len(buf) == 16
    assert buf.recorded == n * threads


def test_clear_empties_but_keeps_recorded_count():
    buf = TraceBuffer(capacity=4)
    buf.record(_trace())
    buf.clear()
    assert len(buf) == 0
    assert buf.recorded == 1


def test_table_renders_recent_first_with_error_status():
    buf = TraceBuffer(capacity=4)
    buf.record(_trace(request_id=1))
    buf.record(_trace(request_id=2, error="boom"))
    body = buf.table()
    lines = body.splitlines()
    assert "2 recorded" in lines[0]
    data = [line for line in lines if line.lstrip().startswith(("1", "2"))]
    assert data[0].lstrip().startswith("2")  # newest first
    assert data[0].rstrip().endswith("boom")
    assert data[1].rstrip().endswith("ok")


def test_table_limit_caps_rows():
    buf = TraceBuffer(capacity=64)
    for i in range(40):
        buf.record(_trace(request_id=i))
    body = buf.table(limit=5)
    assert "showing 5 of 40 retained" in body


def test_span_end_property():
    s = Span("execute", start=1.5, duration=0.25)
    assert s.end == pytest.approx(1.75)
