"""Tests for the metrics registry, histogram merge semantics, and exporter."""

from __future__ import annotations

import json
import pickle
import threading
import urllib.error
import urllib.request

import pytest

from repro.runtime.counters import ExecutorStats, LayerCounters
from repro.runtime.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    export_executor_stats,
    merge_snapshots,
    render_prometheus,
)


# ---------------------------------------------------------------------- #
# Primitives
# ---------------------------------------------------------------------- #
def test_counter_increments_and_rejects_negative():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError, match="only increase"):
        c.inc(-1)
    c.reset()
    assert c.value == 0.0


def test_gauge_moves_both_ways():
    g = Gauge()
    g.set(4)
    g.inc(2)
    g.dec(5)
    assert g.value == 1.0


def test_histogram_buckets_are_fixed_log_spaced():
    assert len(LATENCY_BUCKETS) == 29
    assert LATENCY_BUCKETS[0] == pytest.approx(1e-5)
    assert LATENCY_BUCKETS[-1] == pytest.approx(1e2)
    ratios = [b / a for a, b in zip(LATENCY_BUCKETS, LATENCY_BUCKETS[1:])]
    assert all(r == pytest.approx(10.0 ** 0.25) for r in ratios)


def test_histogram_observe_and_percentiles():
    h = Histogram(buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 0.5, 1.5, 3.0, 100.0):
        h.observe(v)
    assert h.count == 5
    assert h.sum == pytest.approx(105.5)
    assert h.counts == [2, 1, 1, 1]  # last slot is the +Inf overflow bucket
    # The median (rank 3 of 5) lands in the (1, 2] bucket; interpolation
    # keeps the estimate inside that bucket's bounds.
    assert 1.0 < h.percentile(50) <= 2.0
    # Tail past the last bound saturates at the last bound, never NaN/inf.
    assert h.percentile(99) == 4.0
    assert h.mean == pytest.approx(21.1)


def test_empty_histogram_is_nan_free():
    h = Histogram()
    assert h.percentile(50) == 0.0
    assert h.percentile(99) == 0.0
    assert h.mean == 0.0


def test_histogram_merge_is_exact():
    """Merging equals observing everything in one histogram — exactly."""
    a, b, whole = Histogram(), Histogram(), Histogram()
    obs_a = [1e-5, 3e-4, 0.002, 0.002, 1.0]
    obs_b = [2e-4, 0.5, 7.0, 300.0]
    for v in obs_a:
        a.observe(v)
        whole.observe(v)
    for v in obs_b:
        b.observe(v)
        whole.observe(v)
    merged = a.merged_with(b)
    assert merged == whole
    assert merged.counts == whole.counts  # integer bucket counts, no rebinning
    # In-place merge matches too, and the operands are untouched by merged_with.
    a.merge_from(b)
    assert a == whole
    assert b.count == len(obs_b)


def test_histogram_merge_rejects_different_buckets():
    with pytest.raises(ValueError, match="different bucket bounds"):
        Histogram().merge_from(Histogram(buckets=BATCH_SIZE_BUCKETS))


def test_histogram_pickle_roundtrip_preserves_state():
    """Histograms cross the process-pool pipe inside LayerCounters."""
    h = Histogram()
    for v in (0.001, 0.01, 5.0):
        h.observe(v)
    clone = pickle.loads(pickle.dumps(h))
    assert clone == h
    clone.observe(0.1)  # the rebuilt lock must actually work
    assert clone.count == h.count + 1


def test_histogram_snapshot_is_independent():
    h = Histogram()
    h.observe(0.01)
    snap = h.snapshot()
    h.observe(0.02)
    assert snap.count == 1 and h.count == 2


def test_histogram_concurrent_observers_lose_nothing():
    h = Histogram()
    n, threads = 2000, 8

    def work():
        for _ in range(n):
            h.observe(0.001)

    ts = [threading.Thread(target=work) for _ in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert h.count == n * threads
    assert sum(h.counts) == n * threads


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
def test_registry_registration_is_idempotent_but_shape_checked():
    reg = MetricsRegistry()
    c1 = reg.counter("tasd_test_total", "help text")
    c2 = reg.counter("tasd_test_total")
    assert c1 is c2
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("tasd_test_total")
    with pytest.raises(ValueError, match="already registered"):
        reg.counter("tasd_test_total", labels=("layer",))


def test_registry_rejects_bad_names():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="invalid metric name"):
        reg.counter("bad name")
    with pytest.raises(ValueError, match="invalid label name"):
        reg.counter("fine_name", labels=("bad-label",))


def test_labeled_family_children_are_distinct_and_cached():
    reg = MetricsRegistry()
    fam = reg.counter("tasd_calls_total", labels=("layer",))
    fam.labels(layer="a").inc(3)
    fam.labels(layer="b").inc(1)
    assert fam.labels(layer="a").value == 3.0
    with pytest.raises(ValueError, match="expects labels"):
        fam.labels(wrong="a")


def test_snapshot_shape_and_json_serializable():
    reg = MetricsRegistry()
    reg.counter("tasd_reqs_total", "requests").inc(2)
    reg.gauge("tasd_depth", "queue depth").set(7)
    reg.histogram("tasd_lat_seconds", "latency").observe(0.02)
    snap = reg.snapshot()
    json.dumps(snap)  # plain dict all the way down
    assert snap["tasd_reqs_total"]["type"] == "counter"
    assert snap["tasd_reqs_total"]["series"][0]["value"] == 2.0
    assert snap["tasd_depth"]["series"][0]["value"] == 7.0
    hseries = snap["tasd_lat_seconds"]["series"][0]
    assert hseries["count"] == 1
    assert len(hseries["le"]) == len(LATENCY_BUCKETS)
    assert len(hseries["counts"]) == len(LATENCY_BUCKETS) + 1


def test_prometheus_rendering_format():
    reg = MetricsRegistry()
    reg.counter("tasd_reqs_total", "served requests").inc(5)
    fam = reg.histogram("tasd_lat_seconds", "latency", labels=("layer",))
    fam.labels(layer="conv1").observe(0.02)
    fam.labels(layer="conv1").observe(50.0)
    text = reg.render()
    assert "# HELP tasd_reqs_total served requests" in text
    assert "# TYPE tasd_reqs_total counter" in text
    assert "tasd_reqs_total 5" in text
    assert "# TYPE tasd_lat_seconds histogram" in text
    # Buckets are cumulative and end with the +Inf bound == _count.
    assert 'tasd_lat_seconds_bucket{layer="conv1",le="+Inf"} 2' in text
    assert 'tasd_lat_seconds_count{layer="conv1"} 2' in text
    assert 'tasd_lat_seconds_sum{layer="conv1"}' in text
    cums = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("tasd_lat_seconds_bucket")
    ]
    assert cums == sorted(cums)
    assert cums[-1] == 2


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("tasd_x_total", labels=("name",)).labels(name='we"ird\\v').inc()
    text = reg.render()
    assert 'name="we\\"ird\\\\v"' in text


# ---------------------------------------------------------------------- #
# Snapshot merging
# ---------------------------------------------------------------------- #
def _snap_with(kind, name, value=None, labels=None, observations=()):
    reg = MetricsRegistry()
    fam = getattr(reg, kind)(name, labels=tuple(labels or ()))
    child = fam.labels(**(labels or {})) if labels else fam
    if kind == "counter":
        child.inc(value)
    elif kind == "gauge":
        child.set(value)
    else:
        for v in observations:
            child.observe(v)
    return reg.snapshot()


def test_merge_snapshots_counters_sum_gauges_last_win():
    a = _snap_with("counter", "tasd_reqs_total", 3)
    b = _snap_with("counter", "tasd_reqs_total", 4)
    g1 = _snap_with("gauge", "tasd_depth", 9)
    g2 = _snap_with("gauge", "tasd_depth", 2)
    merged = merge_snapshots(a, b, g1, g2)
    assert merged["tasd_reqs_total"]["series"][0]["value"] == 7.0
    assert merged["tasd_depth"]["series"][0]["value"] == 2.0


def test_merge_snapshots_histograms_sum_exactly():
    a = _snap_with("histogram", "tasd_lat", observations=[0.001, 0.5])
    b = _snap_with("histogram", "tasd_lat", observations=[0.002])
    merged = merge_snapshots(a, b)
    s = merged["tasd_lat"]["series"][0]
    assert s["count"] == 3
    assert s["sum"] == pytest.approx(0.503)
    whole = _snap_with("histogram", "tasd_lat", observations=[0.001, 0.5, 0.002])
    assert s["counts"] == whole["tasd_lat"]["series"][0]["counts"]


def test_merge_snapshots_distinct_labels_concatenate():
    a = _snap_with("counter", "tasd_w_total", 1, labels={"worker": "0"})
    b = _snap_with("counter", "tasd_w_total", 2, labels={"worker": "1"})
    merged = merge_snapshots(a, b)
    values = {
        s["labels"]["worker"]: s["value"] for s in merged["tasd_w_total"]["series"]
    }
    assert values == {"0": 1.0, "1": 2.0}


def test_merge_snapshots_rejects_kind_conflicts():
    a = _snap_with("counter", "tasd_thing", 1)
    b = _snap_with("gauge", "tasd_thing", 1)
    with pytest.raises(ValueError, match="cannot merge"):
        merge_snapshots(a, b)


def test_merge_of_worker_layer_counters_matches_single_stream():
    """The cross-process story end to end: N workers' LayerCounters merge
    into exactly the histogram one worker recording everything would have."""
    workers = [LayerCounters() for _ in range(4)]
    whole = LayerCounters()
    lat = [1e-4, 5e-4, 0.002, 0.01, 0.05, 0.3, 1.2, 8.0]
    for i, v in enumerate(lat):
        workers[i % 4].record(structured=10, dense=20, seconds=v)
        whole.record(structured=10, dense=20, seconds=v)
    merged = LayerCounters()
    for w in workers:
        # Simulate the pipe crossing the process pool does on every reply.
        merged = merged.merged_with(pickle.loads(pickle.dumps(w)))
    assert merged.gemm_seconds == whole.gemm_seconds
    assert merged.calls == whole.calls == len(lat)


# ---------------------------------------------------------------------- #
# export_executor_stats
# ---------------------------------------------------------------------- #
def test_export_executor_stats_fills_families():
    c = LayerCounters()
    c.record(structured=100, dense=400, seconds=0.01)
    c.record(structured=100, dense=400, seconds=0.03)
    stats = ExecutorStats(batches=2, samples=8, wall_time=0.05, layers={"conv1": c})
    stats.cache.hits, stats.cache.misses = 3, 1
    reg = MetricsRegistry()
    export_executor_stats(reg, stats, backends={"conv1": "einsum-gather"})
    snap = reg.snapshot()
    assert snap["tasd_layer_calls_total"]["series"][0]["value"] == 2.0
    assert snap["tasd_layer_structured_macs_total"]["series"][0]["value"] == 200.0
    assert snap["tasd_cache_hits_total"]["series"][0]["value"] == 3.0
    assert snap["tasd_executor_samples_total"]["series"][0]["value"] == 8.0
    hs = snap["tasd_layer_gemm_latency_seconds"]["series"][0]
    assert hs["labels"] == {"layer": "conv1", "backend": "einsum-gather"}
    assert hs["count"] == 2


# ---------------------------------------------------------------------- #
# HTTP exporter
# ---------------------------------------------------------------------- #
def _get(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode()


def test_metrics_server_serves_all_routes():
    reg = MetricsRegistry()
    reg.counter("tasd_reqs_total", "requests").inc(4)
    with MetricsServer(
        snapshot_fn=reg.snapshot,
        health_fn=lambda: (True, {"workers_alive": 2}),
        status_fn=lambda: "status body\n",
    ) as server:
        assert server.port > 0
        status, text = _get(server.url + "/metrics")
        assert status == 200 and "tasd_reqs_total 4" in text
        status, body = _get(server.url + "/metrics.json")
        assert json.loads(body)["tasd_reqs_total"]["series"][0]["value"] == 4.0
        status, body = _get(server.url + "/healthz")
        assert status == 200 and json.loads(body) == {"ok": True, "workers_alive": 2}
        status, body = _get(server.url + "/statusz")
        assert status == 200 and body == "status body\n"
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server.url + "/nope")
        assert exc.value.code == 404


def test_metrics_server_unhealthy_is_503():
    with MetricsServer(
        snapshot_fn=dict, health_fn=lambda: (False, {"running": False})
    ) as server:
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server.url + "/healthz")
        assert exc.value.code == 503
        assert json.loads(exc.value.read().decode()) == {"ok": False, "running": False}


def test_metrics_server_broken_snapshot_is_500_not_hang():
    def boom():
        raise RuntimeError("snapshot exploded")

    with MetricsServer(snapshot_fn=boom) as server:
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server.url + "/metrics")
        assert exc.value.code == 500
        assert "snapshot exploded" in exc.value.read().decode()
