"""Tests for the content-addressed operand cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NMPattern, TASDConfig, tasd_matmul
from repro.core.series import DENSE_CONFIG
from repro.core.sparse_ops import nm_decompress
from repro.runtime import OperandCache, tensor_digest
from repro.tasder.transform import decompose_activation

CFG = TASDConfig.parse("2:4")


@pytest.fixture
def matrix(rng):
    return rng.normal(size=(16, 32)) * (rng.random((16, 32)) < 0.5)


class TestDigest:
    def test_identical_content_identical_digest(self, matrix):
        assert tensor_digest(matrix) == tensor_digest(matrix.copy())

    def test_content_changes_digest(self, matrix):
        other = matrix.copy()
        other[0, 0] += 1.0
        assert tensor_digest(matrix) != tensor_digest(other)

    def test_shape_and_dtype_change_digest(self):
        a = np.zeros((4, 8))
        assert tensor_digest(a) != tensor_digest(a.reshape(8, 4))
        assert tensor_digest(a) != tensor_digest(a.astype(np.float32))


class TestCompressCache:
    def test_hit_returns_identical_object(self, matrix):
        cache = OperandCache()
        first = cache.compress(matrix, CFG)
        second = cache.compress(matrix.copy(), CFG)  # same content, new array
        assert second is first
        assert cache.counters.hits == 1
        assert cache.counters.misses == 1

    def test_different_config_is_a_different_entry(self, matrix):
        cache = OperandCache()
        a = cache.compress(matrix, CFG)
        b = cache.compress(matrix, TASDConfig.parse("1:4"))
        assert a is not b
        assert cache.counters.misses == 2

    def test_compiled_operand_matches_tasd_matmul(self, matrix, rng):
        cache = OperandCache()
        op = cache.compress(matrix, CFG)
        b = rng.normal(size=(32, 8))
        np.testing.assert_array_equal(op.matmul(b), tasd_matmul(matrix, b, CFG))

    def test_terms_reconstruct_the_series_view(self, matrix):
        op = OperandCache().compress(matrix, CFG)
        reconstructed = sum(nm_decompress(t) for t in op.terms)
        np.testing.assert_allclose(reconstructed, CFG.view(matrix))
        assert op.total_nnz == np.count_nonzero(reconstructed)

    def test_dense_config_rejected(self, matrix):
        with pytest.raises(ValueError, match="dense"):
            OperandCache().compress(matrix, DENSE_CONFIG)

    def test_ragged_reduction_dim_is_padded(self, rng):
        w = rng.normal(size=(4, 10))  # 10 % 4 != 0
        op = OperandCache().compress(w, CFG)
        assert op.padded_shape == (4, 12)
        b = rng.normal(size=(12, 3))
        assert op.matmul(b).shape == (4, 3)


class TestEviction:
    def test_capacity_bound_evicts_lru(self, rng):
        cache = OperandCache(capacity=2)
        mats = [rng.normal(size=(4, 8)) + i for i in range(3)]
        for m in mats:
            cache.compress(m, CFG)
        assert len(cache) == 2
        assert cache.counters.evictions == 1
        # Oldest entry was evicted: requesting it again is a miss ...
        cache.compress(mats[0], CFG)
        assert cache.counters.misses == 4
        # ... while the most recent entry is still resident.
        cache.compress(mats[2], CFG)
        assert cache.counters.hits == 1

    def test_adopt_registers_respects_capacity_and_reverse_lookup(self, rng):
        cache = OperandCache(capacity=2)
        mats = [rng.normal(size=(4, 8)) + i for i in range(3)]
        operands = [cache.compress(m, CFG) for m in mats]
        # Adoption is neither hit nor miss, the incumbent wins on collision,
        # and digest_of resolves resident operands (eviction loses them).
        hits, misses = cache.counters.hits, cache.counters.misses
        digest = tensor_digest(mats[2])
        fresh = OperandCache().compress(mats[2], CFG)
        assert cache.adopt(digest, CFG, fresh) is operands[2]
        assert (cache.counters.hits, cache.counters.misses) == (hits, misses)
        assert cache.digest_of(operands[2]) == digest
        assert cache.digest_of(operands[0]) is None  # evicted at capacity 2
        # Adopting a new key evicts LRU past capacity, like compress.
        evictions = cache.counters.evictions
        extra = rng.normal(size=(4, 8)) + 9
        cache.adopt(tensor_digest(extra), CFG, OperandCache().compress(extra, CFG))
        assert len(cache) == 2
        assert cache.counters.evictions == evictions + 1

    def test_hit_refreshes_recency(self, rng):
        cache = OperandCache(capacity=2)
        a, b, c = (rng.normal(size=(4, 8)) + i for i in range(3))
        cache.compress(a, CFG)
        cache.compress(b, CFG)
        cache.compress(a, CFG)  # refresh a; b becomes LRU
        cache.compress(c, CFG)  # evicts b
        hits_before = cache.counters.hits
        cache.compress(a, CFG)
        assert cache.counters.hits == hits_before + 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            OperandCache(capacity=0)


class TestViewCache:
    def test_view_matches_decompose_activation(self, rng):
        cache = OperandCache()
        x = rng.normal(size=(3, 8, 8))
        out = cache.view(x, CFG, axis=1)
        np.testing.assert_array_equal(out, decompose_activation(x, CFG, axis=1))

    def test_repeated_view_hits(self, rng):
        cache = OperandCache()
        x = rng.normal(size=(2, 16))
        first = cache.view(x, CFG, axis=-1)
        second = cache.view(x.copy(), CFG, axis=-1)
        assert second is first
        assert cache.counters.hit_rate == 0.5

    def test_dense_view_bypasses_the_cache(self, rng):
        cache = OperandCache()
        x = rng.normal(size=(2, 16))
        np.testing.assert_array_equal(cache.view(x, DENSE_CONFIG), x)
        assert cache.counters.lookups == 0
