"""Tests for the content-addressed operand cache."""

from __future__ import annotations

import multiprocessing
import threading

import numpy as np
import pytest

from repro.core import NMPattern, TASDConfig, tasd_matmul
from repro.core.series import DENSE_CONFIG
from repro.core.sparse_ops import nm_decompress
from repro.runtime import OperandCache, SharedOperandStore, tensor_digest
from repro.tasder.transform import decompose_activation

CFG = TASDConfig.parse("2:4")


@pytest.fixture
def matrix(rng):
    return rng.normal(size=(16, 32)) * (rng.random((16, 32)) < 0.5)


class TestDigest:
    def test_identical_content_identical_digest(self, matrix):
        assert tensor_digest(matrix) == tensor_digest(matrix.copy())

    def test_content_changes_digest(self, matrix):
        other = matrix.copy()
        other[0, 0] += 1.0
        assert tensor_digest(matrix) != tensor_digest(other)

    def test_shape_and_dtype_change_digest(self):
        a = np.zeros((4, 8))
        assert tensor_digest(a) != tensor_digest(a.reshape(8, 4))
        assert tensor_digest(a) != tensor_digest(a.astype(np.float32))


class TestCompressCache:
    def test_hit_returns_identical_object(self, matrix):
        cache = OperandCache()
        first = cache.compress(matrix, CFG)
        second = cache.compress(matrix.copy(), CFG)  # same content, new array
        assert second is first
        assert cache.counters.hits == 1
        assert cache.counters.misses == 1

    def test_different_config_is_a_different_entry(self, matrix):
        cache = OperandCache()
        a = cache.compress(matrix, CFG)
        b = cache.compress(matrix, TASDConfig.parse("1:4"))
        assert a is not b
        assert cache.counters.misses == 2

    def test_compiled_operand_matches_tasd_matmul(self, matrix, rng):
        cache = OperandCache()
        op = cache.compress(matrix, CFG)
        b = rng.normal(size=(32, 8))
        np.testing.assert_array_equal(op.matmul(b), tasd_matmul(matrix, b, CFG))

    def test_terms_reconstruct_the_series_view(self, matrix):
        op = OperandCache().compress(matrix, CFG)
        reconstructed = sum(nm_decompress(t) for t in op.terms)
        np.testing.assert_allclose(reconstructed, CFG.view(matrix))
        assert op.total_nnz == np.count_nonzero(reconstructed)

    def test_dense_config_rejected(self, matrix):
        with pytest.raises(ValueError, match="dense"):
            OperandCache().compress(matrix, DENSE_CONFIG)

    def test_ragged_reduction_dim_is_padded(self, rng):
        w = rng.normal(size=(4, 10))  # 10 % 4 != 0
        op = OperandCache().compress(w, CFG)
        assert op.padded_shape == (4, 12)
        b = rng.normal(size=(12, 3))
        assert op.matmul(b).shape == (4, 3)


class TestEviction:
    def test_capacity_bound_evicts_lru(self, rng):
        cache = OperandCache(capacity=2)
        mats = [rng.normal(size=(4, 8)) + i for i in range(3)]
        for m in mats:
            cache.compress(m, CFG)
        assert len(cache) == 2
        assert cache.counters.evictions == 1
        # Oldest entry was evicted: requesting it again is a miss ...
        cache.compress(mats[0], CFG)
        assert cache.counters.misses == 4
        # ... while the most recent entry is still resident.
        cache.compress(mats[2], CFG)
        assert cache.counters.hits == 1

    def test_adopt_registers_respects_capacity_and_reverse_lookup(self, rng):
        cache = OperandCache(capacity=2)
        mats = [rng.normal(size=(4, 8)) + i for i in range(3)]
        operands = [cache.compress(m, CFG) for m in mats]
        # Adoption is neither hit nor miss, the incumbent wins on collision,
        # and digest_of resolves resident operands (eviction loses them).
        hits, misses = cache.counters.hits, cache.counters.misses
        digest = tensor_digest(mats[2])
        fresh = OperandCache().compress(mats[2], CFG)
        assert cache.adopt(digest, CFG, fresh) is operands[2]
        assert (cache.counters.hits, cache.counters.misses) == (hits, misses)
        assert cache.digest_of(operands[2]) == digest
        assert cache.digest_of(operands[0]) is None  # evicted at capacity 2
        # Adopting a new key evicts LRU past capacity, like compress.
        evictions = cache.counters.evictions
        extra = rng.normal(size=(4, 8)) + 9
        cache.adopt(tensor_digest(extra), CFG, OperandCache().compress(extra, CFG))
        assert len(cache) == 2
        assert cache.counters.evictions == evictions + 1

    def test_hit_refreshes_recency(self, rng):
        cache = OperandCache(capacity=2)
        a, b, c = (rng.normal(size=(4, 8)) + i for i in range(3))
        cache.compress(a, CFG)
        cache.compress(b, CFG)
        cache.compress(a, CFG)  # refresh a; b becomes LRU
        cache.compress(c, CFG)  # evicts b
        hits_before = cache.counters.hits
        cache.compress(a, CFG)
        assert cache.counters.hits == hits_before + 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            OperandCache(capacity=0)


def _hammer(n_threads: int, work) -> None:
    """Run ``work(thread_index)`` concurrently from ``n_threads`` threads."""
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []

    def runner(i: int) -> None:
        try:
            barrier.wait()
            work(i)
        # lint: disable=broad-except — captured (asserts included) for
        # re-raise in the main thread; a raise here would vanish silently
        except BaseException as exc:  # pragma: no cover - only on test failure
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


def _attach_worker(conn, segment: str, refs, config_str: str) -> None:
    """Child process: attach the shared store, adopt, and serve one matmul."""
    from repro.core import TASDConfig
    from repro.runtime import OperandCache, SharedOperandStore

    store = SharedOperandStore.attach(segment)
    try:
        cache = OperandCache()
        config = TASDConfig.parse(config_str)
        fresh = cache.compress(store.get(refs["matrix"]), config)
        adopted = cache.adopt(tensor_digest(store.get(refs["matrix"])), config, fresh)
        out = adopted.matmul(store.get(refs["rhs"]))
        counters = (cache.counters.hits, cache.counters.misses, cache.counters.evictions)
        conn.send((out, counters))
    finally:
        store.close()
        conn.close()


class TestConcurrency:
    """Hammer the cache's counters and identity guarantees concurrently.

    The contracts under fire: ``hits + misses == lookups`` never drifts, a
    key only ever materialises one operand object (racing builders may
    duplicate *work*, but exactly one result is kept and returned to every
    caller), and eviction never leaves the store over capacity.
    """

    N_THREADS = 8
    ROUNDS = 25

    def test_compress_counters_consistent_and_single_object(self, rng):
        cache = OperandCache(capacity=64)
        mats = [rng.normal(size=(8, 16)) + i for i in range(4)]
        results: list[list] = [[] for _ in range(self.N_THREADS)]

        def work(i: int) -> None:
            for r in range(self.ROUNDS):
                results[i].append(cache.compress(mats[(i + r) % len(mats)], CFG))

        _hammer(self.N_THREADS, work)
        total = self.N_THREADS * self.ROUNDS
        assert cache.counters.lookups == total
        assert cache.counters.hits + cache.counters.misses == total
        assert cache.counters.evictions == 0
        # No double materialisation: every caller of a key got one object.
        by_key: dict[str, set[int]] = {}
        for i in range(self.N_THREADS):
            for r, op in enumerate(results[i]):
                key = tensor_digest(mats[(i + r) % len(mats)])
                by_key.setdefault(key, set()).add(id(op))
        assert len(by_key) == len(mats)
        assert all(len(ids) == 1 for ids in by_key.values())

    def test_eviction_hammering_never_overflows_capacity(self, rng):
        cache = OperandCache(capacity=3)
        mats = [rng.normal(size=(4, 8)) + i for i in range(8)]

        def work(i: int) -> None:
            for r in range(self.ROUNDS):
                cache.compress(mats[(i * 3 + r) % len(mats)], CFG)

        _hammer(self.N_THREADS, work)
        assert len(cache) <= 3
        total = self.N_THREADS * self.ROUNDS
        assert cache.counters.lookups == total
        assert cache.counters.evictions >= len(mats) - 3
        assert cache.counters.misses >= len(mats)

    def test_adopt_hammering_single_incumbent(self, rng):
        cache = OperandCache(capacity=16)
        matrix = rng.normal(size=(8, 16))
        digest = tensor_digest(matrix)
        candidates = [OperandCache().compress(matrix, CFG) for _ in range(self.N_THREADS)]
        winners: list[object] = [None] * self.N_THREADS

        def work(i: int) -> None:
            winners[i] = cache.adopt(digest, CFG, candidates[i])

        _hammer(self.N_THREADS, work)
        # Exactly one candidate won; every later adopter got the incumbent,
        # and adoption counted as neither hit nor miss.
        assert len({id(w) for w in winners}) == 1
        assert cache.counters.lookups == 0
        assert cache.digest_of(winners[0]) == digest

    def test_view_hammering_counters_consistent(self, rng):
        cache = OperandCache(capacity=32)
        xs = [rng.normal(size=(2, 16)) for _ in range(3)]
        outs: list[list] = [[] for _ in range(self.N_THREADS)]

        def work(i: int) -> None:
            for r in range(self.ROUNDS):
                outs[i].append(cache.view(xs[(i + r) % len(xs)], CFG))

        _hammer(self.N_THREADS, work)
        total = self.N_THREADS * self.ROUNDS
        assert cache.counters.lookups == total
        for i in range(self.N_THREADS):
            for r, out in enumerate(outs[i]):
                np.testing.assert_array_equal(
                    out, decompose_activation(xs[(i + r) % len(xs)], CFG, -1)
                )

    def test_adopt_from_many_processes_serves_identically(self, rng):
        """Workers attaching one shared segment adopt + serve the same bits."""
        matrix = rng.normal(size=(8, 16)) * (rng.random((8, 16)) < 0.5)
        rhs = rng.normal(size=(16, 4))
        store, refs = SharedOperandStore.create({"matrix": matrix, "rhs": rhs})
        try:
            ref = OperandCache().compress(matrix, CFG).matmul(rhs)
            ctx = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
            pipes, procs = [], []
            for _ in range(3):
                parent, child = ctx.Pipe()
                p = ctx.Process(
                    target=_attach_worker, args=(child, store.name, refs, str(CFG))
                )
                p.start()
                child.close()
                pipes.append(parent)
                procs.append(p)
            for conn, p in zip(pipes, procs):
                out, (hits, misses, evictions) = conn.recv()
                np.testing.assert_array_equal(out, ref)
                # Each worker's private cache saw exactly its own compress.
                assert (hits, misses, evictions) == (0, 1, 0)
                conn.close()
            for p in procs:
                p.join(timeout=30.0)
                assert p.exitcode == 0
        finally:
            store.unlink()


class TestViewCache:
    def test_view_matches_decompose_activation(self, rng):
        cache = OperandCache()
        x = rng.normal(size=(3, 8, 8))
        out = cache.view(x, CFG, axis=1)
        np.testing.assert_array_equal(out, decompose_activation(x, CFG, axis=1))

    def test_repeated_view_hits(self, rng):
        cache = OperandCache()
        x = rng.normal(size=(2, 16))
        first = cache.view(x, CFG, axis=-1)
        second = cache.view(x.copy(), CFG, axis=-1)
        assert second is first
        assert cache.counters.hit_rate == 0.5

    def test_dense_view_bypasses_the_cache(self, rng):
        cache = OperandCache()
        x = rng.normal(size=(2, 16))
        np.testing.assert_array_equal(cache.view(x, DENSE_CONFIG), x)
        assert cache.counters.lookups == 0
