"""Tests for the micro-batching serving engine."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import PlanExecutor, ServingEngine, compile_plan
from repro.tasder.transform import TASDTransform

CFG = TASDConfig.parse("2:4")


@pytest.fixture(scope="module")
def executor():
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    with PlanExecutor(model, compile_plan(model, transform)) as ex:
        yield ex


def test_micro_batched_output_matches_single_request(executor):
    rng = np.random.default_rng(11)
    inputs = [rng.normal(size=(1, 3, 8, 8)) for _ in range(6)]
    singles = [executor.run(x) for x in inputs]
    with ServingEngine(executor, max_batch=3, batch_window=0.05) as engine:
        futures = [engine.submit(x) for x in inputs]
        outputs = [f.result(timeout=60.0) for f in futures]
    for single, served in zip(singles, outputs):
        np.testing.assert_allclose(served, single, atol=1e-12)


def test_requests_are_coalesced(executor):
    rng = np.random.default_rng(12)
    with ServingEngine(executor, max_batch=4, batch_window=0.25) as engine:
        futures = [engine.submit(rng.normal(size=(1, 3, 8, 8))) for _ in range(4)]
        for f in futures:
            f.result(timeout=60.0)
    report = engine.report()
    assert report.count == 4
    # All four requests were submitted inside one window, so at least some
    # of them must have shared a micro-batch.
    assert report.mean_batch_size > 1.0


def test_multi_sample_requests_split_correctly(executor):
    rng = np.random.default_rng(13)
    a = rng.normal(size=(2, 3, 8, 8))
    b = rng.normal(size=(3, 3, 8, 8))
    expect_a, expect_b = executor.run(a), executor.run(b)
    with ServingEngine(executor, max_batch=8, batch_window=0.05) as engine:
        fa, fb = engine.submit(a), engine.submit(b)
        out_a, out_b = fa.result(timeout=60.0), fb.result(timeout=60.0)
    assert out_a.shape == (2, 10) and out_b.shape == (3, 10)
    np.testing.assert_allclose(out_a, expect_a, atol=1e-12)
    np.testing.assert_allclose(out_b, expect_b, atol=1e-12)


def test_report_latency_stats_populated(executor):
    rng = np.random.default_rng(14)
    with ServingEngine(executor, max_batch=2, batch_window=0.01) as engine:
        engine.infer(rng.normal(size=(1, 3, 8, 8)), timeout=60.0)
        engine.infer(rng.normal(size=(1, 3, 8, 8)), timeout=60.0)
    report = engine.report()
    assert report.count == 2
    assert all(r.latency >= r.compute_time >= 0.0 for r in report.requests)
    assert report.mean_latency > 0.0
    assert report.latency_percentile(95) >= report.latency_percentile(50)
    assert "requests" in report.summary()


def test_submit_requires_running_engine(executor):
    engine = ServingEngine(executor)
    with pytest.raises(RuntimeError, match="not running"):
        engine.submit(np.zeros((1, 3, 8, 8)))


def test_stop_is_idempotent(executor):
    engine = ServingEngine(executor).start()
    engine.stop()
    engine.stop()  # no-op


def test_restart_resets_report_window(executor):
    """stop() → start() must not leak the previous run's telemetry."""
    rng = np.random.default_rng(18)
    x = rng.normal(size=(1, 3, 8, 8))
    engine = ServingEngine(executor, max_batch=2, batch_window=0.01)
    engine.start()
    engine.infer(x, timeout=60.0)
    engine.infer(x, timeout=60.0)
    engine.stop()
    first = engine.report()
    assert first.count == 2
    time.sleep(0.05)  # idle gap that must not count toward the next window
    t0 = time.perf_counter()
    engine.start()
    engine.infer(x, timeout=60.0)
    engine.stop()
    window = time.perf_counter() - t0
    second = engine.report()
    # Only the second run's single request, not 3 accumulated across runs.
    assert second.count == 1
    first_ids = {r.request_id for r in first.requests}
    assert all(r.request_id not in first_ids for r in second.requests)
    # The wall-time window restarted too: it covers the second run only,
    # not start#1 → stop#2 (which would include the first run + idle gap).
    assert second.wall_time <= window + 0.01
    assert second.wall_time > 0.0


def test_invalid_parameters(executor):
    with pytest.raises(ValueError):
        ServingEngine(executor, max_batch=0)
    with pytest.raises(ValueError):
        ServingEngine(executor, workers=0)


def test_mismatched_request_survives_immediate_stop(executor):
    """A shape-incompatible request gathered mid-shutdown must still resolve."""
    rng = np.random.default_rng(15)
    a = rng.normal(size=(1, 3, 8, 8))
    b = rng.normal(size=(1, 3, 16, 16))  # incompatible with a's micro-batch
    engine = ServingEngine(executor, max_batch=4, batch_window=0.1).start()
    fa, fb = engine.submit(a), engine.submit(b)
    engine.stop()  # races the gather window on purpose
    assert fa.result(timeout=30.0).shape == (1, 10)
    assert fb.result(timeout=30.0).shape == (1, 10)


def test_mixed_dtype_requests_keep_exact_results(executor):
    """float32 and float64 requests must not be coalesced (concat upcasts)."""
    rng = np.random.default_rng(16)
    a32 = rng.normal(size=(1, 3, 8, 8)).astype(np.float32)
    b64 = rng.normal(size=(1, 3, 8, 8))
    expect_a, expect_b = executor.run(a32), executor.run(b64)
    with ServingEngine(executor, max_batch=4, batch_window=0.05) as engine:
        fa, fb = engine.submit(a32), engine.submit(b64)
        out_a, out_b = fa.result(timeout=30.0), fb.result(timeout=30.0)
    np.testing.assert_array_equal(out_a, expect_a)
    np.testing.assert_array_equal(out_b, expect_b)
