"""Tests for the micro-batching serving engine."""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import (
    PlanExecutor,
    ServeReport,
    ServingEngine,
    compile_plan,
    make_pool,
)
from repro.tasder.transform import TASDTransform

CFG = TASDConfig.parse("2:4")


@pytest.fixture(scope="module")
def executor():
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    with PlanExecutor(model, compile_plan(model, transform)) as ex:
        yield ex


def test_micro_batched_output_matches_single_request(executor):
    rng = np.random.default_rng(11)
    inputs = [rng.normal(size=(1, 3, 8, 8)) for _ in range(6)]
    singles = [executor.run(x) for x in inputs]
    with ServingEngine(executor, max_batch=3, batch_window=0.05) as engine:
        futures = [engine.submit(x) for x in inputs]
        outputs = [f.result(timeout=60.0) for f in futures]
    for single, served in zip(singles, outputs):
        np.testing.assert_allclose(served, single, atol=1e-12)


def test_requests_are_coalesced(executor):
    rng = np.random.default_rng(12)
    with ServingEngine(executor, max_batch=4, batch_window=0.25) as engine:
        futures = [engine.submit(rng.normal(size=(1, 3, 8, 8))) for _ in range(4)]
        for f in futures:
            f.result(timeout=60.0)
    report = engine.report()
    assert report.count == 4
    # All four requests were submitted inside one window, so at least some
    # of them must have shared a micro-batch.
    assert report.mean_batch_size > 1.0


def test_multi_sample_requests_split_correctly(executor):
    rng = np.random.default_rng(13)
    a = rng.normal(size=(2, 3, 8, 8))
    b = rng.normal(size=(3, 3, 8, 8))
    expect_a, expect_b = executor.run(a), executor.run(b)
    with ServingEngine(executor, max_batch=8, batch_window=0.05) as engine:
        fa, fb = engine.submit(a), engine.submit(b)
        out_a, out_b = fa.result(timeout=60.0), fb.result(timeout=60.0)
    assert out_a.shape == (2, 10) and out_b.shape == (3, 10)
    np.testing.assert_allclose(out_a, expect_a, atol=1e-12)
    np.testing.assert_allclose(out_b, expect_b, atol=1e-12)


def test_report_latency_stats_populated(executor):
    rng = np.random.default_rng(14)
    with ServingEngine(executor, max_batch=2, batch_window=0.01) as engine:
        engine.infer(rng.normal(size=(1, 3, 8, 8)), timeout=60.0)
        engine.infer(rng.normal(size=(1, 3, 8, 8)), timeout=60.0)
    report = engine.report()
    assert report.count == 2
    assert all(r.latency >= r.compute_time >= 0.0 for r in report.requests)
    assert report.mean_latency > 0.0
    assert report.latency_percentile(95) >= report.latency_percentile(50)
    assert "requests" in report.summary()


def test_submit_requires_running_engine(executor):
    engine = ServingEngine(executor)
    with pytest.raises(RuntimeError, match="not running"):
        engine.submit(np.zeros((1, 3, 8, 8)))


def test_stop_is_idempotent(executor):
    engine = ServingEngine(executor).start()
    engine.stop()
    engine.stop()  # no-op


def test_restart_resets_report_window(executor):
    """stop() → start() must not leak the previous run's telemetry."""
    rng = np.random.default_rng(18)
    x = rng.normal(size=(1, 3, 8, 8))
    engine = ServingEngine(executor, max_batch=2, batch_window=0.01)
    engine.start()
    engine.infer(x, timeout=60.0)
    engine.infer(x, timeout=60.0)
    engine.stop()
    first = engine.report()
    assert first.count == 2
    time.sleep(0.05)  # idle gap that must not count toward the next window
    t0 = time.perf_counter()
    engine.start()
    engine.infer(x, timeout=60.0)
    engine.stop()
    window = time.perf_counter() - t0
    second = engine.report()
    # Only the second run's single request, not 3 accumulated across runs.
    assert second.count == 1
    first_ids = {r.request_id for r in first.requests}
    assert all(r.request_id not in first_ids for r in second.requests)
    # The wall-time window restarted too: it covers the second run only,
    # not start#1 → stop#2 (which would include the first run + idle gap).
    assert second.wall_time <= window + 0.01
    assert second.wall_time > 0.0


def test_invalid_parameters(executor):
    with pytest.raises(ValueError):
        ServingEngine(executor, max_batch=0)
    with pytest.raises(ValueError):
        ServingEngine(executor, workers=0)


def test_mismatched_request_survives_immediate_stop(executor):
    """A shape-incompatible request gathered mid-shutdown must still resolve."""
    rng = np.random.default_rng(15)
    a = rng.normal(size=(1, 3, 8, 8))
    b = rng.normal(size=(1, 3, 16, 16))  # incompatible with a's micro-batch
    engine = ServingEngine(executor, max_batch=4, batch_window=0.1).start()
    fa, fb = engine.submit(a), engine.submit(b)
    engine.stop()  # races the gather window on purpose
    assert fa.result(timeout=30.0).shape == (1, 10)
    assert fb.result(timeout=30.0).shape == (1, 10)


def test_mixed_dtype_requests_keep_exact_results(executor):
    """float32 and float64 requests must not be coalesced (concat upcasts)."""
    rng = np.random.default_rng(16)
    a32 = rng.normal(size=(1, 3, 8, 8)).astype(np.float32)
    b64 = rng.normal(size=(1, 3, 8, 8))
    expect_a, expect_b = executor.run(a32), executor.run(b64)
    with ServingEngine(executor, max_batch=4, batch_window=0.05) as engine:
        fa, fb = engine.submit(a32), engine.submit(b64)
        out_a, out_b = fa.result(timeout=30.0), fb.result(timeout=30.0)
    np.testing.assert_array_equal(out_a, expect_a)
    np.testing.assert_array_equal(out_b, expect_b)


# ---------------------------------------------------------------------- #
# Telemetry: reports, traces, and the live HTTP endpoint
# ---------------------------------------------------------------------- #
def test_empty_report_is_well_defined(executor):
    """A server that starts and stops without traffic must summarise cleanly
    — zero everywhere, never NaN/inf from dividing by the served count."""
    engine = ServingEngine(executor)
    engine.start()
    engine.stop()
    report = engine.report()
    assert report.count == 0 and report.samples == 0
    assert report.mean_latency == 0.0
    assert report.mean_batch_size == 0.0
    assert report.throughput == 0.0
    assert report.latency_percentile(50) == 0.0
    assert report.p50 == report.p95 == report.p99 == 0.0
    text = report.summary()
    assert "0 requests" in text
    assert "nan" not in text.lower() and "inf" not in text.lower()
    # The bare dataclass (no engine, no histogram) is just as well-defined.
    bare = ServeReport()
    assert bare.p99 == 0.0 and "nan" not in bare.summary().lower()


def test_report_percentiles_come_from_the_live_histogram(executor):
    rng = np.random.default_rng(21)
    with ServingEngine(executor, max_batch=2, batch_window=0.01) as engine:
        for _ in range(6):
            engine.infer(rng.normal(size=(1, 3, 8, 8)), timeout=60.0)
    report = engine.report()
    hist = report.latency_histogram()
    assert hist.count == report.count == 6
    assert 0.0 < report.p50 <= report.p95 <= report.p99
    assert "p50" in report.summary() and "p99" in report.summary()


def test_metrics_disabled_engine_still_serves_and_reports(executor):
    rng = np.random.default_rng(22)
    with ServingEngine(executor, max_batch=2, batch_window=0.01, metrics=False) as engine:
        engine.infer(rng.normal(size=(1, 3, 8, 8)), timeout=60.0)
        snap = engine.metrics_snapshot()  # pool-side views still assemble
    report = engine.report()
    assert report.histogram is None
    assert report.count == 1
    assert report.p50 > 0.0  # falls back to a histogram built from requests
    assert "tasd_serve_requests_total" not in snap
    assert "tasd_layer_calls_total" in snap
    assert "tasd_worker_alive" in snap


def test_concurrent_report_never_sees_a_torn_batch(executor):
    """Hammer report() while batches land: every micro-batch must appear
    atomically (all of its requests or none), never partially."""
    rng = np.random.default_rng(23)
    x = rng.normal(size=(1, 3, 8, 8))
    stop = threading.Event()
    torn: list[str] = []

    def hammer(engine):
        while not stop.is_set():
            report = engine.report()
            groups: dict = {}
            for r in report.requests:
                groups.setdefault((r.batch_size, r.compute_time), []).append(r)
            for (batch_size, _), members in groups.items():
                # Requests of one micro-batch share batch_size and the exact
                # same compute_time float; a torn read shows up as a group
                # smaller than its declared batch size.
                if len(members) != batch_size:
                    torn.append(f"saw {len(members)} of a {batch_size}-request batch")

    with ServingEngine(executor, max_batch=4, batch_window=0.02, workers=2) as engine:
        threads = [threading.Thread(target=hammer, args=(engine,)) for _ in range(3)]
        for t in threads:
            t.start()
        futures = [engine.submit(x) for _ in range(32)]
        for f in futures:
            f.result(timeout=60.0)
        stop.set()
        for t in threads:
            t.join()
    assert not torn, torn[:3]
    assert engine.report().count == 32


def test_traces_record_the_request_timeline(executor):
    rng = np.random.default_rng(24)
    with ServingEngine(executor, max_batch=2, batch_window=0.01, trace_capacity=4) as engine:
        futures = [engine.submit(rng.normal(size=(1, 3, 8, 8))) for _ in range(6)]
        for f in futures:
            f.result(timeout=60.0)
    traces = engine.traces()
    assert len(traces) == 4  # ring bound holds
    for t in traces:
        assert tuple(s.name for s in t.spans) == ("enqueue", "batch_form", "execute", "reply")
        assert t.ok and t.latency > 0.0
        assert t.span("execute").duration > 0.0
    assert "recent requests" in engine.statusz()


def _scrape(url: str):
    with urllib.request.urlopen(url, timeout=10.0) as resp:
        return resp.status, resp.read().decode()


@pytest.mark.parametrize("pool_kind", ["thread", "process"])
def test_live_metrics_endpoint_end_to_end(pool_kind):
    """Serve over a real pool, scrape /metrics mid-flight, and check the
    scrape agrees with the engine's own report."""
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    plan = compile_plan(model, transform)
    rng = np.random.default_rng(25)
    with make_pool(pool_kind, model, plan, workers=2) as pool:
        with ServingEngine(pool, max_batch=4, batch_window=0.005, workers=2) as engine:
            with engine.serve_metrics(port=0) as server:
                futures = [engine.submit(rng.normal(size=(2, 3, 8, 8))) for _ in range(8)]
                for f in futures:
                    f.result(timeout=120.0)
                status, text = _scrape(server.url + "/metrics")
                assert status == 200
                status, body = _scrape(server.url + "/metrics.json")
                snap = json.loads(body)
                status, body = _scrape(server.url + "/healthz")
                health = json.loads(body)
            report = engine.report()
    # Prometheus text carries every family the issue promises.
    for family in (
        "tasd_serve_requests_total",
        "tasd_serve_request_latency_seconds_bucket",
        "tasd_serve_queue_wait_seconds_bucket",
        "tasd_serve_batch_size_bucket",
        "tasd_layer_gemm_latency_seconds_bucket",
        "tasd_layer_calls_total",
        "tasd_cache_hits_total",
        "tasd_worker_alive",
        "tasd_worker_requests_total",
    ):
        assert family in text, family
    # The request-latency histogram total equals the report's served count.
    (latency_series,) = snap["tasd_serve_request_latency_seconds"]["series"]
    assert latency_series["count"] == report.count == 8
    assert snap["tasd_serve_requests_total"]["series"][0]["value"] == 8.0
    # Both pool workers are visible and were alive mid-scrape.
    workers = {
        s["labels"]["worker"]: s["value"]
        for s in snap["tasd_worker_alive"]["series"]
    }
    assert set(workers) == {"0", "1"}
    assert all(v == 1.0 for v in workers.values())
    assert health["ok"] is True and health["workers_alive"] == 2
    # Per-layer GEMM histograms merged across workers: calls recorded on
    # every compiled layer, each histogram's count matching its call counter.
    calls = {
        s["labels"]["layer"]: s["value"]
        for s in snap["tasd_layer_calls_total"]["series"]
    }
    gemm_counts: dict = {}
    for s in snap["tasd_layer_gemm_latency_seconds"]["series"]:
        layer = s["labels"]["layer"]
        gemm_counts[layer] = gemm_counts.get(layer, 0) + s["count"]
    for name, plan_layer in plan.layers.items():
        if plan_layer.mode == "compiled":
            assert gemm_counts.get(name) == calls.get(name) != None  # noqa: E711


def test_healthz_status_and_recovery_counters_scrape(executor):
    """A healthy engine scrapes status "ok" and exports the recovery metrics."""
    engine = ServingEngine(executor)
    with engine:
        engine.infer(np.random.default_rng(3).normal(size=(1, 3, 8, 8)), timeout=60.0)
        with engine.serve_metrics(port=0) as server:
            status, body = _scrape(server.url + "/healthz")
            detail = json.loads(body)
            assert status == 200
            assert detail["status"] == "ok"
            assert detail["fallback_active"] is False
            status, text = _scrape(server.url + "/metrics")
            for name in (
                "tasd_serve_requests_retried_total",
                "tasd_serve_deadline_exceeded_total",
                "tasd_serve_queue_rejected_total",
                "tasd_serve_degraded",
            ):
                assert name in text, f"{name} missing from /metrics"
            assert "tasd_serve_degraded 0" in text  # healthy: not degraded


def test_healthz_reports_stopped_engine_unhealthy(executor):
    engine = ServingEngine(executor)
    with engine.serve_metrics(port=0) as server:
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as exc:
            _scrape(server.url + "/healthz")
        assert exc.value.code == 503
        engine.start()
        status, body = _scrape(server.url + "/healthz")
        assert status == 200 and json.loads(body)["running"] is True
        engine.stop()
        with pytest.raises(urllib.error.HTTPError) as exc:
            _scrape(server.url + "/healthz")
        assert json.loads(exc.value.read().decode())["running"] is False
