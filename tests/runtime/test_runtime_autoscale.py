"""Autoscaler controller tests: hysteresis, cooldown, bounds, actuation.

The decision logic runs against injected signal/actuator/clock fakes, so
every scenario is deterministic — no sleeps, no load generation.  The
integration tests at the bottom drive a real engine + pool through
``scale_to`` and check the fleet (and the ``tasd_pool_target_workers``
gauge) actually moves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TASDConfig
from repro.nn import Linear, Sequential
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import (
    Autoscaler,
    PlanExecutor,
    ProcessWorkerPool,
    ServingEngine,
    ThreadWorkerPool,
    compile_plan,
)
from repro.tasder.transform import TASDTransform

CFG = TASDConfig.parse("2:4")
FAST = dict(respawn_backoff=0.01, backoff_cap=0.1, health_interval=0.05)


def _small_model():
    model = Sequential(Linear(32, 48), Linear(48, 16))
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    return model, transform


@pytest.fixture(scope="module")
def compiled():
    model, transform = _small_model()
    return model, compile_plan(model, transform)


class _Fake:
    """Scripted signals + recorded actuation + manual clock."""

    def __init__(self, depths, utils=None):
        self.depths = list(depths)
        self.utils = list(utils) if utils is not None else [0.0] * len(self.depths)
        self.now = 0.0
        self.scaled: list[int] = []

    def depth(self):
        return self.depths.pop(0)

    def util(self):
        return self.utils.pop(0)

    def scale(self, n):
        self.scaled.append(n)

    def scaler(self, **kwargs):
        kwargs.setdefault("min_workers", 1)
        kwargs.setdefault("max_workers", 8)
        kwargs.setdefault("high_depth", 4.0)
        kwargs.setdefault("low_depth", 1.0)
        kwargs.setdefault("breach_ticks", 3)
        kwargs.setdefault("cooldown", 10.0)
        start_at = kwargs.pop("start_at", None)
        scaler = Autoscaler(
            depth_fn=self.depth,
            util_fn=self.util,
            scale_fn=self.scale,
            clock=lambda: self.now,
            **kwargs,
        )
        if start_at is not None:
            scaler._current = start_at
        return scaler


class TestControllerLogic:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Autoscaler(depth_fn=lambda: 0, scale_fn=lambda n: None, min_workers=0)
        with pytest.raises(ValueError):
            Autoscaler(
                depth_fn=lambda: 0, scale_fn=lambda n: None,
                min_workers=4, max_workers=2,
            )
        with pytest.raises(ValueError):
            Autoscaler(
                depth_fn=lambda: 0, scale_fn=lambda n: None,
                high_depth=1.0, low_depth=2.0,
            )
        with pytest.raises(ValueError):
            Autoscaler(depth_fn=lambda: 0, scale_fn=lambda n: None, breach_ticks=0)
        with pytest.raises(ValueError):
            Autoscaler()  # no engine, no signal functions

    def test_breach_must_persist_before_scaling_up(self):
        fake = _Fake(depths=[10, 10, 10, 10])
        scaler = fake.scaler()
        assert scaler.tick() is None  # streak 1
        assert scaler.tick() is None  # streak 2
        assert scaler.tick() == "up"  # streak 3 = breach_ticks
        assert fake.scaled == [2]
        assert scaler.target == 2

    def test_single_burst_never_scales(self):
        # Depth spikes for two ticks, recovers, spikes again: the streak
        # resets every time it recovers, so nothing ever moves.
        fake = _Fake(depths=[10, 10, 2, 10, 10, 2, 10, 10])
        scaler = fake.scaler()
        for _ in range(8):
            assert scaler.tick() is None
        assert fake.scaled == []

    def test_flapping_load_holds_steady(self):
        fake = _Fake(depths=[10, 0, 10, 0, 10, 0, 10, 0])
        scaler = fake.scaler()
        for _ in range(8):
            assert scaler.tick() is None
        assert fake.scaled == []

    def test_cooldown_blocks_consecutive_resizes(self):
        fake = _Fake(depths=[10] * 10)
        scaler = fake.scaler(cooldown=10.0)
        results = [scaler.tick() for _ in range(3)]
        assert results == [None, None, "up"]
        # Sustained pressure inside the cooldown window: nothing moves...
        assert [scaler.tick() for _ in range(4)] == [None] * 4
        # ...but the streak kept advancing, so the first tick after the
        # cooldown lifts acts immediately.
        fake.now = 11.0
        assert scaler.tick() == "up"
        assert fake.scaled == [2, 3]

    def test_scale_down_requires_low_depth_and_low_util(self):
        # Depth is idle but workers are saturated: not a scale-down.
        fake = _Fake(depths=[0] * 6, utils=[0.9] * 6)
        scaler = fake.scaler(start_at=4)
        for _ in range(6):
            assert scaler.tick() is None
        assert fake.scaled == []

    def test_sustained_idle_scales_down_to_min(self):
        fake = _Fake(depths=[0] * 12, utils=[0.0] * 12)
        scaler = fake.scaler(start_at=3, cooldown=0.0)
        directions = [scaler.tick() for _ in range(12)]
        assert directions.count("down") == 2  # 3 -> 2 -> 1, then clamped
        assert fake.scaled == [2, 1]
        assert scaler.target == 1

    def test_high_utilization_alone_scales_up(self):
        fake = _Fake(depths=[0] * 3, utils=[1.0] * 3)
        scaler = fake.scaler()
        assert [scaler.tick() for _ in range(3)] == [None, None, "up"]

    def test_target_clamped_at_max_workers(self):
        fake = _Fake(depths=[10] * 6)
        scaler = fake.scaler(max_workers=2, cooldown=0.0)
        assert [scaler.tick() for _ in range(3)] == [None, None, "up"]
        # Already at the ceiling: pressure keeps building, target holds.
        assert [scaler.tick() for _ in range(3)] == [None] * 3
        assert scaler.target == 2

    def test_events_record_the_trajectory(self):
        fake = _Fake(depths=[10] * 3 + [0] * 3, utils=[0.0] * 6)
        scaler = fake.scaler(cooldown=0.0)
        for _ in range(6):
            scaler.tick()
        assert [(d, a, b) for _, d, a, b in scaler.events] == [
            ("up", 1, 2),
            ("down", 2, 1),
        ]

    def test_actuator_failure_does_not_kill_the_thread(self):
        calls = []

        def flaky_scale(n):
            calls.append(n)
            raise RuntimeError("pool mid-swap")

        fake = _Fake(depths=[10] * 100)
        scaler = Autoscaler(
            depth_fn=fake.depth,
            util_fn=fake.util,
            scale_fn=flaky_scale,
            clock=lambda: fake.now,
            breach_ticks=1,
            cooldown=0.0,
            interval=0.005,
        )
        with scaler:
            deadline = 100
            while not calls and deadline:
                import time

                time.sleep(0.01)
                deadline -= 1
        assert calls  # the loop survived at least one actuator failure


class TestEngineIntegration:
    def test_autoscaler_drives_the_thread_pool(self, compiled):
        model, plan = compiled
        x = np.random.default_rng(3).normal(size=(2, 32))
        with ThreadWorkerPool(model, plan, workers=1) as pool:
            with ServingEngine(pool, max_batch=4, workers=1) as engine:
                engine.infer(x)
                scaler = Autoscaler(
                    engine,
                    max_workers=3,
                    breach_ticks=2,
                    cooldown=0.0,
                    depth_fn=lambda: 100.0,  # forced pressure
                )
                assert scaler.tick() is None
                assert scaler.tick() == "up"
                assert engine.workers == 2
                assert pool.workers == 2
                np.testing.assert_allclose(
                    engine.infer(x), PlanExecutor(model, plan).install().run(x)
                )
                snap = engine.metrics_snapshot()
                assert snap["tasd_pool_target_workers"]["series"][0]["value"] == 2.0
                assert (
                    snap["tasd_pool_scale_events_total"]["series"][0]["value"] >= 1.0
                )

    def test_autoscaler_resizes_the_process_pool_both_ways(self, compiled):
        model, plan = compiled
        x = np.random.default_rng(4).normal(size=(2, 32))
        with ProcessWorkerPool(model, plan, workers=1, **FAST) as pool:
            with ServingEngine(pool, max_batch=4, workers=1) as engine:
                reference = engine.infer(x)
                scaler = Autoscaler(
                    engine,
                    max_workers=2,
                    breach_ticks=1,
                    cooldown=0.0,
                    depth_fn=lambda: 100.0,
                    util_fn=lambda: 0.0,
                )
                assert scaler.tick() == "up"
                assert len(pool.worker_pids()) == 2
                idle = Autoscaler(
                    engine,
                    min_workers=1,
                    max_workers=2,
                    breach_ticks=1,
                    cooldown=0.0,
                    depth_fn=lambda: 0.0,
                    util_fn=lambda: 0.0,
                )
                assert idle.tick() == "down"
                assert len(pool.worker_pids()) == 1
                np.testing.assert_allclose(engine.infer(x), reference)

    def test_pool_scale_to_is_rejected_before_install(self, compiled):
        model, plan = compiled
        pool = ProcessWorkerPool(model, plan, workers=1, **FAST)
        # Not installed yet: the resize is recorded as the target strength
        # and applied by install(), not performed against a dead pool.
        assert pool.scale_to(2) == 1
        with pool:
            assert len(pool.worker_pids()) == 2
