"""Tests for the pluggable structured-GEMM kernel backends.

The load-bearing property: every *exact* backend is **bit-identical** to
the reference ``einsum-gather`` kernel (they restructure memory movement,
never the per-element floating-point evaluation order), and the inexact
backends (``scatter-csr``, ``dense-emulation``) agree to rounding error.
That is what lets the autotuner swap kernels per layer without changing
what a compiled plan computes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NMPattern, TASDConfig
from repro.core.sparse_ops import nm_compress, nm_gather_tables
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import (
    DEFAULT_BACKEND,
    CompiledOperand,
    OperandCache,
    PlanExecutor,
    autotune_operand,
    backend_names,
    compile_plan,
    exact_backend_names,
    get_backend,
    register_backend,
)
from repro.runtime.autotune import AutotuneResult
from repro.runtime.backends import BlockedGatherBackend, GemmBackend
from repro.tasder.transform import TASDTransform

# Representative series: single-term, multi-term uniform M, mixed block
# sizes (lcm padding), and a three-term series.
CONFIGS = ["1:4", "2:4", "2:8", "2:8+1:8", "2:4+1:4", "4:8+2:8+1:8", "2:4+1:8"]
# (rows, cols) including reduction dims that need padding for every series.
SHAPES = [(4, 8), (16, 32), (7, 19), (32, 100), (1, 24), (64, 130)]

EXACT = set(exact_backend_names())
INEXACT = set(backend_names()) - EXACT


def make_operand(rng, shape, config_text, sparsity=0.5, dtype=np.float64):
    config = TASDConfig.parse(config_text)
    w = rng.normal(size=shape) * (rng.random(shape) < (1.0 - sparsity))
    return OperandCache().compress(w.astype(dtype), config)


class TestRegistry:
    def test_reference_is_registered_first(self):
        assert backend_names()[0] == DEFAULT_BACKEND

    def test_all_five_backends_registered(self):
        assert set(backend_names()) >= {
            "einsum-gather",
            "fused-gather",
            "blocked-gather",
            "scatter-csr",
            "dense-emulation",
        }

    def test_exact_tier(self):
        assert EXACT == {"einsum-gather", "fused-gather", "blocked-gather"}
        assert {"scatter-csr", "dense-emulation"} <= INEXACT

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown GEMM backend"):
            get_backend("no-such-kernel")

    def test_duplicate_registration_rejected(self):
        class Dup(GemmBackend):
            name = DEFAULT_BACKEND

        with pytest.raises(ValueError, match="already registered"):
            register_backend(Dup())

    def test_registration_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            register_backend(GemmBackend())

    def test_custom_backend_round_trip(self):
        class Toy(GemmBackend):
            name = "toy-test-backend"

            def matmul(self, operand, state, b):  # pragma: no cover - stub
                raise NotImplementedError

        try:
            register_backend(Toy())
            assert get_backend("toy-test-backend").name == "toy-test-backend"
            assert "toy-test-backend" not in exact_backend_names()
        finally:
            from repro.runtime import backends as backends_mod

            backends_mod._REGISTRY.pop("toy-test-backend", None)


class TestBackendEquivalence:
    """Property-style sweep: every backend vs the reference kernel."""

    @pytest.mark.parametrize("config_text", CONFIGS)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_gather_backends_bit_identical(self, rng, config_text, shape):
        op = make_operand(rng, shape, config_text)
        for n_cols in (1, 3, 33):
            b = rng.normal(size=(op.padded_shape[1], n_cols))
            ref = op.matmul(b, backend=DEFAULT_BACKEND)
            for name in EXACT:
                out = op.matmul(b, backend=name)
                np.testing.assert_array_equal(
                    out, ref, err_msg=f"{name} not bit-identical for {config_text} {shape}"
                )

    @pytest.mark.parametrize("config_text", CONFIGS)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_inexact_backends_allclose(self, rng, config_text, shape):
        op = make_operand(rng, shape, config_text)
        b = rng.normal(size=(op.padded_shape[1], 17))
        ref = op.matmul(b, backend=DEFAULT_BACKEND)
        for name in INEXACT:
            out = op.matmul(b, backend=name)
            np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-10, err_msg=name)

    @pytest.mark.parametrize("sparsity", [0.0, 0.5, 0.95, 1.0])
    def test_extreme_sparsity_levels(self, rng, sparsity):
        """Fully-dense and fully-zero operands exercise padding-slot paths."""
        op = make_operand(rng, (8, 32), "2:4", sparsity=sparsity)
        b = rng.normal(size=(32, 5))
        ref = op.matmul(b)
        for name in backend_names():
            out = op.matmul(b, backend=name)
            if name in EXACT:
                np.testing.assert_array_equal(out, ref, err_msg=name)
            else:
                np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-12, err_msg=name)

    def test_float32_operand_keeps_dtype(self, rng):
        op = make_operand(rng, (8, 16), "2:4", dtype=np.float32)
        b = rng.normal(size=(16, 4)).astype(np.float32)
        for name in backend_names():
            assert op.matmul(b, backend=name).dtype == np.float32, name

    def test_blocked_gather_tiling_loop_bit_identical(self, rng):
        """Force multi-tile execution (tiny block_rows) and check bits."""
        op = make_operand(rng, (37, 64), "2:8+1:8")
        b = rng.normal(size=(op.padded_shape[1], 29))
        ref = op.matmul(b, backend=DEFAULT_BACKEND)
        for block_rows in (1, 3, 16, 37, 100):
            be = BlockedGatherBackend(block_rows=block_rows)
            out = be.matmul(op, None, b)
            np.testing.assert_array_equal(out, ref, err_msg=f"block_rows={block_rows}")

    def test_blocked_gather_auto_tile_bounds_budget(self, rng):
        op = make_operand(rng, (64, 64), "2:4")
        be = BlockedGatherBackend(budget_bytes=1024)  # force tiny tiles
        b = rng.normal(size=(64, 16))
        np.testing.assert_array_equal(be.matmul(op, None, b), op.matmul(b))

    def test_blocked_gather_invalid_params(self):
        with pytest.raises(ValueError):
            BlockedGatherBackend(block_rows=0)
        with pytest.raises(ValueError):
            BlockedGatherBackend(budget_bytes=0)

    def test_backend_state_is_memoised_per_operand(self, rng):
        op = make_operand(rng, (8, 16), "2:4")
        b = rng.normal(size=(16, 4))
        op.matmul(b, backend="fused-gather")
        state = op.backend_states["fused-gather"]
        op.matmul(b, backend="fused-gather")
        assert op.backend_states["fused-gather"] is state


class TestMixedDtypeAccumulation:
    def test_result_type_spans_all_terms(self, rng):
        """Out dtype must come from *all* terms, not just ``terms[0]``."""
        pattern = NMPattern(2, 4)
        w32 = (rng.normal(size=(4, 8)) * (rng.random((4, 8)) < 0.5)).astype(np.float32)
        w64 = rng.normal(size=(4, 8)) * (rng.random((4, 8)) < 0.5)
        from repro.core.patterns import pattern_view

        t32 = nm_compress(pattern_view(w32, pattern), pattern)
        t64 = nm_compress(pattern_view(w64, pattern), pattern)
        tables = [nm_gather_tables(t) for t in (t32, t64)]
        op = CompiledOperand(
            config=TASDConfig.parse("2:4+2:4"),
            original_shape=(4, 8),
            padded_shape=(4, 8),
            terms=(t32, t64),
            flat_values=tuple(v for v, _ in tables),
            flat_rows=tuple(r for _, r in tables),
        )
        b = rng.normal(size=(8, 3)).astype(np.float32)
        # terms[0] is float32 and b is float32, but the float64 second term
        # must widen the accumulator.
        assert op.matmul(b).dtype == np.float64


class TestPlanBackendDispatch:
    @pytest.fixture(scope="class")
    def sparse_model(self):
        model = resnet18(num_classes=10, base_width=16)
        global_magnitude_prune(model, 0.6)
        transform = TASDTransform(
            weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
        )
        return model, transform

    def test_full_forward_bit_identical_across_exact_backends(self, sparse_model):
        model, transform = sparse_model
        x = np.random.default_rng(3).normal(size=(2, 3, 8, 8))
        outputs = {}
        for name in EXACT:
            plan = compile_plan(model, transform, backend=name)
            with PlanExecutor(model, plan) as ex:
                outputs[name] = ex.run(x)
        ref = outputs[DEFAULT_BACKEND]
        for name, out in outputs.items():
            np.testing.assert_array_equal(out, ref, err_msg=name)

    def test_full_forward_allclose_across_inexact_backends(self, sparse_model):
        model, transform = sparse_model
        x = np.random.default_rng(4).normal(size=(2, 3, 8, 8))
        plan = compile_plan(model, transform)
        with PlanExecutor(model, plan) as ex:
            ref = ex.run(x)
        for name in INEXACT:
            plan = compile_plan(model, transform, backend=name)
            with PlanExecutor(model, plan) as ex:
                np.testing.assert_allclose(ex.run(x), ref, rtol=1e-9, atol=1e-9, err_msg=name)

    def test_unknown_backend_fails_at_build_time(self, sparse_model):
        model, transform = sparse_model
        with pytest.raises(KeyError, match="unknown GEMM backend"):
            compile_plan(model, transform, backend="warp-drive")

    def test_backend_visible_in_summary(self, sparse_model):
        model, transform = sparse_model
        plan = compile_plan(model, transform, backend="fused-gather")
        assert "fused-gather" in plan.summary()
        assert set(plan.backend_choices().values()) == {"fused-gather"}


class TestAutotune:
    def test_autotune_operand_sweeps_all_backends(self, rng):
        op = make_operand(rng, (32, 64), "2:4")
        result = autotune_operand(op, sample_cols=8, repeats=2)
        assert result.backend in backend_names()
        assert set(result.timings) == set(backend_names())
        assert all(t > 0 for t in result.timings.values())
        assert result.speedup_vs_reference > 0
        assert "autotune" in str(result)

    def test_exact_only_restricts_candidates(self, rng):
        op = make_operand(rng, (16, 32), "2:4")
        result = autotune_operand(op, sample_cols=4, repeats=1, exact_only=True)
        assert set(result.timings) == EXACT
        assert result.backend in EXACT

    def test_explicit_candidate_list(self, rng):
        op = make_operand(rng, (16, 32), "2:4")
        result = autotune_operand(op, repeats=1, backends=("einsum-gather", "fused-gather"))
        assert set(result.timings) == {"einsum-gather", "fused-gather"}

    def test_losing_backend_state_is_evicted(self, rng):
        """Only the winner's prepared state may stay resident on the operand."""
        op = make_operand(rng, (16, 32), "2:4")
        result = autotune_operand(op, sample_cols=4, repeats=1)
        assert set(op.backend_states) <= {result.backend}

    def test_sample_dtype_follows_operand(self, rng):
        """A float32 operand must be tuned on float32 arithmetic."""
        op = make_operand(rng, (16, 32), "2:4", dtype=np.float32)
        result = autotune_operand(op, sample_cols=4, repeats=1)
        state = op.backend_states.get(result.backend)
        if isinstance(state, np.ndarray):  # dense-emulation: prepared matrix
            assert state.dtype == np.float32

    def test_speedup_distinguishes_zero_timings_from_missing(self):
        """A measured 0.0 s median is a real timing, not "unmeasured"."""
        # Missing keys: genuinely unmeasured, ratio defaults to 1.0.
        assert AutotuneResult(backend="fused-gather").speedup_vs_reference == 1.0
        assert (
            AutotuneResult(
                backend="fused-gather", timings={"fused-gather": 1e-6}
            ).speedup_vs_reference
            == 1.0
        )
        assert (
            AutotuneResult(
                backend="fused-gather", timings={"einsum-gather": 1e-6}
            ).speedup_vs_reference
            == 1.0
        )
        # Zero-time winner against a measurable reference: unboundedly fast,
        # not silently 1.0x (the timer-resolution case on tiny layers).
        assert (
            AutotuneResult(
                backend="fused-gather",
                timings={"einsum-gather": 1e-6, "fused-gather": 0.0},
            ).speedup_vs_reference
            == float("inf")
        )
        # Both medians at zero: indistinguishable, 1.0.
        assert (
            AutotuneResult(
                backend="fused-gather",
                timings={"einsum-gather": 0.0, "fused-gather": 0.0},
            ).speedup_vs_reference
            == 1.0
        )
        # Normal case unchanged.
        assert AutotuneResult(
            backend="fused-gather",
            timings={"einsum-gather": 2e-6, "fused-gather": 1e-6},
        ).speedup_vs_reference == pytest.approx(2.0)

    def test_invalid_parameters(self, rng):
        op = make_operand(rng, (16, 32), "2:4")
        with pytest.raises(ValueError):
            autotune_operand(op, repeats=0)
        with pytest.raises(ValueError):
            autotune_operand(op, sample_cols=0)
        with pytest.raises(ValueError):
            autotune_operand(op, backends=())
        with pytest.raises(KeyError):
            autotune_operand(op, backends=("no-such-kernel",))

    def test_compile_plan_autotune_records_winners(self):
        model = resnet18(num_classes=10, base_width=16)
        global_magnitude_prune(model, 0.6)
        transform = TASDTransform(
            weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
        )
        plan = compile_plan(model, transform, autotune=True, autotune_repeats=1)
        compiled = [p for p in plan.layers.values() if p.mode == "compiled"]
        assert compiled
        for layer_plan in compiled:
            assert isinstance(layer_plan.autotune, AutotuneResult)
            assert layer_plan.backend == layer_plan.autotune.backend
        # The tuned choice is visible in the human-readable summary.
        assert any(p.backend in plan.summary() for p in compiled)
        # The forward still matches the reference arithmetic to rounding.
        x = np.random.default_rng(5).normal(size=(2, 3, 8, 8))
        with PlanExecutor(model, plan) as ex:
            tuned = ex.run(x)
        with PlanExecutor(model, compile_plan(model, transform)) as ex:
            ref = ex.run(x)
        np.testing.assert_allclose(tuned, ref, rtol=1e-9, atol=1e-9)

    def test_compile_plan_autotune_exact_only_preserves_bits(self):
        model = resnet18(num_classes=10, base_width=16)
        global_magnitude_prune(model, 0.6)
        transform = TASDTransform(
            weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
        )
        x = np.random.default_rng(6).normal(size=(2, 3, 8, 8))
        plan = compile_plan(
            model, transform, autotune=True, autotune_repeats=1, autotune_exact_only=True
        )
        assert set(plan.backend_choices().values()) <= EXACT
        with PlanExecutor(model, plan) as ex:
            tuned = ex.run(x)
        with PlanExecutor(model, compile_plan(model, transform)) as ex:
            ref = ex.run(x)
        np.testing.assert_array_equal(tuned, ref)
