"""Tests for nnz-balanced intra-layer sharding (:mod:`repro.runtime.shard`).

The contract under test: a layer's gather rows are partitioned into K
shards with equal **nnz** budgets (not equal row counts), the shard table
is pure picklable data that persists with the plan and is re-validated at
load, and scattering one forward's shards across a pool then
concatenating the partials is bit-identical to the unsharded forward on
every row-slice-safe backend.  On a skewed layer the equal-nnz split must
measurably beat the naive equal-row split — balanced budgets and a lower
max-shard wall time on the nnz-proportional ``scatter-csr`` kernel.
"""

from __future__ import annotations

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import (
    DEFAULT_BACKEND,
    OperandCache,
    PlanExecutor,
    PlanFormatError,
    ServingEngine,
    backend_names,
    compile_plan,
    get_backend,
    load_plan,
    make_pool,
    make_shard_spec,
    partition_equal_nnz,
    partition_equal_rows,
    plan_shards,
    row_nnz_profile,
    row_nnz_stats,
    save_plan,
    slice_operand,
)
from repro.runtime.planio import _CHECKSUM_KEY, _MANIFEST_KEY, _manifest_checksum
from repro.runtime.shard import (
    ShardSpec,
    candidate_shard_counts,
    choose_layer_shards,
    median_time,
    shard_backend,
)
from repro.tasder.transform import TASDTransform

CFG = TASDConfig.parse("2:4")


def _sparse_model():
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    return model, transform


@pytest.fixture(scope="module")
def compiled():
    """A compiled plan whose shardable layers carry 3-way shard tables.

    The tables are inert for a plain :class:`PlanExecutor` (no dispatcher
    is installed), so the same plan serves as both the sharded subject and
    the unsharded reference.
    """
    model, transform = _sparse_model()
    plan = compile_plan(model, transform, shards=3)
    return model, transform, plan


@pytest.fixture()
def batch():
    return np.random.default_rng(33).normal(size=(2, 3, 8, 8))


def _skewed_operand(rows=512, cols=512, heavy=48):
    """A compiled operand whose per-row nnz is heavily skewed.

    The first ``heavy`` rows are dense; the rest carry a couple of
    stragglers each — the shape equal-row sharding is worst at.
    """
    rng = np.random.default_rng(7)
    w = np.zeros((rows, cols))
    w[:heavy] = rng.normal(size=(heavy, cols))
    light = rng.normal(size=(rows - heavy, 2))
    cols_a = rng.integers(0, cols, size=rows - heavy)
    cols_b = (cols_a + cols // 2) % cols
    w[np.arange(heavy, rows), cols_a] = light[:, 0]
    w[np.arange(heavy, rows), cols_b] = light[:, 1]
    return OperandCache().compress(w, CFG)


def _npz_dict(path) -> dict[str, np.ndarray]:
    with np.load(path, allow_pickle=False) as data:
        return {k: data[k] for k in data.files}


def _rewrite_manifest(path, mutate) -> None:
    """Edit the artifact's manifest in place, recomputing the checksum
    (models a *forged* artifact, not a corrupted one)."""
    arrays = _npz_dict(path)
    manifest = json.loads(bytes(arrays[_MANIFEST_KEY]).decode())
    mutate(manifest)
    manifest_bytes = json.dumps(manifest, sort_keys=True).encode()
    arrays[_MANIFEST_KEY] = np.frombuffer(manifest_bytes, dtype=np.uint8)
    arrays[_CHECKSUM_KEY] = np.frombuffer(
        _manifest_checksum(manifest_bytes).encode(), dtype=np.uint8
    )
    with open(path, "wb") as f:
        np.savez_compressed(f, **arrays)


def _shard_entry(manifest) -> dict:
    return next(
        e["shards"] for e in manifest["layers"] if e.get("shards") is not None
    )


# ---------------------------------------------------------------------- #
# Partitioners
# ---------------------------------------------------------------------- #
class TestPartitioners:
    def test_empty_rows_yield_no_shards(self):
        assert partition_equal_nnz(np.array([], dtype=np.int64), 4) == ()
        assert partition_equal_rows(0, 4) == ()

    def test_k1_is_identity(self):
        profile = np.array([5, 0, 9, 1], dtype=np.int64)
        assert partition_equal_nnz(profile, 1) == ((0, 4),)
        assert partition_equal_rows(4, 1) == ((0, 4),)

    def test_k_clamps_to_row_count(self):
        profile = np.array([3, 3, 3], dtype=np.int64)
        ranges = partition_equal_nnz(profile, 8)
        assert ranges == ((0, 1), (1, 2), (2, 3))
        assert partition_equal_rows(3, 8) == ((0, 1), (1, 2), (2, 3))

    def test_all_nnz_in_one_row_isolates_the_hot_row(self):
        profile = np.zeros(8, dtype=np.int64)
        profile[3] = 100
        ranges = partition_equal_nnz(profile, 4)
        # Tiling invariant holds, every shard keeps >= 1 row, and the hot
        # row sits alone in its shard — the split cannot balance further.
        assert ranges[0][0] == 0 and ranges[-1][1] == 8
        assert all(a < b for a, b in ranges)
        assert all(ranges[i][1] == ranges[i + 1][0] for i in range(3))
        hot = next((a, b) for a, b in ranges if a <= 3 < b)
        assert hot == (3, 4)

    def test_zero_profile_falls_back_to_equal_rows(self):
        profile = np.zeros(10, dtype=np.int64)
        assert partition_equal_nnz(profile, 3) == partition_equal_rows(10, 3)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_equal_nnz_never_balances_worse_than_equal_rows(self, seed, k):
        rng = np.random.default_rng(seed)
        profile = (rng.pareto(1.5, size=64) * 10).astype(np.int64)
        nnz_ranges = partition_equal_nnz(profile, k)
        row_ranges = partition_equal_rows(profile.shape[0], k)
        assert nnz_ranges[0][0] == 0 and nnz_ranges[-1][1] == 64
        assert all(
            nnz_ranges[i][1] == nnz_ranges[i + 1][0]
            for i in range(len(nnz_ranges) - 1)
        )
        max_nnz = max(int(profile[a:b].sum()) for a, b in nnz_ranges)
        max_row = max(int(profile[a:b].sum()) for a, b in row_ranges)
        assert max_nnz <= max_row

    def test_candidate_counts_are_halvings_clamped_to_rows(self):
        assert candidate_shard_counts(8, 100) == (2, 4, 8)
        assert candidate_shard_counts(8, 3) == (2,)
        assert candidate_shard_counts(1, 100) == ()


# ---------------------------------------------------------------------- #
# Shard tables
# ---------------------------------------------------------------------- #
class TestShardTable:
    def test_roundtrips_through_manifest_entry(self):
        spec = ShardSpec(
            layer="conv1", rows=6, ranges=((0, 2), (2, 6)), nnz=(10, 4)
        )
        entry = spec.to_entry()
        assert json.loads(json.dumps(entry)) == entry  # pure-JSON wire form
        assert ShardSpec.from_entry("conv1", entry) == spec

    def test_gap_overlap_and_empty_shards_refused(self):
        with pytest.raises(ValueError, match="tile"):
            ShardSpec(layer="l", rows=6, ranges=((0, 2), (3, 6)), nnz=(1, 1))
        with pytest.raises(ValueError, match="tile"):
            ShardSpec(layer="l", rows=6, ranges=((0, 4), (2, 6)), nnz=(1, 1))
        with pytest.raises(ValueError, match="tile"):
            ShardSpec(layer="l", rows=6, ranges=((0, 2), (2, 2)), nnz=(1, 1))
        with pytest.raises(ValueError, match="no shards"):
            ShardSpec(layer="l", rows=0, ranges=(), nnz=())

    def test_row_count_and_budget_arity_mismatches_refused(self):
        with pytest.raises(ValueError, match="6 rows"):
            ShardSpec(layer="l", rows=6, ranges=((0, 2), (2, 5)), nnz=(1, 1))
        with pytest.raises(ValueError, match="nnz budgets"):
            ShardSpec(layer="l", rows=6, ranges=((0, 2), (2, 6)), nnz=(1,))

    def test_imbalance_is_max_over_mean(self):
        spec = ShardSpec(
            layer="l", rows=4, ranges=((0, 1), (1, 2), (2, 3), (3, 4)),
            nnz=(4, 4, 4, 4),
        )
        assert spec.imbalance == 1.0
        skew = ShardSpec(
            layer="l", rows=2, ranges=((0, 1), (1, 2)), nnz=(30, 10)
        )
        assert skew.imbalance == pytest.approx(1.5)
        empty = ShardSpec(layer="l", rows=2, ranges=((0, 1), (1, 2)), nnz=(0, 0))
        assert empty.imbalance == 1.0

    def test_make_shard_spec_strategies(self):
        op = _skewed_operand(rows=64, cols=64, heavy=8)
        nnz_spec = make_shard_spec("l", op, 4)
        row_spec = make_shard_spec("l", op, 4, strategy="rows")
        assert nnz_spec.num_shards == row_spec.num_shards == 4
        assert nnz_spec.imbalance <= row_spec.imbalance
        assert sum(nnz_spec.nnz) == sum(row_spec.nnz)
        with pytest.raises(ValueError, match="strategy"):
            make_shard_spec("l", op, 4, strategy="hash")


# ---------------------------------------------------------------------- #
# Shard-local compute: bit identity per backend
# ---------------------------------------------------------------------- #
class TestShardCompute:
    @pytest.mark.parametrize(
        "backend",
        [n for n in backend_names() if get_backend(n).shard_safe],
    )
    def test_row_slices_concatenate_bit_identically(self, backend):
        op = _skewed_operand(rows=96, cols=64, heavy=12)
        rng = np.random.default_rng(11)
        b = rng.normal(size=(op.padded_shape[1], 5))
        full = op.matmul(b, backend=backend)
        spec = make_shard_spec("l", op, 4)
        parts = [
            slice_operand(op, a, z).matmul(b, backend=backend)
            for a, z in spec.ranges
        ]
        np.testing.assert_array_equal(np.concatenate(parts, axis=0), full)

    @pytest.mark.parametrize(
        "backend",
        [n for n in backend_names() if not get_backend(n).shard_safe],
    )
    def test_unsafe_backends_are_never_sharded(self, backend, compiled):
        # A forced shard computes with the reference gather kernel instead,
        # and plan-level sharding skips layers pinned to the unsafe backend.
        assert shard_backend(backend) == DEFAULT_BACKEND
        model, transform = _sparse_model()
        plan = compile_plan(model, transform, backend=backend)
        assert plan_shards(plan, 4) == {}
        assert all(lp.shards is None for lp in plan.layers.values())

    def test_slice_bounds_validated(self):
        op = _skewed_operand(rows=32, cols=32, heavy=4)
        with pytest.raises(ValueError, match="not inside"):
            slice_operand(op, 4, 4)
        with pytest.raises(ValueError, match="not inside"):
            slice_operand(op, 0, op.padded_shape[0] + 1)

    def test_slices_are_zero_copy_views(self):
        op = _skewed_operand(rows=32, cols=32, heavy=4)
        sliced = slice_operand(op, 8, 24)
        for src, view in zip(op.flat_values, sliced.flat_values):
            assert np.shares_memory(src, view)
        for src_t, view_t in zip(op.terms, sliced.terms):
            assert np.shares_memory(src_t.values, view_t.values)
            assert np.shares_memory(src_t.indices, view_t.indices)


# ---------------------------------------------------------------------- #
# Equal-nnz vs equal-row on a skewed layer (the acceptance criterion)
# ---------------------------------------------------------------------- #
class TestEqualNnzBeatsEqualRows:
    @pytest.fixture(scope="class")
    def skewed(self):
        return _skewed_operand()

    def test_nnz_split_balances_within_tolerance(self, skewed):
        _, _, _, skew = row_nnz_stats(skewed)
        assert skew > 2.0  # the layer is genuinely skewed
        nnz_spec = make_shard_spec("l", skewed, 4)
        row_spec = make_shard_spec("l", skewed, 4, strategy="rows")
        assert row_spec.imbalance > 1.5  # equal rows demonstrably unbalanced
        assert nnz_spec.imbalance <= 1.05
        assert nnz_spec.imbalance <= row_spec.imbalance

    def test_nnz_split_has_lower_max_shard_wall_time(self, skewed):
        # scatter-csr is the one kernel whose compute tracks true nnz
        # (gather backends pay per padded slot), so it is the backend the
        # wall-time claim is about.
        rng = np.random.default_rng(5)
        b = rng.normal(size=(skewed.padded_shape[1], 64))
        nnz_spec = make_shard_spec("l", skewed, 4)
        row_spec = make_shard_spec("l", skewed, 4, strategy="rows")

        def max_shard_time(spec) -> float:
            worst = 0.0
            for a, z in spec.ranges:
                sliced = slice_operand(skewed, a, z)
                worst = max(
                    worst,
                    median_time(
                        lambda s=sliced: s.matmul(b, backend="scatter-csr"),
                        repeats=5,
                    ),
                )
            return worst

        assert max_shard_time(nnz_spec) < max_shard_time(row_spec)


# ---------------------------------------------------------------------- #
# Plan integration
# ---------------------------------------------------------------------- #
class TestPlanShardTables:
    def test_compile_attaches_tables_to_shardable_layers(self, compiled):
        _, _, plan = compiled
        tabled = {n: lp.shards for n, lp in plan.layers.items() if lp.shards}
        assert tabled
        for name, spec in tabled.items():
            lp = plan.layers[name]
            assert get_backend(lp.backend).shard_safe
            assert spec.num_shards > 1
            assert spec.rows == lp.operand.padded_shape[0]
            profile = row_nnz_profile(lp.operand)
            assert spec.nnz == tuple(
                int(profile[a:b].sum()) for a, b in spec.ranges
            )

    def test_summary_reports_skew_and_shard_tables(self, compiled):
        _, _, plan = compiled
        text = plan.summary()
        assert "row-skew" in text
        assert "nnz imbalance" in text

    def test_choose_layer_shards_respects_overhead(self, compiled):
        _, _, plan = compiled
        lp = max(
            (p for p in plan.layers.values() if p.operand is not None),
            key=lambda p: p.operand.total_nnz,
        )
        # A prohibitive fan-out overhead must force the layer unsharded —
        # the decision is measured, not assumed.
        decision = choose_layer_shards(lp, 4, overhead_s=10.0, repeats=1)
        assert decision.spec is None
        assert decision.speedup == pytest.approx(1.0)
        assert decision.timings[1] == decision.unsharded_s


# ---------------------------------------------------------------------- #
# Pools: scatter/gather dispatch
# ---------------------------------------------------------------------- #
class TestPoolScatterGather:
    def test_thread_pool_sharded_forward_bit_identical(self, compiled, batch):
        model, _, plan = compiled
        with PlanExecutor(model, plan) as ex:
            ref = ex.run(batch)
        with make_pool("thread", model, plan, workers=2) as pool:
            out = pool.run_sharded(batch)
            np.testing.assert_array_equal(out, ref)
            assert pool.sharded_forwards == 1
            # Per-shard latency observer fires once per shard task.
            seen = []
            out = pool.run_sharded(batch, observer=seen.append)
            np.testing.assert_array_equal(out, ref)
            total_shards = sum(
                lp.shards.num_shards
                for lp in plan.layers.values()
                if lp.shards is not None
            )
            assert len(seen) == total_shards
            assert all(t >= 0.0 for t in seen)

    def test_process_pool_sharded_forward_bit_identical(self, compiled, batch):
        model, _, plan = compiled
        with PlanExecutor(model, plan) as ex:
            ref = ex.run(batch)
        with make_pool("process", model, plan, workers=2) as pool:
            np.testing.assert_array_equal(pool.run_sharded(batch), ref)
            assert pool.sharded_forwards == 1
            # Per-layer GEMM counters from the driver replica merge into
            # the pool's stats like any worker's.
            stats = pool.stats()
            assert stats.batches >= 1

    def test_process_pool_retries_shards_of_a_killed_worker(
        self, compiled, batch
    ):
        model, _, plan = compiled
        with PlanExecutor(model, plan) as ex:
            ref = ex.run(batch)
        with make_pool("process", model, plan, workers=2) as pool:
            np.testing.assert_array_equal(pool.run_sharded(batch), ref)
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            time.sleep(0.1)
            # The dead worker's shards requeue onto the survivors; the
            # forward still returns the exact result.
            np.testing.assert_array_equal(pool.run_sharded(batch), ref)

    def test_sharding_disabled_falls_back_to_whole_forward(
        self, compiled, batch
    ):
        model, _, plan = compiled
        with PlanExecutor(model, plan) as ex:
            ref = ex.run(batch)
        with make_pool("thread", model, plan, workers=2) as pool:
            pool.configure_sharding({})  # explicit override: shard nothing
            np.testing.assert_array_equal(pool.run_sharded(batch), ref)
            assert pool.sharded_forwards == 0
            pool.configure_sharding(None)  # back to the plan's own tables
            np.testing.assert_array_equal(pool.run_sharded(batch), ref)
            assert pool.sharded_forwards == 1

    def test_auto_shard_decisions_are_measured(self, compiled, batch):
        model, _, plan = compiled
        with PlanExecutor(model, plan) as ex:
            ref = ex.run(batch)
        with make_pool("thread", model, plan, workers=2) as pool:
            decisions = pool.auto_shard(max_shards=2, repeats=1)
            assert decisions  # every compiled layer got a measured verdict
            assert all(d.unsharded_s > 0.0 for d in decisions.values())
            chosen = {n for n, d in decisions.items() if d.spec is not None}
            for name in chosen:
                assert decisions[name].speedup >= 1.0
            # Whatever it chose, serving stays bit-identical.
            np.testing.assert_array_equal(pool.run_sharded(batch), ref)


# ---------------------------------------------------------------------- #
# Serving engine: latency mode + telemetry
# ---------------------------------------------------------------------- #
class TestEngineShardedServing:
    def test_submit_shard_true_is_bit_identical(self, compiled, batch):
        model, _, plan = compiled
        with PlanExecutor(model, plan) as ex:
            ref = ex.run(batch)
        with make_pool("thread", model, plan, workers=2) as pool:
            with ServingEngine(pool, max_batch=4, batch_window=0.01) as engine:
                sharded = engine.submit(batch, shard=True)
                plain = engine.submit(batch)
                np.testing.assert_array_equal(sharded.result(timeout=30), ref)
                np.testing.assert_array_equal(plain.result(timeout=30), ref)
                snap = engine.metrics_snapshot()
                assert "tasd_sharded_forwards_total" in snap
                assert "tasd_shard_retries_total" in snap
                assert "tasd_shard_latency_seconds" in snap
                assert "tasd_shard_imbalance_ratio" in snap
                forwards = snap["tasd_sharded_forwards_total"]["series"]
                assert sum(s["value"] for s in forwards) >= 1
                gauges = snap["tasd_shard_imbalance_ratio"]["series"]
                assert gauges and all(s["value"] >= 1.0 for s in gauges)

    def test_shard_requests_are_not_batched_together(self, compiled, batch):
        model, _, plan = compiled
        with PlanExecutor(model, plan) as ex:
            ref = ex.run(batch)
        with make_pool("thread", model, plan, workers=2) as pool:
            with ServingEngine(pool, max_batch=8, batch_window=0.05) as engine:
                futures = [engine.submit(batch, shard=True) for _ in range(3)]
                for f in futures:
                    np.testing.assert_array_equal(f.result(timeout=30), ref)
                # Three latency-mode requests ran as three singleton
                # forwards, never coalesced into one throughput batch.
                assert pool.sharded_forwards == 3

    def test_enable_sharding_requires_a_pool(self, compiled):
        model, _, plan = compiled
        with PlanExecutor(model, plan) as ex:
            with ServingEngine(ex) as engine:
                with pytest.raises(ValueError, match="scatter/gather"):
                    engine.enable_sharding()


# ---------------------------------------------------------------------- #
# Persistence: shard tables survive save/load, tampering is refused
# ---------------------------------------------------------------------- #
class TestShardTablePersistence:
    @pytest.fixture()
    def saved(self, compiled, tmp_path):
        model, _, plan = compiled
        return model, plan, save_plan(plan, tmp_path / "plan.npz")

    def test_tables_round_trip_bit_for_bit(self, saved):
        model, plan, path = saved
        loaded = load_plan(path, model)
        originals = {
            n: lp.shards for n, lp in plan.layers.items() if lp.shards
        }
        assert originals
        for name, spec in originals.items():
            assert loaded.layers[name].shards == spec

    def test_tampered_nnz_budgets_refused(self, saved):
        model, _, path = saved

        def bump_budget(manifest):
            _shard_entry(manifest)["nnz"][0] += 1

        _rewrite_manifest(path, bump_budget)
        with pytest.raises(PlanFormatError, match="stale or tampered"):
            load_plan(path, model)

    def test_stale_row_count_refused(self, saved):
        model, _, path = saved

        def grow_rows(manifest):
            entry = _shard_entry(manifest)
            entry["rows"] += 4
            entry["ranges"][-1][1] += 4  # keep the tiling self-consistent
            entry["nnz"][-1] += 0

        _rewrite_manifest(path, grow_rows)
        with pytest.raises(PlanFormatError, match="stale"):
            load_plan(path, model)

    def test_non_tiling_table_refused(self, saved):
        model, _, path = saved

        def punch_gap(manifest):
            _shard_entry(manifest)["ranges"][0][0] = 1

        _rewrite_manifest(path, punch_gap)
        with pytest.raises(PlanFormatError, match="invalid"):
            load_plan(path, model)
