"""Tests for the plan compiler and the batched executor.

The load-bearing property: a plan-compiled forward is numerically identical
to the uncompiled per-call ``tasd_matmul`` path — compilation changes when
decomposition happens, never what is computed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TASDConfig, tasd_matmul
from repro.nn.layers import Linear
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import OperandCache, PlanExecutor, compile_plan
from repro.tasder.transform import (
    TASDTransform,
    apply_activation_transform,
    apply_weight_transform,
    clear_transform,
)

CFG = TASDConfig.parse("2:4")


@pytest.fixture(scope="module")
def sparse_resnet():
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    return model, transform


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(7).normal(size=(3, 3, 8, 8))


class TestLayerPlanGemm:
    def test_linear_fast_path_matches_tasd_matmul_bitwise(self, rng):
        layer = Linear(32, 16, rng=rng)
        layer.weight.data *= rng.random((16, 32)) < 0.5
        transform = TASDTransform(weight_configs={"linear": CFG})
        plan = compile_plan(layer, transform)
        x = rng.normal(size=(5, 32))
        expected = tasd_matmul(layer.weight.data, x.T, CFG).T + layer.bias.data
        layer.eval()
        plan.install(layer)
        np.testing.assert_array_equal(layer(x), expected)
        plan.uninstall(layer)

    def test_training_mode_ignores_the_plan(self, rng):
        layer = Linear(8, 4, rng=rng)
        plan = compile_plan(layer, TASDTransform(weight_configs={"linear": CFG}))
        plan.install(layer)
        layer.train()
        x = rng.normal(size=(2, 8))
        np.testing.assert_array_equal(layer(x), x @ layer.weight.data.T + layer.bias.data)
        plan.uninstall(layer)

    def test_uninstall_restores_dense_forward(self, rng):
        layer = Linear(8, 4, rng=rng).eval()
        x = rng.normal(size=(2, 8))
        dense = layer(x)
        plan = compile_plan(layer, TASDTransform(weight_configs={"linear": CFG}))
        plan.install(layer)
        assert not np.array_equal(layer(x), dense)  # plan approximates
        plan.uninstall(layer)
        np.testing.assert_array_equal(layer(x), dense)

    @pytest.mark.parametrize("mode", ["compiled", "per_call", "dense"])
    def test_gemm_rejects_wrong_reduction_width(self, rng, mode):
        """A (rows, k-1) input must raise, not be zero-padded into garbage."""
        layer = Linear(32, 16, rng=rng)
        configs = {} if mode == "dense" else {"linear": CFG}
        plan_mode = "per_call" if mode == "per_call" else "compiled"
        plan = compile_plan(layer, TASDTransform(weight_configs=configs), mode=plan_mode)
        lp = plan.layers["linear"]
        assert lp.mode == mode
        with pytest.raises(ValueError, match="'linear'.*rows, 32"):
            lp.gemm(rng.normal(size=(5, 31)))
        with pytest.raises(ValueError, match="'linear'"):
            lp.gemm(rng.normal(size=(5, 33)))
        assert lp.counters.calls == 0  # rejected inputs are never recorded
        assert lp.gemm(rng.normal(size=(5, 32))).shape == (5, 16)

    def test_plan_counters_track_mac_fraction(self, rng):
        layer = Linear(32, 16, rng=rng).eval()
        plan = compile_plan(layer, TASDTransform(weight_configs={"linear": CFG}))
        plan.install(layer)
        layer(rng.normal(size=(4, 32)))
        counters = plan.layers["linear"].counters
        assert counters.calls == 1
        assert counters.mac_fraction == pytest.approx(0.5)
        assert counters.dense_macs == 4 * 32 * 16
        plan.uninstall(layer)


class TestCompiledModelForward:
    def test_matches_effective_weight_path(self, sparse_resnet, batch):
        model, transform = sparse_resnet
        model.eval()
        apply_weight_transform(model, transform.weight_configs)
        reference = model(batch)
        clear_transform(model)
        plan = compile_plan(model, transform)
        with PlanExecutor(model, plan) as executor:
            out = executor.run(batch)
        np.testing.assert_allclose(out, reference, atol=1e-10)

    def test_bitwise_equal_to_per_call_plan(self, sparse_resnet, batch):
        model, transform = sparse_resnet
        compiled = compile_plan(model, transform)
        per_call = compile_plan(model, transform, mode="per_call")
        with PlanExecutor(model, compiled) as executor:
            fast = executor.run(batch)
        with PlanExecutor(model, per_call) as executor:
            slow = executor.run(batch)
        np.testing.assert_array_equal(fast, slow)

    def test_weights_compress_exactly_once(self, sparse_resnet, batch):
        model, transform = sparse_resnet
        cache = OperandCache()
        plan = compile_plan(model, transform, cache=cache)
        n_targets = len(transform.weight_configs)
        assert cache.counters.misses == n_targets
        with PlanExecutor(model, plan) as executor:
            executor.run(batch)
            executor.run(batch)
        # Forwards never touch the compression path again.
        assert cache.counters.misses == n_targets
        # Recompiling against the same cache is all hits.
        compile_plan(model, transform, cache=cache)
        assert cache.counters.hits == n_targets
        assert cache.counters.hit_rate == pytest.approx(0.5)

    def test_untargeted_layers_get_dense_plans(self, sparse_resnet):
        model, transform = sparse_resnet
        plan = compile_plan(model, transform)
        assert plan.layers["head"].mode == "dense"
        assert plan.layers["head"].operand is None
        assert all(
            p.mode == "compiled" for name, p in plan.layers.items() if name != "head"
        )

    def test_activation_configs_match_transform_path(self, sparse_resnet, batch):
        model, _ = sparse_resnet
        names = [name for name, _ in gemm_layers(model)][:4]
        transform = TASDTransform(activation_configs={n: CFG for n in names})
        model.eval()
        apply_activation_transform(model, transform.activation_configs)
        reference = model(batch)
        clear_transform(model)
        plan = compile_plan(model, transform)
        with PlanExecutor(model, plan) as executor:
            out = executor.run(batch)
        np.testing.assert_allclose(out, reference, atol=1e-12)

    def test_executor_stats_aggregate(self, sparse_resnet, batch):
        model, transform = sparse_resnet
        plan = compile_plan(model, transform)
        with PlanExecutor(model, plan) as executor:
            executor.run(batch)
            executor.run(batch)
            stats = executor.stats()
        assert stats.batches == 2
        assert stats.samples == 2 * batch.shape[0]
        assert stats.wall_time > 0.0
        assert 0.4 < stats.total.mac_fraction < 0.6  # 2:4 everywhere but the head
        assert "total" in stats.table()

    def test_plan_summary_mentions_every_layer(self, sparse_resnet):
        model, transform = sparse_resnet
        plan = compile_plan(model, transform)
        text = plan.summary()
        for name in plan.layers:
            assert name in text

    def test_install_rejects_foreign_model(self, sparse_resnet, rng):
        _, transform = sparse_resnet
        model, _ = sparse_resnet
        plan = compile_plan(model, transform)
        other = Linear(8, 4, rng=rng)
        with pytest.raises(KeyError):
            plan.install(other)


class TestTasderCompile:
    def test_compile_from_transform(self, sparse_resnet, batch):
        from repro.nn.data import Dataset
        from repro.tasder import TTC_STC_M4, Tasder

        model, transform = sparse_resnet
        y = np.zeros(len(batch), dtype=int)
        dataset = Dataset(
            x_train=batch, y_train=y, x_eval=batch, y_eval=y, x_calib=batch
        )
        tasder = Tasder(model, dataset, TTC_STC_M4)
        plan = tasder.compile(transform)
        assert set(plan.layers) == {name for name, _ in gemm_layers(model, include_head=True)}
        with PlanExecutor(model, plan) as executor:
            assert executor.run(batch).shape == (len(batch), 10)


class TestActivationCaching:
    def test_activation_views_bypass_cache_by_default(self, sparse_resnet, batch):
        model, _ = sparse_resnet
        transform = TASDTransform(activation_configs={"stem.layers.0": CFG})
        cache = OperandCache()
        plan = compile_plan(model, transform, cache=cache)
        with PlanExecutor(model, plan) as executor:
            executor.run(batch)
            executor.run(batch)
        assert cache.counters.lookups == 0

    def test_cache_activations_opt_in_hits_on_repeats(self, sparse_resnet, batch):
        model, _ = sparse_resnet
        transform = TASDTransform(activation_configs={"stem.layers.0": CFG})
        cache = OperandCache()
        plan = compile_plan(model, transform, cache=cache, cache_activations=True)
        with PlanExecutor(model, plan) as executor:
            executor.run(batch)
            executor.run(batch)  # identical input -> view served from cache
        assert cache.counters.misses == 1
        assert cache.counters.hits == 1


def test_stats_snapshot_survives_reset(sparse_resnet, batch):
    model, transform = sparse_resnet
    with PlanExecutor(model, compile_plan(model, transform)) as executor:
        executor.run(batch)
        snapshot = executor.stats()
        executor.reset_stats()
    assert snapshot.total.calls > 0
    assert snapshot.cache.misses > 0
    assert executor.stats().total.calls == 0


def test_install_clears_applied_transform(sparse_resnet, batch):
    """Installing a plan on a tasder.apply'ed model must not decompose twice."""
    model, _ = sparse_resnet
    name = "stem.layers.0"
    transform = TASDTransform(activation_configs={name: CFG})
    model.eval()
    apply_activation_transform(model, transform.activation_configs)
    plan = compile_plan(model, transform)
    with PlanExecutor(model, plan) as executor:
        layers = dict(gemm_layers(model, include_head=True))
        assert not hasattr(layers[name], "_tasd_original_forward")  # wrapper gone
        out = executor.run(batch)
    # Reference: the transform alone (plan path must match it exactly).
    apply_activation_transform(model, transform.activation_configs)
    reference = model(batch)
    clear_transform(model)
    np.testing.assert_allclose(out, reference, atol=1e-12)
