"""Tests for plan persistence: save/load round trips, digests, tampering.

The load-bearing property: a loaded plan is *the same plan* — bit-identical
served outputs on every backend, preserved autotune choices, operands
re-registered in the cache — and anything that is not the same plan
(drifted weights, tampered artifact) is refused with a clear error, never
loaded approximately.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import TASDConfig
from repro.nn.layers import Linear
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import (
    OperandCache,
    PlanDigestError,
    PlanExecutor,
    PlanFormatError,
    ServingEngine,
    backend_names,
    compile_plan,
    load_plan,
    model_fingerprint,
    save_plan,
)
from repro.runtime.planio import _CHECKSUM_KEY, _MANIFEST_KEY
from repro.tasder.transform import TASDTransform

CFG = TASDConfig.parse("2:4")


@pytest.fixture(scope="module")
def sparse_resnet():
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    return model, transform


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(21).normal(size=(3, 3, 8, 8))


def _npz_dict(path) -> dict[str, np.ndarray]:
    with np.load(path, allow_pickle=False) as data:
        return {k: data[k] for k in data.files}


def _rewrite(path, arrays: dict[str, np.ndarray]) -> None:
    with open(path, "wb") as f:
        np.savez_compressed(f, **arrays)


class TestRoundTrip:
    @pytest.mark.parametrize("backend", backend_names())
    def test_loaded_plan_serves_bit_identical_outputs(
        self, sparse_resnet, batch, tmp_path, backend
    ):
        model, transform = sparse_resnet
        plan = compile_plan(model, transform, backend=backend)
        path = plan.save(tmp_path / f"plan-{backend}.npz")
        loaded = load_plan(path, model)
        with PlanExecutor(model, plan) as executor:
            fresh = executor.run(batch)
        with PlanExecutor(model, loaded) as executor:
            warm = executor.run(batch)
        np.testing.assert_array_equal(warm, fresh)

    def test_backend_choices_and_autotune_preserved(self, sparse_resnet, tmp_path):
        model, transform = sparse_resnet
        plan = compile_plan(model, transform, autotune=True, autotune_repeats=2)
        path = plan.save(tmp_path / "plan.npz")
        loaded = load_plan(path, model)
        assert loaded.backend_choices() == plan.backend_choices()
        for name, lp in plan.layers.items():
            got = loaded.layers[name]
            assert got.backend == lp.backend
            if lp.autotune is None:
                assert got.autotune is None
            else:
                assert got.autotune.backend == lp.autotune.backend
                assert got.autotune.timings == lp.autotune.timings
                assert got.autotune.sample_cols == lp.autotune.sample_cols

    def test_layer_metadata_preserved(self, sparse_resnet, tmp_path):
        model, transform = sparse_resnet
        plan = compile_plan(model, transform)
        loaded = load_plan(plan.save(tmp_path / "plan.npz"), model)
        assert set(loaded.layers) == set(plan.layers)
        assert loaded.mode == plan.mode
        for name, lp in plan.layers.items():
            got = loaded.layers[name]
            assert (got.kind, got.mode) == (lp.kind, lp.mode)
            assert str(got.weight_config) == str(lp.weight_config)
            assert str(got.activation_config) == str(lp.activation_config)
            assert got.activation_axis == lp.activation_axis
            if lp.operand is not None:
                assert got.operand.original_shape == lp.operand.original_shape
                assert got.operand.padded_shape == lp.operand.padded_shape
                for a, b in zip(got.operand.terms, lp.operand.terms):
                    assert a.pattern == b.pattern
                    np.testing.assert_array_equal(a.values, b.values)
                    np.testing.assert_array_equal(a.indices, b.indices)
                for a, b in zip(got.operand.flat_rows, lp.operand.flat_rows):
                    np.testing.assert_array_equal(a, b)
        assert loaded.transform.weight_configs.keys() == transform.weight_configs.keys()

    def test_loaded_operands_reregister_in_cache(self, sparse_resnet, tmp_path):
        model, transform = sparse_resnet
        plan = compile_plan(model, transform)
        path = plan.save(tmp_path / "plan.npz")
        cache = OperandCache()
        loaded = load_plan(path, model, cache=cache)
        assert cache.counters.lookups == 0  # adoption is neither hit nor miss
        recompiled = compile_plan(model, transform, cache=cache)
        assert cache.counters.misses == 0
        assert cache.counters.hits == len(transform.weight_configs)
        name = next(iter(transform.weight_configs))
        assert recompiled.layers[name].operand is loaded.layers[name].operand

    def test_backend_state_rebuilds_lazily(self, sparse_resnet, batch, tmp_path):
        model, transform = sparse_resnet
        plan = compile_plan(model, transform, backend="scatter-csr")
        loaded = load_plan(plan.save(tmp_path / "plan.npz"), model)
        for lp in loaded.layers.values():
            if lp.operand is not None:
                assert lp.operand.backend_states == {}
        with PlanExecutor(model, loaded) as executor:
            executor.run(batch)
        states = [
            lp.operand.backend_states
            for lp in loaded.layers.values()
            if lp.operand is not None
        ]
        assert all("scatter-csr" in s for s in states)

    def test_serving_engine_over_loaded_plan(self, sparse_resnet, tmp_path):
        model, transform = sparse_resnet
        plan = compile_plan(model, transform)
        loaded = load_plan(plan.save(tmp_path / "plan.npz"), model)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 3, 8, 8))
        with PlanExecutor(model, plan) as executor:
            expected = executor.run(x)
        with PlanExecutor(model, loaded) as executor:
            with ServingEngine(executor, max_batch=2) as engine:
                out = engine.infer(x, timeout=60.0)
        np.testing.assert_array_equal(out, expected)

    def test_per_call_plan_round_trips(self, sparse_resnet, batch, tmp_path):
        model, transform = sparse_resnet
        plan = compile_plan(model, transform, mode="per_call")
        loaded = load_plan(plan.save(tmp_path / "plan.npz"), model)
        assert loaded.mode == "per_call"
        with PlanExecutor(model, plan) as executor:
            fresh = executor.run(batch)
        with PlanExecutor(model, loaded) as executor:
            warm = executor.run(batch)
        np.testing.assert_array_equal(warm, fresh)

    def test_warm_cache_keeps_incumbent_operands(self, sparse_resnet, tmp_path):
        """Loading into a cache that already holds the operands must share them.

        The loaded plan keeps the cache's incumbent objects (identity), so a
        later save() of the loaded plan still resolves every digest.
        """
        model, transform = sparse_resnet
        cache = OperandCache()
        plan = compile_plan(model, transform, cache=cache)
        path = plan.save(tmp_path / "plan.npz")
        loaded = load_plan(path, model, cache=cache)
        for name, lp in plan.layers.items():
            if lp.operand is not None:
                assert loaded.layers[name].operand is lp.operand
        loaded.save(tmp_path / "resaved.npz")  # digest_of still resolves

    def test_save_survives_operand_eviction(self, sparse_resnet, batch, tmp_path):
        """Eviction must not block persistence: the digest is recorded on the
        LayerPlan at compile time, not recovered from the cache."""
        model, transform = sparse_resnet
        plan = compile_plan(model, transform, cache=OperandCache(capacity=1))
        path = plan.save(tmp_path / "plan.npz")
        loaded = load_plan(path, model)
        with PlanExecutor(model, plan) as executor:
            fresh = executor.run(batch)
        with PlanExecutor(model, loaded) as executor:
            warm = executor.run(batch)
        np.testing.assert_array_equal(warm, fresh)

    def test_save_plan_function_matches_method(self, sparse_resnet, tmp_path):
        model, transform = sparse_resnet
        plan = compile_plan(model, transform)
        path = save_plan(plan, tmp_path / "plan.npz")
        assert path.exists()
        assert load_plan(path, model).backend_choices() == plan.backend_choices()


class TestRefusals:
    def test_mismatched_weight_digest_refused(self, sparse_resnet, tmp_path):
        model, transform = sparse_resnet
        plan = compile_plan(model, transform)
        path = plan.save(tmp_path / "plan.npz")
        original = model.head.weight.data.copy()
        model.head.weight.data[0, 0] += 1.0
        try:
            with pytest.raises(PlanDigestError, match="head"):
                load_plan(path, model)
        finally:
            model.head.weight.data = original
        load_plan(path, model)  # restored weights load again

    def test_model_with_extra_gemm_layer_refused(self, sparse_resnet, tmp_path, rng):
        """A model that *gained* a GEMM layer since the save must be refused.

        Per-layer digests all match, so only the whole-model fingerprint
        catches it — otherwise the new layer would serve silently unplanned.
        """
        model, transform = sparse_resnet
        path = compile_plan(model, transform).save(tmp_path / "plan.npz")
        model.extra = Linear(4, 4, rng=rng)
        try:
            with pytest.raises(PlanDigestError, match="extra"):
                load_plan(path, model)
        finally:
            del model.extra
        load_plan(path, model)  # original layer set loads again

    def test_foreign_model_refused(self, sparse_resnet, tmp_path, rng):
        model, transform = sparse_resnet
        path = compile_plan(model, transform).save(tmp_path / "plan.npz")
        with pytest.raises(PlanDigestError, match="lacks"):
            load_plan(path, Linear(8, 4, rng=rng))

    def test_tampered_manifest_refused(self, sparse_resnet, tmp_path):
        model, transform = sparse_resnet
        path = compile_plan(model, transform).save(tmp_path / "plan.npz")
        arrays = _npz_dict(path)
        manifest = json.loads(bytes(arrays[_MANIFEST_KEY]).decode())
        manifest["layers"][0]["backend"] = "dense-emulation"
        arrays[_MANIFEST_KEY] = np.frombuffer(
            json.dumps(manifest, sort_keys=True).encode(), dtype=np.uint8
        )
        _rewrite(path, arrays)
        with pytest.raises(PlanFormatError, match="checksum"):
            load_plan(path, model)

    def test_tampered_array_refused(self, sparse_resnet, tmp_path):
        model, transform = sparse_resnet
        path = compile_plan(model, transform).save(tmp_path / "plan.npz")
        arrays = _npz_dict(path)
        key = next(k for k in arrays if k.endswith(".values"))
        tampered = arrays[key].copy()
        tampered.flat[0] += 1.0
        arrays[key] = tampered
        _rewrite(path, arrays)
        with pytest.raises(PlanFormatError, match="digest mismatch"):
            load_plan(path, model)

    def test_not_a_plan_artifact_refused(self, sparse_resnet, tmp_path):
        model, _ = sparse_resnet
        path = tmp_path / "random.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(PlanFormatError, match="missing manifest"):
            load_plan(path, model)

    def test_garbage_bytes_refused_not_crashed(self, sparse_resnet, tmp_path):
        """Arbitrary bytes must raise PlanFormatError, not a raw numpy error."""
        model, _ = sparse_resnet
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(PlanFormatError, match="cannot read plan artifact"):
            load_plan(path, model)

    def test_truncated_artifact_refused_not_crashed(self, sparse_resnet, tmp_path):
        model, transform = sparse_resnet
        path = compile_plan(model, transform).save(tmp_path / "plan.npz")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(PlanFormatError):
            load_plan(path, model)

    def test_missing_artifact_raises_file_not_found(self, sparse_resnet, tmp_path):
        """A missing path is the caller's error, not a bad artifact."""
        model, _ = sparse_resnet
        with pytest.raises(FileNotFoundError):
            load_plan(tmp_path / "never-saved.npz", model)

    def test_unsupported_version_refused(self, sparse_resnet, tmp_path):
        from repro.runtime.planio import _manifest_checksum

        model, transform = sparse_resnet
        path = compile_plan(model, transform).save(tmp_path / "plan.npz")
        arrays = _npz_dict(path)
        manifest = json.loads(bytes(arrays[_MANIFEST_KEY]).decode())
        manifest["version"] = 999
        manifest_bytes = json.dumps(manifest, sort_keys=True).encode()
        arrays[_MANIFEST_KEY] = np.frombuffer(manifest_bytes, dtype=np.uint8)
        arrays[_CHECKSUM_KEY] = np.frombuffer(
            _manifest_checksum(manifest_bytes).encode(), dtype=np.uint8
        )
        _rewrite(path, arrays)
        with pytest.raises(PlanFormatError, match="version"):
            load_plan(path, model)

    def test_unregistered_backend_in_artifact_refused(self, sparse_resnet, tmp_path):
        """An artifact recording a plugin backend this process lacks must not
        escape as a raw KeyError from LayerPlan construction."""
        from repro.runtime.planio import _manifest_checksum

        model, transform = sparse_resnet
        path = compile_plan(model, transform).save(tmp_path / "plan.npz")
        arrays = _npz_dict(path)
        manifest = json.loads(bytes(arrays[_MANIFEST_KEY]).decode())
        compiled = next(e for e in manifest["layers"] if e["mode"] == "compiled")
        compiled["backend"] = "gpu-plugin-kernel"
        manifest_bytes = json.dumps(manifest, sort_keys=True).encode()
        arrays[_MANIFEST_KEY] = np.frombuffer(manifest_bytes, dtype=np.uint8)
        arrays[_CHECKSUM_KEY] = np.frombuffer(
            _manifest_checksum(manifest_bytes).encode(), dtype=np.uint8
        )
        _rewrite(path, arrays)
        with pytest.raises(PlanFormatError, match="not registered"):
            load_plan(path, model)

    def test_failed_save_preserves_existing_artifact(
        self, sparse_resnet, tmp_path, monkeypatch
    ):
        """A crash mid-save must never destroy the good artifact in place."""
        import repro.runtime.planio as planio

        model, transform = sparse_resnet
        plan = compile_plan(model, transform)
        path = plan.save(tmp_path / "plan.npz")
        good_bytes = path.read_bytes()

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(planio.np, "savez_compressed", explode)
        with pytest.raises(OSError, match="disk full"):
            plan.save(path)
        monkeypatch.undo()
        assert path.read_bytes() == good_bytes
        assert not list(tmp_path.glob(".*.tmp-*"))  # temp file cleaned up
        load_plan(path, model)

    def test_forged_manifest_with_missing_keys_refused(self, sparse_resnet, tmp_path):
        """A manifest rewritten (checksum recomputed) without required keys
        must refuse cleanly, not crash with a raw KeyError."""
        from repro.runtime.planio import _manifest_checksum

        model, transform = sparse_resnet
        path = compile_plan(model, transform).save(tmp_path / "plan.npz")
        arrays = _npz_dict(path)
        manifest = json.loads(bytes(arrays[_MANIFEST_KEY]).decode())
        for entry in manifest["layers"]:
            del entry["weight_digest"]
        manifest_bytes = json.dumps(manifest, sort_keys=True).encode()
        arrays[_MANIFEST_KEY] = np.frombuffer(manifest_bytes, dtype=np.uint8)
        arrays[_CHECKSUM_KEY] = np.frombuffer(
            _manifest_checksum(manifest_bytes).encode(), dtype=np.uint8
        )
        _rewrite(path, arrays)
        with pytest.raises(PlanFormatError, match="malformed"):
            load_plan(path, model)

    def test_save_without_digest_or_resident_operand_refused(
        self, sparse_resnet, tmp_path
    ):
        """The reverse-lookup fallback fails clearly when nothing records
        the source-weight digest (hand-built plan, empty cache)."""
        import dataclasses

        model, transform = sparse_resnet
        plan = compile_plan(model, transform)
        name = next(n for n, lp in plan.layers.items() if lp.mode == "compiled")
        plan.layers[name] = dataclasses.replace(plan.layers[name], weight_digest=None)
        plan.cache = OperandCache()  # empty: reverse lookup cannot resolve
        with pytest.raises(PlanFormatError, match="cannot persist"):
            plan.save(tmp_path / "plan.npz")


def test_model_fingerprint_tracks_weights(sparse_resnet):
    model, _ = sparse_resnet
    before = model_fingerprint(model)
    assert before == model_fingerprint(model)  # deterministic
    original = model.head.weight.data.copy()
    model.head.weight.data[0, 0] += 1.0
    try:
        assert model_fingerprint(model) != before
    finally:
        model.head.weight.data = original
    assert model_fingerprint(model) == before
