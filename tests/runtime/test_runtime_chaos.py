"""Fault-injection tests: the recovery paths normal traffic never runs.

Every test here breaks the serving system on purpose — with the
:mod:`repro.runtime.chaos` injectors — and asserts the documented
recovery contract: dead workers respawn (bounded by the circuit
breaker), in-flight batches retry without the client noticing, poison
inputs are isolated from their batchmates by splitting, deadlines and
admission control shed work typed-ly, and a collapsed pool degrades the
engine onto the in-process fallback instead of going down.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.core import TASDConfig
from repro.nn import Linear, Sequential
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import (
    ChaosMonkey,
    ChaosSpec,
    DeadlineExceeded,
    PlanExecutor,
    PlanSwapError,
    PoolDegradedError,
    ProcessWorkerPool,
    QueueFull,
    ServingEngine,
    SwapRejected,
    WorkerCrashError,
    compile_plan,
    is_poisoned,
    poison_batch,
    skewed_plan,
)
from repro.tasder.transform import TASDTransform

CFG = TASDConfig.parse("2:4")

# Fast supervision knobs for tests: detect and respawn within tens of ms.
FAST = dict(respawn_backoff=0.01, backoff_cap=0.1, health_interval=0.05)


def _small_model():
    model = Sequential(Linear(32, 48), Linear(48, 16))
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    return model, transform


@pytest.fixture(scope="module")
def compiled():
    model, transform = _small_model()
    plan = compile_plan(model, transform)
    return model, plan


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(7).normal(size=(2, 32))


@pytest.fixture(scope="module")
def reference(compiled, batch):
    model, plan = compiled
    return PlanExecutor(model, plan).install().run(batch)


def _wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# --------------------------------------------------------------------- #
# Worker-side injectors (ChaosSpec)
# --------------------------------------------------------------------- #
class TestChaosSpec:
    def test_crash_on_nth_raises_typed_crash_error(self, compiled, batch):
        model, plan = compiled
        pool = ProcessWorkerPool(
            model, plan, workers=1, chaos=ChaosSpec(crash_on_nth=2), respawn=False
        )
        with pool:
            pool.install()
            pool.run(batch)  # first request survives
            with pytest.raises(WorkerCrashError, match="died mid-request"):
                pool.run(batch)
            assert pool.deaths == 1

    def test_respawned_worker_serves_bit_identical(self, compiled, batch, reference):
        model, plan = compiled
        pool = ProcessWorkerPool(
            model, plan, workers=1, chaos=ChaosSpec(crash_on_nth=3), respawn=True, **FAST
        )
        with pool:
            pool.install()
            assert np.array_equal(pool.run(batch), reference)
            assert np.array_equal(pool.run(batch), reference)
            with pytest.raises(WorkerCrashError):
                pool.run(batch)  # this worker's third request kills it
            assert _wait_until(lambda: pool.respawns >= 1 and len(pool.worker_pids()) == 1)
            # The respawned worker counts its own requests from 1 again.
            assert np.array_equal(pool.run(batch), reference)

    def test_hang_detected_by_request_timeout(self, compiled, batch, reference):
        model, plan = compiled
        pool = ProcessWorkerPool(
            model,
            plan,
            workers=1,
            chaos=ChaosSpec(hang_on_nth=3, hang_seconds=30.0),
            request_timeout=0.3,
            respawn=True,
            **FAST,
        )
        with pool:
            pool.install()
            pool.run(batch)
            pool.run(batch)
            with pytest.raises(WorkerCrashError, match="missed its 0.3s reply deadline"):
                pool.run(batch)
            # The wedged worker was retired and replaced; its successor's
            # request counter starts fresh, so serving resumes.
            assert _wait_until(lambda: pool.respawns >= 1 and len(pool.worker_pids()) == 1)
            assert np.array_equal(pool.run(batch), reference)

    def test_slow_worker_still_correct(self, compiled, batch, reference):
        model, plan = compiled
        pool = ProcessWorkerPool(
            model, plan, workers=1, chaos=ChaosSpec(slow_seconds=0.05), respawn=False
        )
        with pool:
            pool.install()
            assert np.array_equal(pool.run(batch), reference)
            assert pool.deaths == 0

    def test_die_on_start_fails_install_without_leaking_children(self, compiled):
        model, plan = compiled
        pool = ProcessWorkerPool(
            model, plan, workers=2, chaos=ChaosSpec(die_on_start=True), respawn=False
        )
        with pytest.raises(RuntimeError, match="died during startup"):
            pool.install()
        assert multiprocessing.active_children() == []
        assert pool._store is None  # shared segment unlinked on failure

    def test_hang_on_start_trips_start_timeout_and_cleans_up(self, compiled):
        model, plan = compiled
        pool = ProcessWorkerPool(
            model,
            plan,
            workers=2,
            chaos=ChaosSpec(hang_on_start=30.0),
            start_timeout=0.3,
            respawn=False,
        )
        with pytest.raises(RuntimeError, match="did not report ready within"):
            pool.install()
        assert multiprocessing.active_children() == []
        assert pool._store is None

    def test_poison_marker_roundtrip(self, batch):
        marked = poison_batch(batch)
        assert is_poisoned(marked)
        assert not is_poisoned(batch)
        assert marked is not batch  # original request left untouched


# --------------------------------------------------------------------- #
# Engine-level recovery: retries, splitting, fallback
# --------------------------------------------------------------------- #
class TestEngineRecovery:
    def test_worker_crash_is_invisible_to_clients(self, compiled, batch, reference):
        model, plan = compiled
        pool = ProcessWorkerPool(
            model, plan, workers=2, chaos=ChaosSpec(crash_on_nth=3), respawn=True, **FAST
        )
        with pool:
            with ServingEngine(pool, workers=2, max_batch=2, max_retries=3) as engine:
                outputs = [engine.infer(batch, timeout=60.0) for _ in range(12)]
                assert all(np.array_equal(y, reference) for y in outputs)
                report = engine.report()
                assert len(report.requests) == 12
                retried = [s for s in report.requests if s.attempts > 1]
                assert retried, "crashes happened but no request recorded a retry"
            assert pool.deaths >= 1
            assert pool.respawns >= 1

    def test_poison_request_isolated_from_batchmates(self, compiled, batch, reference):
        model, plan = compiled
        pool = ProcessWorkerPool(
            model,
            plan,
            workers=2,
            chaos=ChaosSpec(),  # poison marker active, no other faults
            respawn=True,
            max_respawns=20,
            **FAST,
        )
        with pool:
            engine = ServingEngine(
                pool, workers=1, max_batch=4, batch_window=0.2, max_retries=1
            )
            with engine:
                good = [engine.submit(batch) for _ in range(2)]
                bad = engine.submit(poison_batch(batch))
                more = engine.submit(batch)
                for f in good + [more]:
                    assert np.array_equal(f.result(timeout=60.0), reference)
                with pytest.raises(WorkerCrashError):
                    bad.result(timeout=60.0)
                # The survivors record the retries/splitting as extra attempts.
                stats = engine.report().requests
                assert len(stats) == 3  # the three non-poison requests
                assert max(s.attempts for s in stats) >= 2
        assert pool.deaths >= 1

    def test_breaker_collapse_degrades_to_in_process_fallback(
        self, compiled, batch, reference
    ):
        model, plan = compiled
        pool = ProcessWorkerPool(
            model,
            plan,
            workers=1,
            chaos=ChaosSpec(crash_on_nth=1),  # every request kills its worker
            respawn=True,
            max_respawns=2,
            respawn_window=60.0,
            **FAST,
        )
        with pool:
            with ServingEngine(pool, workers=1, max_batch=2, max_retries=8) as engine:
                y = engine.infer(batch, timeout=60.0)  # survives via the fallback
                assert np.array_equal(y, reference)
                assert _wait_until(lambda: pool.degraded)
                ok, detail = engine.healthz()
                assert ok  # degraded still scrapes 200
                assert detail["status"] == "degraded"
                assert detail["fallback_active"]
                # Later traffic goes straight to the fallback executor.
                assert np.array_equal(engine.infer(batch, timeout=60.0), reference)
                snap = engine.metrics_snapshot()
                assert snap["tasd_serve_degraded"]["series"][0]["value"] == 1.0
                assert (
                    snap["tasd_serve_fallback_batches_total"]["series"][0]["value"] >= 1
                )

    def test_respawn_disabled_all_dead_degrades(self, compiled, batch, reference):
        model, plan = compiled
        pool = ProcessWorkerPool(
            model, plan, workers=2, respawn=False, health_interval=0.05
        )
        with pool:
            with ServingEngine(pool, workers=1, max_batch=2) as engine:
                assert np.array_equal(engine.infer(batch, timeout=60.0), reference)
                for pid in pool.worker_pids():
                    os.kill(pid, signal.SIGKILL)
                assert _wait_until(lambda: pool.degraded)
                assert np.array_equal(engine.infer(batch, timeout=60.0), reference)
                ok, detail = engine.healthz()
                assert ok and detail["status"] == "degraded"

    def test_degraded_pool_without_fallback_fails_typed(self, compiled, batch):
        model, plan = compiled
        pool = ProcessWorkerPool(
            model, plan, workers=1, respawn=False, health_interval=0.05
        )
        with pool:
            with ServingEngine(pool, workers=1, fallback="none") as engine:
                engine.infer(batch, timeout=60.0)
                for pid in pool.worker_pids():
                    os.kill(pid, signal.SIGKILL)
                assert _wait_until(lambda: pool.degraded)
                with pytest.raises((PoolDegradedError, WorkerCrashError)):
                    engine.infer(batch, timeout=60.0)
                ok, detail = engine.healthz()
                assert not ok
                assert detail["status"] == "dead"


# --------------------------------------------------------------------- #
# External kills (ChaosMonkey): the acceptance scenario
# --------------------------------------------------------------------- #
class TestChaosMonkey:
    def test_kill_one_targets_live_worker(self, compiled):
        model, plan = compiled
        pool = ProcessWorkerPool(model, plan, workers=2, respawn=False)
        with pool:
            pool.install()
            monkey = ChaosMonkey(pool)
            victim = monkey.kill_one()
            assert victim is not None
            assert monkey.kills == 1
        assert ChaosMonkey(pool).kill_one() is None  # closed pool: nothing to kill

    def test_kills_under_load_are_invisible_and_pool_recovers(
        self, compiled, batch, reference
    ):
        model, plan = compiled
        pool = ProcessWorkerPool(
            model,
            plan,
            workers=2,
            respawn=True,
            max_respawns=50,
            respawn_window=60.0,
            **FAST,
        )
        with pool:
            with ServingEngine(pool, workers=2, max_batch=2, max_retries=4) as engine:
                monkey = ChaosMonkey(pool)
                outputs = []
                for i in range(30):
                    if i % 5 == 0:
                        monkey.kill_one()  # SIGKILL a live worker mid-stream
                    outputs.append(engine.infer(batch, timeout=60.0))
                assert monkey.kills >= 5
                # Zero client-visible failures, bit-identical outputs.
                assert all(np.array_equal(y, reference) for y in outputs)
            # The supervisor returns the pool to its configured size.
            assert _wait_until(lambda: len(pool.worker_pids()) == 2)
            assert pool.respawns >= monkey.kills - pool.workers  # bounded bookkeeping
            ok, _ = ServingEngine(pool).healthz()  # engine stopped -> dead is fine


# --------------------------------------------------------------------- #
# Deadlines, admission control, cancellation
# --------------------------------------------------------------------- #
class TestDeadlinesAndAdmission:
    def test_expired_deadline_dropped_before_dispatch(self, compiled, batch):
        model, plan = compiled
        with ServingEngine(PlanExecutor(model, plan), workers=1) as engine:
            future = engine.submit(batch, deadline=1e-4)
            time.sleep(0.02)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=30.0)
            trace = engine.traces()[-1]
            assert trace.error is not None and "DeadlineExceeded" in trace.error
            snap = engine.metrics_snapshot()
            assert (
                snap["tasd_serve_deadline_exceeded_total"]["series"][0]["value"] >= 1
            )

    def test_deadline_zero_or_negative_rejected(self, compiled, batch):
        model, plan = compiled
        with ServingEngine(PlanExecutor(model, plan), workers=1) as engine:
            with pytest.raises(ValueError, match="deadline must be positive"):
                engine.submit(batch, deadline=0.0)

    def test_unexpired_deadline_serves_normally(self, compiled, batch, reference):
        model, plan = compiled
        with ServingEngine(PlanExecutor(model, plan), workers=1) as engine:
            y = engine.infer(batch, timeout=30.0, deadline=30.0)
            assert np.array_equal(y, reference)

    def test_queue_full_sheds_typed(self, compiled, batch):
        model, plan = compiled

        class SlowPool(PlanExecutor):
            def run(self, x):
                time.sleep(0.1)
                return super().run(x)

        engine = ServingEngine(
            SlowPool(model, plan), workers=1, max_batch=1, max_queue=2
        )
        with engine:
            with pytest.raises(QueueFull, match="max_queue bound"):
                for _ in range(40):  # 1 in flight + 2 queued, the rest must shed
                    engine.submit(batch)
            snap = engine.metrics_snapshot()
            assert snap["tasd_serve_queue_rejected_total"]["series"][0]["value"] >= 1

    def test_timed_out_infer_is_cancelled_not_computed(self, compiled, batch):
        model, plan = compiled
        served = multiprocessing.Value("i", 0)  # process-safe is overkill; fine

        class SlowCountingPool(PlanExecutor):
            def run(self, x):
                time.sleep(0.15)
                with served.get_lock():
                    served.value += x.shape[0] // batch.shape[0]
                return super().run(x)

        engine = ServingEngine(
            SlowCountingPool(model, plan), workers=1, max_batch=1
        )
        with engine:
            engine.submit(batch)  # occupies the worker
            with pytest.raises(TimeoutError):
                engine.infer(batch, timeout=0.01)  # gives up while still queued
            time.sleep(0.5)  # let the loop drain
        # Only the first request was computed; the abandoned one was skipped.
        assert served.value == 1
        cancelled = [t for t in engine.traces() if t.error == "cancelled"]
        assert len(cancelled) == 1

    def test_max_queue_validation(self, compiled):
        model, plan = compiled
        with pytest.raises(ValueError, match="max_queue"):
            ServingEngine(PlanExecutor(model, plan), max_queue=0)
        with pytest.raises(ValueError, match="max_retries"):
            ServingEngine(PlanExecutor(model, plan), max_retries=-1)
        with pytest.raises(ValueError, match="fallback"):
            ServingEngine(PlanExecutor(model, plan), fallback="bogus")


def _recompiled_plan(model):
    """A fresh compilation over the live model's weights (swap candidate)."""
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    return compile_plan(model, transform)


class TestSwapUnderChaos:
    """A hot plan-swap must absorb worker deaths mid-rollout: either the
    roll completes (casualty after the canary verdict) or it rolls back
    (casualty before it) — never a stranded request, never a leaked
    shared-memory segment, never a half-swapped fleet."""

    def test_worker_killed_mid_swap_rolls_back_cleanly(
        self, compiled, batch, reference
    ):
        # Every worker exits the instant its first swap command arrives,
        # so the roll can never obtain a canary verdict: typed rejection,
        # the candidate's segment is unlinked, the old plan keeps serving,
        # and the supervisor heals the casualties.
        model, plan = compiled
        candidate = _recompiled_plan(model)
        spec = ChaosSpec(die_on_swap=True, die_on_nth_swap=1)
        with ProcessWorkerPool(
            model, plan, workers=2, chaos=spec, max_respawns=50, **FAST
        ) as pool:
            np.testing.assert_allclose(pool.run(batch), reference)
            segments_before = (
                set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None
            )
            with pytest.raises(PlanSwapError):
                pool.swap_plan(
                    candidate,
                    canary=lambda run: np.testing.assert_allclose(
                        run(batch), reference
                    ),
                )
            if segments_before is not None:
                leaked = set(os.listdir("/dev/shm")) - segments_before
                assert not leaked, f"swap leaked shm segments: {leaked}"
            assert pool.plan is plan
            assert _wait_until(lambda: len(pool.worker_pids()) == 2)
            np.testing.assert_allclose(pool.run(batch), reference)

    def test_swap_completes_when_worker_dies_after_canary(
        self, compiled, batch, reference, monkeypatch
    ):
        # The casualty falls *after* the canary validated the new plan:
        # the roll continues over the survivors, commits, and the
        # supervisor respawns the dead worker from the *committed* spec.
        model, plan = compiled
        candidate = _recompiled_plan(model)
        with ProcessWorkerPool(
            model, plan, workers=3, max_respawns=50, **FAST
        ) as pool:
            np.testing.assert_allclose(pool.run(batch), reference)
            real = pool._swap_one
            rolled = []

            def chaotic(worker, spec):
                rolled.append(spec)
                if len(rolled) == 2 and spec is rolled[0]:
                    # SIGKILL the second worker the (forward) roll reaches.
                    os.kill(worker.process.pid, signal.SIGKILL)
                    worker.process.join(timeout=5.0)
                return real(worker, spec)

            monkeypatch.setattr(pool, "_swap_one", chaotic)
            swapped = pool.swap_plan(
                candidate,
                canary=lambda run: np.testing.assert_allclose(run(batch), reference),
            )
            assert swapped == 2  # canary worker + third worker; casualty skipped
            assert pool.plan is candidate
            assert _wait_until(lambda: len(pool.worker_pids()) == 3)
            np.testing.assert_allclose(pool.run(batch), reference)

    def test_poisoned_artifact_rejected_while_serving(
        self, compiled, batch, reference
    ):
        # A corrupt artifact that passes the weight-identity gate must die
        # at the canary, with requests flowing before, during, and after.
        model, plan = compiled
        bad = skewed_plan(_recompiled_plan(model))
        with ProcessWorkerPool(model, plan, workers=2, **FAST) as pool:
            with ServingEngine(pool, max_batch=2, workers=2) as engine:
                futures = [engine.submit(batch) for _ in range(8)]
                with pytest.raises(SwapRejected) as excinfo:
                    engine.swap_plan(bad)
                assert "diverge" in excinfo.value.reason
                futures += [engine.submit(batch) for _ in range(8)]
                for f in futures:
                    np.testing.assert_allclose(f.result(timeout=120.0), reference)
                assert pool.plan is plan
