"""Tests for the worker-pool execution substrate.

The contract: every pool behind the :class:`WorkerPool` seam is
observationally identical to a :class:`PlanExecutor` over the same
compiled plan — bit-identical outputs, merged counters — whether workers
are threads sharing the process or child processes attached to the plan
through shared memory.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import (
    OperandCache,
    PlanExecutor,
    ProcessWorkerPool,
    ServingEngine,
    SharedOperandStore,
    ThreadWorkerPool,
    WorkerPool,
    attach_plan,
    compile_plan,
    exact_backend_names,
    make_pool,
    retune_plan,
    share_plan,
)
from repro.tasder.transform import TASDTransform

CFG = TASDConfig.parse("2:4")


def _sparse_model():
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    return model, transform


@pytest.fixture(scope="module")
def compiled():
    model, transform = _sparse_model()
    plan = compile_plan(model, transform)
    return model, transform, plan


@pytest.fixture()
def batch():
    return np.random.default_rng(33).normal(size=(2, 3, 8, 8))


# ---------------------------------------------------------------------- #
# Shared operand store
# ---------------------------------------------------------------------- #
class TestSharedOperandStore:
    def test_roundtrip_and_readonly(self, rng):
        arrays = {
            "a": rng.normal(size=(7, 5)),
            "b": (rng.random((3, 4, 2)) * 255).astype(np.uint8),
            "c": np.arange(11, dtype=np.int64),
        }
        store, refs = SharedOperandStore.create(arrays)
        try:
            attached = SharedOperandStore.attach(store.name)
            try:
                for key, a in arrays.items():
                    view = attached.get(refs[key])
                    np.testing.assert_array_equal(view, a)
                    assert view.dtype == a.dtype
                    assert not view.flags.writeable
            finally:
                attached.close()
        finally:
            store.unlink()

    def test_get_after_close_refuses(self, rng):
        store, refs = SharedOperandStore.create({"a": rng.normal(size=(2, 2))})
        store.unlink()
        with pytest.raises(ValueError, match="closed"):
            store.get(refs["a"])

    def test_unlink_idempotent(self, rng):
        store, _ = SharedOperandStore.create({"a": rng.normal(size=(2, 2))})
        store.unlink()
        store.unlink()


# ---------------------------------------------------------------------- #
# share_plan / attach_plan
# ---------------------------------------------------------------------- #
class TestShareAttachPlan:
    def test_attached_plan_serves_bit_identically(self, compiled, batch):
        model, _, plan = compiled
        with PlanExecutor(model, plan) as ex:
            ref = ex.run(batch)
        store, spec = share_plan(plan)
        try:
            attached, worker_store = attach_plan(spec)
            assert attached.backend_choices() == plan.backend_choices()
            with PlanExecutor(model, attached) as ex:
                out = ex.run(batch)
            np.testing.assert_array_equal(out, ref)
            if worker_store is not None:
                worker_store.close()
        finally:
            if store is not None:
                store.unlink()

    def test_attached_operands_are_zero_copy_views(self, compiled):
        _, _, plan = compiled
        store, spec = share_plan(plan)
        assert store is not None  # POSIX shm exists on the test platforms
        try:
            attached, worker_store = attach_plan(spec)
            operand = next(
                lp.operand for lp in attached.layers.values() if lp.operand is not None
            )
            # Term values and their flat tables share the segment's buffer
            # (the flat value table is a reshape of the term values).
            for term, flat in zip(operand.terms, operand.flat_values):
                assert flat.base is not None
                assert not term.values.flags.writeable
            worker_store.close()
        finally:
            store.unlink()

    def test_attach_adopts_into_cache(self, compiled):
        _, _, plan = compiled
        store, spec = share_plan(plan)
        try:
            cache = OperandCache()
            attached, worker_store = attach_plan(spec, cache=cache)
            for name, lp in attached.layers.items():
                if lp.operand is not None:
                    assert cache.digest_of(lp.operand) == lp.weight_digest
            if worker_store is not None:
                worker_store.close()
        finally:
            if store is not None:
                store.unlink()

    def test_inline_fallback_when_shm_unavailable(self, compiled, batch, monkeypatch):
        model, _, plan = compiled
        monkeypatch.setattr(
            SharedOperandStore,
            "create",
            classmethod(lambda cls, arrays: (_ for _ in ()).throw(OSError("no shm"))),
        )
        # lint: disable=shm-lifecycle — create() is monkeypatched to raise,
        # so no segment exists; the returned store is asserted None below
        store, spec = share_plan(plan)
        assert store is None
        assert spec["segment"] is None and spec["inline"]
        attached, worker_store = attach_plan(spec)
        assert worker_store is None
        with PlanExecutor(model, plan) as ex:
            ref = ex.run(batch)
        with PlanExecutor(model, attached) as ex:
            out = ex.run(batch)
        np.testing.assert_array_equal(out, ref)


# ---------------------------------------------------------------------- #
# Process pool
# ---------------------------------------------------------------------- #
class TestProcessWorkerPool:
    def test_outputs_bit_identical_to_plan_executor(self, compiled, batch):
        model, _, plan = compiled
        with PlanExecutor(model, plan) as ex:
            ref = ex.run(batch)
        with ProcessWorkerPool(model, plan, workers=2) as pool:
            outs = pool.run_many([batch] * 4)
        for out in outs:
            np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("backend", exact_backend_names())
    def test_exact_backends_bit_identical_to_thread_pool(self, batch, backend):
        model, transform = _sparse_model()
        plan = compile_plan(model, transform, backend=backend)
        with ThreadWorkerPool(model, plan, workers=2) as tpool:
            ref = tpool.run_many([batch] * 2)
        with ProcessWorkerPool(model, plan, workers=2) as ppool:
            out = ppool.run_many([batch] * 2)
        for a, b in zip(ref, out):
            np.testing.assert_array_equal(b, a)

    def test_stats_merge_across_processes(self, compiled, batch):
        model, _, plan = compiled
        with ProcessWorkerPool(model, plan, workers=2) as pool:
            pool.run_many([batch] * 5)
            stats = pool.stats()
        assert stats.batches == 5
        assert stats.samples == 10
        assert all(c.calls == 5 for c in stats.layers.values())
        assert stats.total.structured_macs > 0
        assert stats.wall_time > 0
        # Workers report their observed GEMM widths; merged like counters.
        observed = stats.observed_cols()
        assert observed and all(w > 0 for w in observed.values())

    def test_reset_stats(self, compiled, batch):
        model, _, plan = compiled
        with ProcessWorkerPool(model, plan, workers=2) as pool:
            pool.run(batch)
            pool.reset_stats()
            stats = pool.stats()
            assert stats.batches == 0 and stats.samples == 0
            assert all(c.calls == 0 for c in stats.layers.values())
            # Counters keep accumulating correctly after the reset.
            pool.run(batch)
            assert pool.stats().batches == 1
            assert all(c.calls == 1 for c in pool.stats().layers.values())

    def test_stats_survive_close_and_reinstall_merges(self, compiled, batch):
        model, _, plan = compiled
        pool = ProcessWorkerPool(model, plan, workers=2)
        with pool:
            pool.run_many([batch] * 3)
        stats = pool.stats()
        assert stats.batches == 3
        assert all(c.calls == 3 for c in stats.layers.values())
        pool.run(batch)  # lazy reinstall: a fresh worker generation
        stats = pool.stats()
        assert stats.batches == 4
        assert all(c.calls == 4 for c in stats.layers.values())
        pool.close()
        pool.close()  # idempotent

    def test_worker_error_propagates(self, compiled, batch):
        model, _, plan = compiled
        bad = np.zeros((2, 7, 8, 8))  # wrong channel count: forward must fail
        with ProcessWorkerPool(model, plan, workers=1) as pool:
            with pytest.raises(Exception):
                pool.run(bad)
            # The worker survives a failed request and keeps serving.
            out = pool.run(batch)
            assert out.shape == (2, 10)

    def test_worker_error_carries_remote_traceback(self, compiled):
        from repro.runtime import RemoteTraceback

        model, _, plan = compiled
        bad = np.zeros((2, 7, 8, 8))
        with ProcessWorkerPool(model, plan, workers=1) as pool:
            with pytest.raises(Exception) as excinfo:
                pool.run(bad)
            # The child's formatted stack rides the pipe and is chained into
            # the re-raised exception, so serving failures stay debuggable.
            cause = excinfo.value.__cause__
            assert isinstance(cause, RemoteTraceback)
            assert "Traceback (most recent call last)" in str(cause)

    def test_source_model_untouched_and_segment_cleaned(self, compiled, batch):
        model, _, plan = compiled
        pool = ProcessWorkerPool(model, plan, workers=1)
        with pool:
            pool.run(batch)
            segment = pool._store.name if pool._store is not None else None
            for _, layer in gemm_layers(model, include_head=True):
                assert layer.compiled_plan is None
        if segment is not None:
            with pytest.raises(FileNotFoundError):
                SharedOperandStore.attach(segment)

    def test_serving_engine_with_process_pool(self, compiled):
        model, _, plan = compiled
        rng = np.random.default_rng(44)
        inputs = [rng.normal(size=(1, 3, 8, 8)) for _ in range(8)]
        with PlanExecutor(model, plan) as ex:
            singles = [ex.run(x) for x in inputs]
        with ProcessWorkerPool(model, plan, workers=2) as pool:
            with ServingEngine(pool, max_batch=3, batch_window=0.01, workers=2) as engine:
                futures = [engine.submit(x) for x in inputs]
                outputs = [f.result(timeout=120.0) for f in futures]
        assert engine.report().count == 8
        # Micro-batching changes the GEMM width, so allclose (same tolerance
        # as the thread-pool serving tests).
        for single, served in zip(singles, outputs):
            np.testing.assert_allclose(served, single, atol=1e-12)

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_context(self, compiled, batch):
        model, _, plan = compiled
        with PlanExecutor(model, plan) as ex:
            ref = ex.run(batch)
        with ProcessWorkerPool(model, plan, workers=1, mp_context="spawn") as pool:
            np.testing.assert_array_equal(pool.run(batch), ref)

    def test_invalid_workers_and_context(self, compiled):
        model, _, plan = compiled
        with pytest.raises(ValueError, match="workers"):
            ProcessWorkerPool(model, plan, workers=0)
        with pytest.raises(ValueError, match="start method"):
            ProcessWorkerPool(model, plan, workers=1, mp_context="nonsense")


# ---------------------------------------------------------------------- #
# Seam / factory
# ---------------------------------------------------------------------- #
class TestWorkerPoolSeam:
    def test_make_pool_kinds(self, compiled):
        model, _, plan = compiled
        assert isinstance(make_pool("thread", model, plan, workers=2), ThreadWorkerPool)
        assert isinstance(make_pool("process", model, plan, workers=2), ProcessWorkerPool)
        with pytest.raises(ValueError, match="pool kind"):
            make_pool("fiber", model, plan)

    def test_every_executor_is_a_worker_pool(self, compiled):
        model, _, plan = compiled
        assert isinstance(PlanExecutor(model, plan), WorkerPool)
        assert isinstance(ThreadWorkerPool(model, plan), WorkerPool)
        assert isinstance(ProcessWorkerPool(model, plan), WorkerPool)


# ---------------------------------------------------------------------- #
# Autotune on observed serving shapes
# ---------------------------------------------------------------------- #
class TestObservedShapeAutotune:
    def test_gemm_records_observed_cols(self, compiled, batch):
        model, transform = _sparse_model()
        plan = compile_plan(model, transform)
        with PlanExecutor(model, plan) as ex:
            ex.run(batch)
            observed = ex.stats().observed_cols()
        assert observed
        # The head sees the flattened batch; conv layers see im2col widths.
        assert observed["head"] == batch.shape[0]

    def test_observed_cols_most_frequent_wins(self, compiled):
        model, transform = _sparse_model()
        plan = compile_plan(model, transform)
        with PlanExecutor(model, plan) as ex:
            for _ in range(2):
                ex.run(np.zeros((1, 3, 8, 8)))
            ex.run(np.zeros((4, 3, 8, 8)))
            observed = ex.stats().observed_cols()
        assert observed["head"] == 1  # served twice vs once

    def test_compile_plan_uses_observed_cols(self):
        model, transform = _sparse_model()
        name = next(iter(transform.weight_configs))
        plan = compile_plan(
            model,
            transform,
            autotune=True,
            autotune_repeats=1,
            observed_cols={name: 7},
        )
        assert plan.layers[name].autotune.sample_cols == 7
        other = next(n for n in transform.weight_configs if n != name)
        assert plan.layers[other].autotune.sample_cols == 32  # the default

    def test_retune_plan_updates_choices_in_place(self, batch):
        model, transform = _sparse_model()
        plan = compile_plan(model, transform)
        with PlanExecutor(model, plan) as ex:
            ex.run(batch)
            observed = ex.stats().observed_cols()
        choices = retune_plan(plan, observed, repeats=1)
        assert choices == plan.backend_choices()
        for name, lp in plan.layers.items():
            if lp.mode == "compiled":
                assert lp.autotune is not None
                assert lp.autotune.sample_cols == observed.get(name, 32)
                assert lp.backend == lp.autotune.backend

    def test_counter_snapshot_is_isolated(self, compiled, batch):
        model, transform = _sparse_model()
        plan = compile_plan(model, transform)
        with PlanExecutor(model, plan) as ex:
            ex.run(batch)
            snap = ex.stats()
            before = dict(snap.layers["head"].col_widths)
            ex.run(np.zeros((5, 3, 8, 8)))
            assert snap.layers["head"].col_widths == before  # no aliasing
