"""Zero-downtime operations: hot plan-swap, graceful drain, elastic resize.

The serving engine promises that a plan upgrade is invisible to clients:
a canary batch validates the candidate on one worker before the fleet
rolls, any mismatch (wrong weights, corrupt arithmetic, crash, latency
blow-up) raises a typed :class:`SwapRejected` with the old plan still
serving, and a committed swap changes *nothing* observable — the exact
backends make swapped outputs bit-identical.  Drain is the same promise
at shutdown: everything admitted finishes, everything late is rejected
typed-ly.  These tests pin all of it, plus the exact queue-depth counter
that replaced the approximate ``Queue.qsize()`` read.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import TASDConfig
from repro.nn import Linear, Sequential
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import (
    DeadlineExceeded,
    PlanExecutor,
    ProcessWorkerPool,
    QueueFull,
    ServingEngine,
    SwapRejected,
    ThreadWorkerPool,
    compile_plan,
    load_plan,
    plan_fingerprint,
    save_plan,
    skewed_plan,
)
from repro.tasder.transform import TASDTransform

CFG = TASDConfig.parse("2:4")

# Fast supervision knobs: detect worker faults within tens of ms.
FAST = dict(respawn_backoff=0.01, backoff_cap=0.1, health_interval=0.05)


def _small_model():
    model = Sequential(Linear(32, 48), Linear(48, 16))
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    return model, transform


@pytest.fixture(scope="module")
def compiled():
    model, transform = _small_model()
    plan = compile_plan(model, transform)
    return model, plan


@pytest.fixture(scope="module")
def candidate(compiled):
    """A second, independently compiled plan over the *same* weights.

    Exact backends make it compute bit-for-bit the same function as the
    live plan — the stand-in for a re-tuned/re-laid-out artifact rollout.
    """
    model, _ = compiled
    _, transform = _small_model()
    return compile_plan(model, transform)


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(7).normal(size=(4, 32))


@pytest.fixture(scope="module")
def reference(compiled, batch):
    model, plan = compiled
    return PlanExecutor(model, plan).install().run(batch)


def _foreign_plan():
    """A plan compiled from genuinely different weights (fingerprint mismatch)."""
    model, _ = _small_model()
    next(iter(model.parameters())).data += 0.01
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    return compile_plan(model, transform)


# --------------------------------------------------------------------- #
# Executor-level swap: PlanExecutor, ThreadWorkerPool, ProcessWorkerPool
# --------------------------------------------------------------------- #
class TestExecutorSwap:
    def test_plan_executor_swap_commits(self, compiled, candidate, batch, reference):
        model, plan = compiled
        with PlanExecutor(model, plan) as executor:
            before = executor.run(batch)
            ran = []
            swapped = executor.swap_plan(
                candidate, canary=lambda run: ran.append(run(batch))
            )
            assert swapped == 1 and len(ran) == 1
            assert executor.plan is candidate
            np.testing.assert_array_equal(executor.run(batch), before)

    def test_plan_executor_swap_rolls_back_on_canary_failure(
        self, compiled, candidate, batch, reference
    ):
        model, plan = compiled
        with PlanExecutor(model, plan) as executor:

            def failing_canary(run):
                run(batch)
                raise AssertionError("canary says no")

            with pytest.raises(AssertionError):
                executor.swap_plan(candidate, canary=failing_canary)
            assert executor.plan is plan
            np.testing.assert_allclose(executor.run(batch), reference)

    def test_thread_pool_swap_rolls_every_replica(
        self, compiled, candidate, batch, reference
    ):
        model, plan = compiled
        with ThreadWorkerPool(model, plan, workers=3) as pool:
            before = pool.run(batch)
            assert pool.swap_plan(
                candidate,
                canary=lambda run: np.testing.assert_allclose(run(batch), reference),
            ) == 3
            assert pool.plan is candidate
            np.testing.assert_array_equal(pool.run(batch), before)

    def test_thread_pool_swap_validates_before_touching_replicas(
        self, compiled, batch, reference
    ):
        model, plan = compiled
        with ThreadWorkerPool(model, plan, workers=2) as pool:
            bad = skewed_plan(plan)
            with pytest.raises(AssertionError):
                pool.swap_plan(
                    bad,
                    canary=lambda run: np.testing.assert_allclose(
                        run(batch), reference
                    ),
                )
            assert pool.plan is plan
            np.testing.assert_allclose(pool.run(batch), reference)

    def test_process_pool_swap_rolls_all_workers_and_releases_old_segment(
        self, compiled, candidate, batch, reference
    ):
        model, plan = compiled
        with ProcessWorkerPool(model, plan, workers=2, **FAST) as pool:
            before = pool.run(batch)
            old_store = pool._store
            swapped = pool.swap_plan(
                candidate,
                canary=lambda run: np.testing.assert_allclose(run(batch), reference),
            )
            assert swapped == 2
            assert pool.plan is candidate
            assert pool._store is not old_store
            np.testing.assert_array_equal(pool.run(batch), before)

    def test_process_pool_swap_rolls_back_on_canary_rejection(
        self, compiled, batch, reference
    ):
        model, plan = compiled
        with ProcessWorkerPool(model, plan, workers=2, **FAST) as pool:
            pool.run(batch)
            old_store = pool._store
            with pytest.raises(AssertionError):
                pool.swap_plan(
                    skewed_plan(plan),
                    canary=lambda run: np.testing.assert_allclose(
                        run(batch), reference
                    ),
                )
            assert pool.plan is plan
            assert pool._store is old_store
            np.testing.assert_allclose(pool.run(batch), reference)


# --------------------------------------------------------------------- #
# Engine-level swap: canary gate, typed rejection, rollback accounting
# --------------------------------------------------------------------- #
class TestEngineSwap:
    def test_swap_under_load_zero_failures_bit_identical(
        self, compiled, candidate, batch
    ):
        """The tentpole scenario: a hot swap mid-stream changes nothing."""
        model, plan = compiled
        rng = np.random.default_rng(21)
        inputs = [rng.normal(size=(2, 32)) for _ in range(40)]
        with PlanExecutor(model, plan) as executor:
            expected = [executor.run(x) for x in inputs]
        # max_batch == the per-request sample count pins batch composition:
        # every request computes exactly the GEMM the reference ran, so
        # bit-identity across the swap is well-defined.
        with ProcessWorkerPool(model, plan, workers=2, **FAST) as pool:
            with ServingEngine(
                pool, max_batch=2, batch_window=0.01, workers=2
            ) as engine:
                futures = [engine.submit(x) for x in inputs[:20]]
                info = engine.swap_plan(candidate, canary=batch)
                futures += [engine.submit(x) for x in inputs[20:]]
                outputs = [f.result(timeout=120.0) for f in futures]
        assert info["swapped_workers"] == 2
        assert info["canary_samples"] == batch.shape[0]
        for i, (got, want) in enumerate(zip(outputs, expected)):
            np.testing.assert_array_equal(
                got, want, err_msg=f"request {i} diverged across the hot swap"
            )

    def test_skewed_plan_is_rejected_and_old_plan_keeps_serving(
        self, compiled, candidate, batch, reference
    ):
        model, plan = compiled
        with ProcessWorkerPool(model, plan, workers=2, **FAST) as pool:
            with ServingEngine(pool, max_batch=4, workers=2) as engine:
                np.testing.assert_allclose(engine.infer(batch), reference)
                bad = skewed_plan(candidate)
                # The corrupt copy carries the same weight fingerprint — it
                # gets past the identity gate and must die at the canary.
                assert plan_fingerprint(bad) == plan_fingerprint(plan)
                with pytest.raises(SwapRejected) as excinfo:
                    engine.swap_plan(bad)
                assert "diverge" in excinfo.value.reason
                assert pool.plan is plan
                np.testing.assert_allclose(engine.infer(batch), reference)
                snap = engine.metrics_snapshot()
                assert (
                    snap["tasd_swap_rollbacks_total"]["series"][0]["value"] >= 1.0
                )
                assert snap["tasd_plan_swaps_total"]["series"][0]["value"] == 0.0

    def test_wrong_weights_artifact_rejected_by_fingerprint_gate(
        self, compiled, batch
    ):
        model, plan = compiled
        with PlanExecutor(model, plan) as executor:
            with ServingEngine(executor, max_batch=4) as engine:
                engine.infer(batch)
                with pytest.raises(SwapRejected) as excinfo:
                    engine.swap_plan(_foreign_plan())
                assert "different weights" in excinfo.value.reason
                assert executor.plan is plan

    def test_swap_from_saved_artifact_path(
        self, compiled, candidate, batch, reference, tmp_path
    ):
        model, plan = compiled
        path = str(tmp_path / "candidate.npz")
        save_plan(candidate, path)
        with PlanExecutor(model, plan) as executor:
            with ServingEngine(executor, max_batch=4) as engine:
                engine.infer(batch)
                info = engine.swap_plan(path)
                assert info["swapped_workers"] == 1
                np.testing.assert_allclose(engine.infer(batch), reference)

    def test_swap_from_missing_or_corrupt_artifact_is_typed(
        self, compiled, batch, tmp_path
    ):
        model, plan = compiled
        with PlanExecutor(model, plan) as executor:
            with ServingEngine(executor, max_batch=4) as engine:
                engine.infer(batch)
                with pytest.raises(SwapRejected):
                    engine.swap_plan(str(tmp_path / "missing.npz"))
                corrupt = tmp_path / "corrupt.npz"
                corrupt.write_bytes(b"not an artifact")
                with pytest.raises(SwapRejected):
                    engine.swap_plan(str(corrupt))
                assert executor.plan is plan

    def test_swap_without_canary_batch_is_rejected(self, compiled, candidate):
        model, plan = compiled
        with PlanExecutor(model, plan) as executor:
            with ServingEngine(executor, max_batch=4) as engine:
                # No request served yet and no canary= passed: nothing to
                # validate the candidate against.
                with pytest.raises(SwapRejected) as excinfo:
                    engine.swap_plan(candidate)
                assert "canary" in excinfo.value.reason

    def test_committed_swap_increments_swap_counter(
        self, compiled, candidate, batch
    ):
        model, plan = compiled
        with PlanExecutor(model, plan) as executor:
            with ServingEngine(executor, max_batch=4) as engine:
                engine.infer(batch)
                engine.swap_plan(candidate)
                snap = engine.metrics_snapshot()
                assert snap["tasd_plan_swaps_total"]["series"][0]["value"] == 1.0

    def test_loaded_artifact_roundtrip_matches_fingerprint(
        self, compiled, candidate, tmp_path
    ):
        model, _ = compiled
        path = str(tmp_path / "fp.npz")
        save_plan(candidate, path)
        loaded = load_plan(path, model)
        assert plan_fingerprint(loaded) == plan_fingerprint(candidate)


# --------------------------------------------------------------------- #
# Graceful drain + the exact queue-depth counter
# --------------------------------------------------------------------- #
class _GatedExecutor(PlanExecutor):
    """A PlanExecutor whose forwards block until the test opens the gate."""

    def __init__(self, model, plan):
        super().__init__(model, plan)
        self.gate = threading.Event()
        self.gate.set()

    def run(self, x):
        self.gate.wait(timeout=30.0)
        return super().run(x)


def _wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestDrainAndDepth:
    def test_drain_finishes_admitted_work_then_rejects_typed(
        self, compiled, batch, reference
    ):
        model, plan = compiled
        executor = _GatedExecutor(model, plan).install()
        engine = ServingEngine(executor, max_batch=1, batch_window=0.0, workers=1)
        engine.start()
        executor.gate.clear()
        futures = [engine.submit(batch) for _ in range(4)]
        _wait_until(lambda: engine.queue_depth >= 3)

        drained: list = []
        drainer = threading.Thread(
            target=lambda: drained.append(engine.drain(timeout=30.0))
        )
        drainer.start()
        assert _wait_until(lambda: engine.healthz()[1]["status"] == "draining")
        # The door is closed the moment drain begins...
        with pytest.raises(QueueFull):
            engine.submit(batch)
        # ...but everything already admitted still finishes.
        executor.gate.set()
        drainer.join(timeout=60.0)
        assert drained == [True]
        for f in futures:
            np.testing.assert_allclose(f.result(timeout=1.0), reference)
        assert engine.queue_depth == 0
        assert not engine.running
        with pytest.raises(QueueFull):
            engine.submit(batch)
        snap = engine.metrics_snapshot()
        assert snap["tasd_serve_drain_seconds"]["series"][0]["count"] == 1

    def test_drain_timeout_reports_false_with_work_pending(self, compiled, batch):
        model, plan = compiled
        executor = _GatedExecutor(model, plan).install()
        engine = ServingEngine(executor, max_batch=1, batch_window=0.0, workers=1)
        engine.start()
        executor.gate.clear()
        future = engine.submit(batch)
        try:
            assert engine.drain(timeout=0.05) is False
        finally:
            executor.gate.set()
            future.result(timeout=30.0)

    def test_queue_depth_counter_is_exact(self, compiled, batch, reference):
        model, plan = compiled
        executor = _GatedExecutor(model, plan).install()
        with ServingEngine(
            executor, max_batch=1, batch_window=0.0, workers=1
        ) as engine:
            assert engine.queue_depth == 0
            executor.gate.clear()
            futures = [engine.submit(batch) for _ in range(5)]
            # One request is held by the (blocked) worker; the other four
            # wait in the queue — the counter must say exactly that.
            assert _wait_until(lambda: engine.queue_depth == 4)
            snap = engine.metrics_snapshot()
            assert snap["tasd_serve_queue_depth"]["series"][0]["value"] == 4.0
            executor.gate.set()
            for f in futures:
                np.testing.assert_allclose(f.result(timeout=60.0), reference)
            assert _wait_until(lambda: engine.queue_depth == 0)

    def test_admission_bound_reads_the_exact_counter(self, compiled, batch):
        model, plan = compiled
        executor = _GatedExecutor(model, plan).install()
        with ServingEngine(
            executor, max_batch=1, batch_window=0.0, workers=1, max_queue=2
        ) as engine:
            executor.gate.clear()
            blocker = engine.submit(batch)
            _wait_until(lambda: engine.queue_depth == 0)
            queued = [engine.submit(batch), engine.submit(batch)]
            with pytest.raises(QueueFull):
                engine.submit(batch)
            executor.gate.set()
            for f in [blocker, *queued]:
                f.result(timeout=60.0)

    def test_stop_skips_cancelled_and_expired_leftovers(
        self, compiled, batch, reference
    ):
        model, plan = compiled
        executor = _GatedExecutor(model, plan).install()
        engine = ServingEngine(executor, max_batch=1, batch_window=0.0, workers=1)
        engine.start()
        executor.gate.clear()
        blocker = engine.submit(batch)
        _wait_until(lambda: engine.queue_depth == 0)
        cancelled = engine.submit(batch)
        expired = engine.submit(batch, deadline=0.01)
        survivor = engine.submit(batch)
        _wait_until(lambda: engine.queue_depth == 3)
        cancelled.cancel()
        time.sleep(0.03)  # let the deadline lapse while still queued

        stopper = threading.Thread(target=engine.stop)
        stopper.start()
        executor.gate.set()
        stopper.join(timeout=60.0)
        assert not stopper.is_alive()

        np.testing.assert_allclose(blocker.result(timeout=1.0), reference)
        assert cancelled.cancelled()
        with pytest.raises(DeadlineExceeded):
            expired.result(timeout=1.0)
        # The survivor is real work: stop() computes it instead of
        # throwing it away.
        np.testing.assert_allclose(survivor.result(timeout=1.0), reference)
        assert engine.queue_depth == 0
