"""Tests for the replica-parallel executor.

The contract: a :class:`ReplicaExecutor` is observationally identical to a
:class:`PlanExecutor` over the same compiled plan — bit-identical outputs,
merged counters — while never touching the source model and never holding
a lock across a forward.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import (
    PlanExecutor,
    ReplicaExecutor,
    ServingEngine,
    compile_plan,
)
from repro.tasder.transform import TASDTransform

CFG = TASDConfig.parse("2:4")


@pytest.fixture(scope="module")
def compiled():
    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, 0.6)
    transform = TASDTransform(
        weight_configs={name: CFG for name, _ in gemm_layers(model)}
    )
    plan = compile_plan(model, transform)
    return model, plan


@pytest.fixture()
def batch():
    return np.random.default_rng(21).normal(size=(2, 3, 8, 8))


def test_outputs_bit_identical_to_plan_executor(compiled, batch):
    model, plan = compiled
    with PlanExecutor(model, plan) as ex:
        ref = ex.run(batch)
    with ReplicaExecutor(model, plan, replicas=3) as rex:
        outs = rex.run_many([batch] * 4)
    for out in outs:
        np.testing.assert_array_equal(out, ref)


def test_source_model_is_never_modified(compiled, batch):
    model, plan = compiled
    with ReplicaExecutor(model, plan, replicas=2) as rex:
        rex.run(batch)
        for _, layer in gemm_layers(model, include_head=True):
            assert layer.compiled_plan is None
    # ... and the model still trains/evaluates uncompiled afterwards.
    assert model(batch).shape == (2, 10)


def test_replicas_share_weight_storage(compiled):
    model, plan = compiled
    rex = ReplicaExecutor(model, plan, replicas=2).install()
    try:
        replica = rex._pool.get()
        for src, dst in zip(model.parameters(), replica.parameters()):
            assert dst.data is src.data
        rex._pool.put(replica)
    finally:
        rex.close()


def test_stats_merge_across_replicas(compiled, batch):
    model, plan = compiled
    with ReplicaExecutor(model, plan, replicas=3) as rex:
        rex.run_many([batch] * 5)
        stats = rex.stats()
    assert stats.batches == 5
    assert stats.samples == 10
    # Every layer was called exactly once per batch, regardless of which
    # replica served it.
    assert all(c.calls == 5 for c in stats.layers.values())
    assert stats.total.structured_macs > 0
    assert stats.wall_time > 0


def test_reset_stats(compiled, batch):
    model, plan = compiled
    with ReplicaExecutor(model, plan, replicas=2) as rex:
        rex.run(batch)
        rex.reset_stats()
        stats = rex.stats()
    assert stats.batches == 0 and stats.samples == 0
    assert all(c.calls == 0 for c in stats.layers.values())


def test_stats_survive_close(compiled, batch):
    """Post-close stats keep the accumulated counters, like PlanExecutor."""
    model, plan = compiled
    rex = ReplicaExecutor(model, plan, replicas=2)
    with rex:
        rex.run_many([batch] * 3)
    stats = rex.stats()
    assert stats.batches == 3
    assert all(c.calls == 3 for c in stats.layers.values())
    # A fresh generation after reinstall merges on top of the old counters.
    rex.run(batch)
    stats = rex.stats()
    assert stats.batches == 4
    assert all(c.calls == 4 for c in stats.layers.values())
    rex.close()


def test_run_racing_close_never_hangs(compiled, batch):
    """run() overlapping close() must resolve (reinstall), not block forever."""
    model, plan = compiled
    rex = ReplicaExecutor(model, plan, replicas=2)
    rex.install()
    results = []

    def hammer():
        for _ in range(3):
            results.append(rex.run(batch))

    threads = [threading.Thread(target=hammer) for _ in range(3)]
    for t in threads:
        t.start()
    rex.close()  # races the hammer threads on purpose
    for t in threads:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads)
    assert len(results) == 9
    for out in results:
        assert out.shape == (2, 10)
    rex.close()


def test_lazy_install_and_reinstall_after_close(compiled, batch):
    model, plan = compiled
    rex = ReplicaExecutor(model, plan, replicas=2)
    out = rex.run(batch)  # installs lazily, like PlanExecutor.run
    assert out.shape == (2, 10)
    rex.close()
    out2 = rex.run(batch)  # close() then run() reinstalls
    np.testing.assert_array_equal(out2, out)
    rex.close()
    rex.close()  # idempotent


def test_concurrent_runs_are_consistent(compiled, batch):
    """Hammer the pool from more threads than replicas; results must match."""
    model, plan = compiled
    with PlanExecutor(model, plan) as ex:
        ref = ex.run(batch)
    results = [None] * 8
    with ReplicaExecutor(model, plan, replicas=3) as rex:
        def work(i):
            results[i] = rex.run(batch)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = rex.stats()
    for out in results:
        np.testing.assert_array_equal(out, ref)
    assert stats.batches == 8
    assert all(c.calls == 8 for c in stats.layers.values())


def test_serving_engine_with_replica_workers(compiled):
    model, plan = compiled
    rng = np.random.default_rng(22)
    inputs = [rng.normal(size=(1, 3, 8, 8)) for _ in range(12)]
    with PlanExecutor(model, plan) as ex:
        singles = [ex.run(x) for x in inputs]
    with ReplicaExecutor(model, plan, replicas=4) as rex:
        with ServingEngine(rex, max_batch=3, batch_window=0.01, workers=4) as engine:
            futures = [engine.submit(x) for x in inputs]
            outputs = [f.result(timeout=60.0) for f in futures]
    report = engine.report()
    assert report.count == 12
    # Micro-batching changes the GEMM width, so this is allclose rather than
    # bitwise (same tolerance as the single-executor serving tests).
    for single, served in zip(singles, outputs):
        np.testing.assert_allclose(served, single, atol=1e-12)


def test_invalid_replica_count(compiled):
    model, plan = compiled
    with pytest.raises(ValueError, match="replicas"):
        ReplicaExecutor(model, plan, replicas=0)
