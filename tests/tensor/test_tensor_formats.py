"""Tests for unstructured sparse storage formats (repro.tensor.formats)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tensor.formats import (
    best_format,
    bitmap_decode,
    bitmap_encode,
    coo_decode,
    coo_encode,
    csr_decode,
    csr_encode,
    format_bits,
)
from repro.tensor.random import sparse_normal


@pytest.mark.parametrize("density", [0.0, 0.05, 0.5, 1.0])
@pytest.mark.parametrize(
    "encode,decode",
    [(csr_encode, csr_decode), (bitmap_encode, bitmap_decode), (coo_encode, coo_decode)],
)
def test_roundtrip_exact(density, encode, decode):
    x = sparse_normal((16, 32), density=density, seed=3)
    assert np.array_equal(decode(encode(x)), x)


class TestSizeModels:
    def test_dense_matrix_compresses_badly(self):
        x = sparse_normal((32, 64), density=1.0, seed=0)
        sizes = format_bits(x)
        assert sizes["csr"] > sizes["dense"]
        assert sizes["coo"] > sizes["dense"]

    def test_sparse_matrix_compresses_well(self):
        x = sparse_normal((32, 64), density=0.05, seed=0)
        name, ratio = best_format(x)
        assert ratio < 0.25

    def test_bitmap_wins_at_moderate_density(self):
        """Around 50 % density the bitmap beats index-based formats."""
        x = sparse_normal((64, 64), density=0.5, seed=1)
        sizes = format_bits(x)
        assert sizes["bitmap"] < sizes["csr"]
        assert sizes["bitmap"] < sizes["coo"]

    def test_dstc_metadata_factor_is_fair(self):
        """The DSTC model's 1.5x-of-kept-values traffic factor should be a
        reasonable summary of the real formats at workload densities."""
        for density in (0.05, 0.3, 0.5):
            x = sparse_normal((64, 128), density=density, seed=2)
            kept_bits = np.count_nonzero(x) * 16
            _, ratio = best_format(x)
            actual_factor = ratio * x.size * 16 / max(1, kept_bits)
            assert 1.0 <= actual_factor < 2.4

    def test_empty_matrix(self):
        x = np.zeros((4, 8))
        for encode, decode in (
            (csr_encode, csr_decode), (bitmap_encode, bitmap_decode), (coo_encode, coo_decode)
        ):
            assert np.array_equal(decode(encode(x)), x)


@given(st.integers(min_value=0, max_value=2**31 - 1), st.floats(min_value=0.0, max_value=1.0))
def test_property_all_formats_roundtrip(seed, density):
    x = sparse_normal((8, 16), density=density, seed=seed)
    assert np.array_equal(csr_decode(csr_encode(x)), x)
    assert np.array_equal(bitmap_decode(bitmap_encode(x)), x)
    assert np.array_equal(coo_decode(coo_encode(x)), x)
