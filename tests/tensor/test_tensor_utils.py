"""Tests for the sparse tensor substrate (repro.tensor)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.patterns import NMPattern, is_pattern_legal, pattern_view
from repro.tensor import (
    activation_like,
    blocks_along_axis,
    collect_stats,
    crop_to_shape,
    pad_to_multiple,
    per_block_nnz_histogram,
    pseudo_density,
    random_nm_legal,
    sparse_matrix,
    sparse_normal,
    sparse_uniform,
)


class TestBlocks:
    def test_pad_noop_when_aligned(self, rng):
        x = rng.normal(size=(3, 8))
        assert pad_to_multiple(x, 4) is x

    def test_pad_and_crop_roundtrip(self, rng):
        x = rng.normal(size=(3, 7))
        padded = pad_to_multiple(x, 4)
        assert padded.shape == (3, 8)
        assert np.array_equal(crop_to_shape(padded, x.shape), x)

    def test_pad_other_axis(self, rng):
        x = rng.normal(size=(5, 3))
        assert pad_to_multiple(x, 4, axis=0).shape == (8, 3)

    def test_padding_preserves_views(self, rng):
        """Zero padding must never change which elements a view keeps."""
        x = rng.normal(size=(4, 12))
        p = NMPattern(2, 8)
        padded_view = pattern_view(pad_to_multiple(x, 8), p)
        assert np.array_equal(crop_to_shape(padded_view, x.shape)[:, :8], pattern_view(x[:, :8], p))

    def test_blocks_along_axis(self):
        assert blocks_along_axis(16, 4) == 4
        assert blocks_along_axis(17, 4) == 5

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            pad_to_multiple(np.zeros((2, 2)), 0)
        with pytest.raises(ValueError):
            blocks_along_axis(4, 0)
        with pytest.raises(ValueError):
            crop_to_shape(np.zeros((2, 2)), (2,))


class TestRandomGenerators:
    @pytest.mark.parametrize("d", [0.1, 0.5, 0.9])
    def test_density_approximate(self, d):
        x = sparse_uniform((200, 200), density=d, seed=0)
        measured = np.count_nonzero(x) / x.size
        assert measured == pytest.approx(d, abs=0.02)

    def test_normal_distribution_params(self):
        x = sparse_normal((500, 500), density=1.0, std=1 / 3, seed=1)
        assert np.std(x) == pytest.approx(1 / 3, abs=0.01)

    def test_sparse_matrix_dispatch(self):
        assert sparse_matrix(8, 8, 0.5, "uniform", seed=0).shape == (8, 8)
        assert sparse_matrix(8, 8, 0.5, "normal", seed=0).shape == (8, 8)
        with pytest.raises(ValueError):
            sparse_matrix(8, 8, 0.5, "cauchy", seed=0)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            sparse_uniform((4, 4), density=1.5)

    def test_random_nm_legal_exact(self, rng):
        x = random_nm_legal(16, 64, 2, 4, seed=rng)
        assert is_pattern_legal(x, NMPattern(2, 4))
        # exactly n non-zeros per block
        blocks = x.reshape(16, 16, 4)
        assert np.all(np.count_nonzero(blocks, axis=-1) == 2)

    def test_random_nm_legal_bad_cols(self):
        with pytest.raises(ValueError):
            random_nm_legal(4, 10, 2, 4)

    def test_activation_like_relu_sparsity(self):
        x = activation_like((100, 100), kind="relu", seed=0)
        assert 0.45 < (1 - np.count_nonzero(x) / x.size) < 0.55
        assert np.all(x >= 0)

    def test_activation_like_gelu_dense(self):
        x = activation_like((100, 100), kind="gelu", seed=0)
        assert np.count_nonzero(x) / x.size > 0.99

    def test_activation_like_unknown(self):
        with pytest.raises(ValueError):
            activation_like((4, 4), kind="step")

    def test_determinism(self):
        a = sparse_uniform((16, 16), 0.5, seed=7)
        b = sparse_uniform((16, 16), 0.5, seed=7)
        assert np.array_equal(a, b)


class TestStats:
    def test_collect_stats_basic(self):
        x = np.array([[1.0, 0.0, -2.0, 0.0]])
        s = collect_stats(x)
        assert s.nnz == 2
        assert s.sparsity == 0.5
        assert s.max_abs == 2.0
        assert s.magnitude_sum == 3.0

    def test_pseudo_density_uniform_magnitudes(self):
        """Equal magnitudes: need ≈ target fraction of elements."""
        x = np.ones(1000)
        assert pseudo_density(x, 0.99) == pytest.approx(0.99, abs=0.01)

    def test_pseudo_density_skewed(self):
        """One huge value dominating: tiny pseudo-density."""
        x = np.concatenate([[1e6], np.full(999, 1e-3)])
        assert pseudo_density(x, 0.99) < 0.01

    def test_pseudo_density_zero_tensor(self):
        assert pseudo_density(np.zeros(10)) == 0.0

    def test_pseudo_density_invalid_target(self):
        with pytest.raises(ValueError):
            pseudo_density(np.ones(4), 0.0)

    def test_gelu_pseudo_density_below_one(self):
        """The Section 4.3 premise: GELU tensors are dense (density ≈ 1)
        yet their pseudo-density sits meaningfully below 1 — the magnitude
        skew the TASD-A heuristic exploits."""
        x = activation_like((200, 200), kind="gelu", seed=3)
        real_density = np.count_nonzero(x) / x.size
        assert real_density > 0.99
        pd = pseudo_density(x, 0.99)
        assert pd < 0.92
        # lower preservation targets expose the skew much more strongly
        assert pseudo_density(x, 0.90) < 0.60

    def test_histogram_matches_binomial_mean(self):
        x = sparse_uniform((100, 400), density=0.5, seed=0)
        hist = per_block_nnz_histogram(x, m=8)
        assert hist.sum() == 100 * 50
        mean_nnz = np.average(np.arange(9), weights=hist)
        assert mean_nnz == pytest.approx(4.0, abs=0.1)


@given(st.floats(min_value=0.05, max_value=0.95), st.integers(min_value=0, max_value=2**31 - 1))
def test_property_pseudo_density_bounds(target, seed):
    x = np.random.default_rng(seed).normal(size=200)
    pd = pseudo_density(x, max(0.01, min(1.0, target)))
    assert 0.0 < pd <= 1.0
