"""Tests for im2col, attention, blocks, models and the training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    MultiHeadSelfAttention,
    SGD,
    conv_gemm_shape,
    conv_out_size,
    col2im,
    cross_entropy,
    evaluate_accuracy,
    im2col,
    predict_logits,
    synthetic_images,
    synthetic_tokens,
    train_classifier,
)
from repro.nn.blocks import BasicBlock, BottleneckBlock, ConvNeXtBlock, TransformerEncoderBlock
from repro.nn.models import MLP, bert_mini, convnext_tiny, resnet18, resnet50, vgg11, vit_tiny

from test_nn_layers import check_input_grad  # same-directory helper import


class TestIm2col:
    def test_out_size(self):
        assert conv_out_size(8, 3, 1, 1) == 8
        assert conv_out_size(8, 3, 2, 1) == 4
        with pytest.raises(ValueError):
            conv_out_size(2, 5, 1, 0)

    def test_im2col_identity_kernel(self, rng):
        """k=1, s=1: columns are just the channel vectors per position."""
        x = rng.normal(size=(2, 3, 4, 4))
        cols, (oh, ow) = im2col(x, kernel=1)
        assert (oh, ow) == (4, 4)
        assert np.allclose(cols.reshape(2, 4, 4, 3), x.transpose(0, 2, 3, 1))

    def test_im2col_col2im_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols, _ = im2col(x, 3, stride=1, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_gemm_shape_table4_l1(self):
        """Table 4's L1 comes from a 3x3 conv on 28x28 with 128 channels."""
        gs = conv_gemm_shape(1, 128, 28, 28, 128, 3, 1, 1)
        assert (gs.m, gs.k, gs.n) == (784, 1152, 128)
        assert str(gs) == "M784-N128-K1152"


class TestAttention:
    def test_forward_shape(self, rng):
        attn = MultiHeadSelfAttention(16, 4, rng=rng)
        assert attn(rng.normal(size=(2, 5, 16))).shape == (2, 5, 16)

    def test_grad_check(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        check_input_grad(attn, rng.normal(size=(1, 3, 8)), atol=1e-5)

    def test_invalid_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_permutation_equivariance(self, rng):
        """Self-attention without masks is equivariant to token permutation."""
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        x = rng.normal(size=(1, 6, 8))
        perm = rng.permutation(6)
        assert np.allclose(attn(x[:, perm]), attn(x)[:, perm])


class TestBlocks:
    def test_basic_block_grad(self, rng):
        block = BasicBlock(4, 4, rng=rng)
        check_input_grad(block, rng.normal(size=(2, 4, 4, 4)), atol=1e-4)

    def test_bottleneck_projection_shapes(self, rng):
        block = BottleneckBlock(8, 4, stride=2, rng=rng)
        assert block(rng.normal(size=(1, 8, 8, 8))).shape == (1, 16, 4, 4)

    def test_transformer_block_grad(self, rng):
        block = TransformerEncoderBlock(8, 2, rng=rng)
        check_input_grad(block, rng.normal(size=(1, 4, 8)), atol=1e-4)

    def test_convnext_block_grad(self, rng):
        block = ConvNeXtBlock(4, rng=rng)
        check_input_grad(block, rng.normal(size=(1, 4, 4, 4)), atol=1e-4)

    def test_residual_identity_path(self, rng):
        """Zeroing the main path leaves the skip contribution."""
        block = BasicBlock(4, 4, rng=rng)
        for p in block.conv2.parameters():
            p.data[...] = 0.0
        for p in block.bn2.parameters():
            p.data[...] = 0.0
        x = rng.normal(size=(1, 4, 4, 4))
        block.eval()
        assert np.allclose(block(x), np.maximum(x, 0.0))


class TestModels:
    @pytest.mark.parametrize(
        "factory,input_shape",
        [
            (lambda r: resnet18(base_width=4, rng=r), (2, 3, 8, 8)),
            (lambda r: resnet50(base_width=4, rng=r), (2, 3, 8, 8)),
            (lambda r: vgg11(base_width=4, rng=r), (2, 3, 32, 32)),
            (lambda r: vit_tiny(image_size=8, patch_size=4, dim=16, num_layers=2, rng=r), (2, 3, 8, 8)),
            (lambda r: convnext_tiny(base_width=4, depths=(1, 1, 2, 1), rng=r), (2, 3, 16, 16)),
        ],
    )
    def test_forward_backward_runs(self, factory, input_shape, rng):
        model = factory(rng)
        x = rng.normal(size=input_shape)
        logits = model(x)
        assert logits.shape == (input_shape[0], 10)
        model.backward(np.ones_like(logits))  # must not raise

    def test_bert_forward_backward(self, rng):
        model = bert_mini(num_layers=2, rng=rng)
        ids = rng.integers(0, 64, size=(3, 16))
        logits = model(ids)
        assert logits.shape == (3, 4)
        model.backward(np.ones_like(logits))

    def test_bert_wrong_seq_len(self, rng):
        model = bert_mini(rng=rng)
        with pytest.raises(ValueError):
            model(rng.integers(0, 64, size=(2, 8)))

    def test_resnet_unknown_depth(self):
        with pytest.raises(ValueError):
            resnet18(base_width=4).__class__(depth=99)

    def test_param_count_scales_with_width(self):
        small = resnet18(base_width=4)
        big = resnet18(base_width=8)
        assert big.num_parameters() > 3 * small.num_parameters()


class TestTraining:
    def test_cross_entropy_gradient(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 1, 2, 0])
        loss, grad = cross_entropy(logits, labels)
        eps = 1e-6
        logits2 = logits.copy()
        logits2[0, 0] += eps
        loss2, _ = cross_entropy(logits2, labels)
        assert grad[0, 0] == pytest.approx((loss2 - loss) / eps, abs=1e-4)

    def test_mlp_learns_xor_like_task(self, rng):
        x = rng.normal(size=(256, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
        model = MLP(2, (32, 32), 2, rng=rng)
        train_classifier(model, x, y, epochs=60, optimizer=Adam(model, lr=5e-3), seed=0)
        assert evaluate_accuracy(model, x, y) > 0.95

    def test_sgd_and_adam_reduce_loss(self, rng):
        ds = synthetic_images(n_train=64, n_eval=32, size=8, seed=1)
        for opt_cls, kwargs in ((SGD, {"lr": 0.05}), (Adam, {"lr": 2e-3})):
            model = MLP(8 * 8 * 3, (32,), 10, rng=np.random.default_rng(0))
            x = ds.x_train.reshape(len(ds.x_train), -1)
            result = train_classifier(
                model, x, ds.y_train, epochs=5, optimizer=opt_cls(model, **kwargs), seed=0
            )
            assert result.losses[-1] < result.losses[0]

    def test_training_deterministic(self):
        ds = synthetic_images(n_train=64, n_eval=16, size=8, seed=2)
        accs = []
        for _ in range(2):
            model = MLP(192, (16,), 10, rng=np.random.default_rng(3))
            x = ds.x_train.reshape(len(ds.x_train), -1)
            train_classifier(model, x, ds.y_train, epochs=2, optimizer=Adam(model, lr=1e-3), seed=4)
            accs.append(evaluate_accuracy(model, x, ds.y_train))
        assert accs[0] == accs[1]

    def test_predict_logits_batched(self, rng):
        model = MLP(4, (8,), 3, rng=rng)
        x = rng.normal(size=(10, 4))
        assert np.allclose(predict_logits(model, x, batch_size=3), model(x))

    def test_mask_fn_keeps_zeros(self, rng):
        ds = synthetic_images(n_train=32, n_eval=8, size=8, seed=5)
        model = MLP(192, (16,), 10, rng=rng)
        layer = model.net[0]
        layer.weight.data[0, :] = 0.0
        mask = {id(layer): layer.weight.data != 0}

        def mask_fn(m):
            layer.weight.data *= mask[id(layer)]

        x = ds.x_train.reshape(len(ds.x_train), -1)
        train_classifier(model, x, ds.y_train, epochs=1, mask_fn=mask_fn, seed=0)
        assert not np.any(layer.weight.data[0, :])


class TestSyntheticData:
    def test_images_learnable_and_deterministic(self):
        a = synthetic_images(n_train=16, n_eval=8, size=8, seed=9)
        b = synthetic_images(n_train=16, n_eval=8, size=8, seed=9)
        assert np.array_equal(a.x_train, b.x_train)
        assert a.num_classes == 10

    def test_tokens_vocab_range(self):
        ds = synthetic_tokens(n_train=32, n_eval=8, seed=0)
        assert ds.x_train.min() >= 0
        assert ds.x_train.max() < 64

    def test_token_motifs_present(self):
        ds = synthetic_tokens(n_train=64, n_eval=8, seed=1)
        # class c plants token 3c somewhere in each sequence
        for ids, label in zip(ds.x_train[:10], ds.y_train[:10]):
            assert 3 * label in ids
