"""Tests for the NumPy DNN layers, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Activation,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Dropout,
    Embedding,
    Flatten,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    Sequential,
)
from repro.nn import functional as F
from repro.nn.module import Identity, Module, Parameter


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_input_grad(layer: Module, x: np.ndarray, atol: float = 1e-6) -> None:
    """Compare layer.backward's input gradient against finite differences."""
    layer.train()

    def loss() -> float:
        return float(layer.forward(x).sum())

    loss()  # populate caches
    analytic = layer.backward(np.ones_like(layer.forward(x)))
    numeric = numeric_grad(loss, x)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


def check_param_grads(layer: Module, x: np.ndarray, atol: float = 1e-5) -> None:
    layer.train()
    out = layer.forward(x)
    for p in layer.parameters():
        p.zero_grad()
    layer.backward(np.ones_like(out))
    for p in layer.parameters():
        def loss() -> float:
            return float(layer.forward(x).sum())

        numeric = numeric_grad(loss, p.data)
        np.testing.assert_allclose(p.grad, numeric, atol=atol, rtol=1e-4)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(8, 3, rng=rng)
        assert layer(rng.normal(size=(5, 8))).shape == (5, 3)

    def test_forward_3d(self, rng):
        layer = Linear(8, 3, rng=rng)
        assert layer(rng.normal(size=(2, 4, 8))).shape == (2, 4, 3)

    def test_input_grad(self, rng):
        check_input_grad(Linear(6, 4, rng=rng), rng.normal(size=(3, 6)))

    def test_param_grads(self, rng):
        check_param_grads(Linear(5, 3, rng=rng), rng.normal(size=(2, 5)))

    def test_effective_weight_eval_only(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        x = rng.normal(size=(3, 4))
        w_eff = np.zeros_like(layer.weight.data)
        layer.set_effective_weight(w_eff)
        layer.train()
        assert np.any(layer(x))  # training path uses the true weight
        layer.eval()
        assert not np.any(layer(x))  # eval path uses the effective weight

    def test_effective_weight_shape_check(self, rng):
        layer = Linear(4, 2, rng=rng)
        with pytest.raises(ValueError):
            layer.set_effective_weight(np.zeros((3, 4)))


class TestConv2d:
    def test_forward_shape(self, rng):
        conv = Conv2d(3, 8, 3, stride=1, padding=1, rng=rng)
        assert conv(rng.normal(size=(2, 3, 8, 8))).shape == (2, 8, 8, 8)

    def test_forward_stride(self, rng):
        conv = Conv2d(3, 4, 3, stride=2, padding=1, rng=rng)
        assert conv(rng.normal(size=(1, 3, 8, 8))).shape == (1, 4, 4, 4)

    def test_matches_manual_convolution(self, rng):
        """1x1 conv equals an einsum over channels."""
        conv = Conv2d(3, 5, 1, rng=rng)
        x = rng.normal(size=(2, 3, 4, 4))
        manual = np.einsum("bchw,oc->bohw", x, conv.weight.data[:, :, 0, 0]) + conv.bias.data[
            None, :, None, None
        ]
        assert np.allclose(conv(x), manual)

    def test_input_grad(self, rng):
        check_input_grad(Conv2d(2, 3, 3, padding=1, rng=rng), rng.normal(size=(2, 2, 4, 4)))

    def test_param_grads(self, rng):
        check_param_grads(Conv2d(2, 2, 3, rng=rng), rng.normal(size=(1, 2, 5, 5)))

    def test_weight_matrix_shape(self, rng):
        conv = Conv2d(3, 8, 3, rng=rng)
        assert conv.weight_matrix().shape == (8, 27)

    def test_gemm_shape(self, rng):
        conv = Conv2d(3, 8, 3, padding=1, rng=rng)
        conv(rng.normal(size=(2, 3, 8, 8)))
        gs = conv.gemm_shape(2)
        assert (gs.m, gs.k, gs.n) == (2 * 64, 27, 8)


class TestDepthwiseConv2d:
    def test_forward_shape(self, rng):
        dw = DepthwiseConv2d(4, 3, padding=1, rng=rng)
        assert dw(rng.normal(size=(2, 4, 6, 6))).shape == (2, 4, 6, 6)

    def test_input_grad(self, rng):
        check_input_grad(DepthwiseConv2d(2, 3, padding=1, rng=rng), rng.normal(size=(1, 2, 4, 4)))

    def test_channels_independent(self, rng):
        """Changing channel 0's input must not affect channel 1's output."""
        dw = DepthwiseConv2d(2, 3, padding=1, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        base = dw(x)
        x2 = x.copy()
        x2[:, 0] += 1.0
        out = dw(x2)
        assert np.allclose(out[:, 1], base[:, 1])
        assert not np.allclose(out[:, 0], base[:, 0])


class TestNormalisation:
    def test_batchnorm_normalises(self, rng):
        bn = BatchNorm2d(4)
        x = rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5))
        y = bn(x)
        assert np.abs(y.mean(axis=(0, 2, 3))).max() < 1e-7
        assert np.abs(y.std(axis=(0, 2, 3)) - 1.0).max() < 1e-2

    def test_batchnorm_running_stats_used_in_eval(self, rng):
        bn = BatchNorm2d(2)
        for _ in range(50):
            bn(rng.normal(loc=1.0, size=(16, 2, 4, 4)))
        bn.eval()
        y = bn(np.full((2, 2, 4, 4), 1.0))
        assert np.abs(y).max() < 0.5  # input at the running mean -> near zero

    def test_batchnorm_input_grad(self, rng):
        check_input_grad(BatchNorm2d(2), rng.normal(size=(4, 2, 3, 3)), atol=1e-5)

    def test_layernorm_normalises(self, rng):
        ln = LayerNorm(16)
        y = ln(rng.normal(loc=5.0, size=(4, 16)))
        assert np.abs(y.mean(axis=-1)).max() < 1e-7

    def test_layernorm_input_grad(self, rng):
        check_input_grad(LayerNorm(8), rng.normal(size=(3, 8)), atol=1e-5)

    def test_layernorm_param_grads(self, rng):
        check_param_grads(LayerNorm(6), rng.normal(size=(4, 6)))


class TestActivations:
    @pytest.mark.parametrize("kind", ["relu", "relu6", "gelu", "silu", "squared_relu"])
    def test_grad_matches_numeric(self, kind, rng):
        check_input_grad(Activation(kind), rng.normal(size=(4, 8)), atol=1e-5)

    def test_relu_sparsity_recorded(self, rng):
        act = Activation("relu")
        act(rng.normal(size=(100, 100)))
        assert 0.4 < act.last_output_sparsity < 0.6

    def test_gelu_no_sparsity(self, rng):
        act = Activation("gelu")
        act(rng.normal(size=(50, 50)))
        assert act.last_output_sparsity < 0.01
        assert not act.induces_zeros

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Activation("tanh")

    def test_functional_softmax_sums_to_one(self, rng):
        s = F.softmax(rng.normal(size=(5, 7)))
        assert np.allclose(s.sum(axis=-1), 1.0)

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(size=(3, 5))
        assert np.allclose(np.exp(F.log_softmax(x)), F.softmax(x))


class TestPoolingAndShape:
    def test_maxpool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(x)
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_input_grad(self, rng):
        check_input_grad(MaxPool2d(2), rng.normal(size=(2, 2, 4, 4)))

    def test_maxpool_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            MaxPool2d(2)(rng.normal(size=(1, 1, 5, 5)))

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        assert np.allclose(GlobalAvgPool2d()(x), x.mean(axis=(2, 3)))

    def test_global_avg_pool_grad(self, rng):
        check_input_grad(GlobalAvgPool2d(), rng.normal(size=(2, 3, 4, 4)))

    def test_flatten_roundtrip(self, rng):
        f = Flatten()
        x = rng.normal(size=(2, 3, 4))
        y = f(x)
        assert y.shape == (2, 12)
        assert f.backward(y).shape == x.shape


class TestDropoutEmbedding:
    def test_dropout_eval_identity(self, rng):
        d = Dropout(0.5, rng=rng)
        d.eval()
        x = rng.normal(size=(4, 4))
        assert np.array_equal(d(x), x)

    def test_dropout_train_scales(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((1000,))
        y = d(x)
        assert y.mean() == pytest.approx(1.0, abs=0.1)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_embedding_lookup(self, rng):
        emb = Embedding(10, 4, rng=rng)
        ids = np.array([[1, 2], [3, 1]])
        out = emb(ids)
        assert out.shape == (2, 2, 4)
        assert np.array_equal(out[0, 0], emb.weight.data[1])

    def test_embedding_grad_accumulates(self, rng):
        emb = Embedding(10, 4, rng=rng)
        ids = np.array([[1, 1]])
        emb(ids)
        emb.backward(np.ones((1, 2, 4)))
        assert np.allclose(emb.weight.grad[1], 2.0)  # token 1 used twice


class TestModuleSystem:
    def test_sequential_backward_order(self, rng):
        seq = Sequential(Linear(4, 4, rng=rng), Activation("relu"), Linear(4, 2, rng=rng))
        check_input_grad(seq, rng.normal(size=(3, 4)), atol=1e-5)

    def test_named_parameters_unique(self, rng):
        seq = Sequential(Linear(4, 4, rng=rng), Linear(4, 2, rng=rng))
        names = [n for n, _ in seq.named_parameters()]
        assert len(names) == len(set(names)) == 4

    def test_state_dict_roundtrip(self, rng):
        a = Sequential(Linear(4, 4, rng=rng))
        b = Sequential(Linear(4, 4, rng=np.random.default_rng(99)))
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(2, 4))
        assert np.allclose(a(x), b(x))

    def test_state_dict_mismatch_raises(self, rng):
        a = Sequential(Linear(4, 4, rng=rng))
        with pytest.raises(KeyError):
            a.load_state_dict({"bogus": np.zeros(1)})

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Sequential(Dropout(0.5)))
        seq.eval()
        assert all(not m.training for m in seq.modules())

    def test_forward_hooks(self, rng):
        layer = Linear(4, 2, rng=rng)
        seen = []
        layer.register_forward_hook(lambda mod, x, y: seen.append(y.shape))
        layer(rng.normal(size=(3, 4)))
        assert seen == [(3, 2)]
        layer.clear_forward_hooks()
        layer(rng.normal(size=(3, 4)))
        assert len(seen) == 1

    def test_identity(self, rng):
        x = rng.normal(size=(2, 2))
        ident = Identity()
        assert ident(x) is x
        assert ident.backward(x) is x

    def test_zero_grad(self, rng):
        layer = Linear(3, 3, rng=rng)
        layer(rng.normal(size=(2, 3)))
        layer.backward(np.ones((2, 3)))
        assert np.any(layer.weight.grad)
        layer.zero_grad()
        assert not np.any(layer.weight.grad)
