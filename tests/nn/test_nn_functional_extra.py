"""Additional coverage: activation function properties and numerical safety."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nn import functional as F


class TestActivationValues:
    def test_relu6_saturates(self):
        x = np.array([-1.0, 3.0, 10.0])
        assert np.array_equal(F.relu6(x), [0.0, 3.0, 6.0])

    def test_squared_relu(self):
        x = np.array([-2.0, 3.0])
        assert np.array_equal(F.squared_relu(x), [0.0, 9.0])

    def test_gelu_known_values(self):
        assert F.gelu(np.array([0.0]))[0] == 0.0
        assert F.gelu(np.array([100.0]))[0] == pytest.approx(100.0)
        assert F.gelu(np.array([-100.0]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_silu_known_values(self):
        assert F.silu(np.array([0.0]))[0] == 0.0
        assert F.silu(np.array([100.0]))[0] == pytest.approx(100.0)

    def test_gelu_never_exactly_zero_for_moderate_negatives(self):
        """The Section 2.2 point: GELU produces no exact zeros."""
        x = np.linspace(-5, -0.1, 100)
        assert np.all(F.gelu(x) != 0.0)

    def test_relu_produces_exact_zeros(self):
        x = np.linspace(-5, -0.1, 100)
        assert np.all(F.relu(x) == 0.0)

    def test_softmax_stability_large_logits(self):
        x = np.array([[1e4, 1e4 + 1, 1e4 - 1]])
        s = F.softmax(x)
        assert np.isfinite(s).all()
        assert s.sum() == pytest.approx(1.0)

    def test_log_softmax_stability(self):
        x = np.array([[1e4, -1e4]])
        ls = F.log_softmax(x)
        assert np.isfinite(ls).all()

    def test_registry_flags(self):
        assert F.ACTIVATIONS["relu"][2] is True
        assert F.ACTIVATIONS["gelu"][2] is False
        assert F.ACTIVATIONS["swish"][0] is F.ACTIVATIONS["silu"][0]


@given(st.sampled_from(list(F.ACTIVATIONS)), st.integers(min_value=0, max_value=2**31 - 1))
def test_property_derivatives_match_finite_differences(kind, seed):
    fwd, grad, _ = F.ACTIVATIONS[kind]
    x = np.random.default_rng(seed).uniform(-3, 3, size=32)
    x = x[np.abs(x) > 1e-3]  # avoid kink points of relu-family
    if kind == "relu6":
        x = x[np.abs(x - 6.0) > 1e-3]
    eps = 1e-6
    numeric = (fwd(x + eps) - fwd(x - eps)) / (2 * eps)
    np.testing.assert_allclose(grad(x), numeric, atol=1e-5)


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_softmax_invariant_to_shift(seed):
    g = np.random.default_rng(seed)
    x = g.normal(size=(4, 8))
    np.testing.assert_allclose(F.softmax(x), F.softmax(x + 123.456), atol=1e-12)
