"""EXP-T1/T2/T3/T4 — the paper's capability and configuration tables.

Table 1 (HW capability matrix) and Table 3 (design summary) are properties
of the model zoo; Table 2 (the TTC-VEGETA pattern menu) is *derived* — the
compose logic must reproduce it exactly, which the tests assert.
"""

from __future__ import annotations

from repro.core.series import compose_menu, menu_table
from repro.tasder.config import ALL_TTC_MENUS, TTC_VEGETA_M8
from repro.workloads import PAPER_WORKLOADS, representative_layers

from .reporting import format_table

__all__ = ["table1", "table2", "table3", "table4"]


def table1() -> str:
    """Table 1 — what each HW class supports (✓ = supported)."""
    rows = [
        ("Dense (TPU/TC)", "yes", "no", "no", "yes", "no", "lowest"),
        ("Unstructured (SIGMA/SCNN/DSTC)", "no*", "yes", "yes", "no*", "yes", "high"),
        ("Structured (STC/VEGETA)", "yes", "no", "yes", "yes", "no", "low"),
        ("TASD (this work)", "yes", "yes", "yes", "yes**", "yes", "low"),
    ]
    return format_table(
        ["HW", "Dense Wgt", "Unstr Wgt", "Str Wgt", "Dense Act", "Unstr Act", "Area cost"],
        rows,
        title="Table 1 — DNN HW comparison (* inefficient on dense; "
        "** via dense-tensor approximation)",
    )


def table2() -> str:
    """Table 2 — N:8 menu of TTC-VEGETA with ≤ 2 TASD terms."""
    menu = compose_menu(TTC_VEGETA_M8.native_patterns, max_terms=TTC_VEGETA_M8.max_terms)
    rows = menu_table(menu, m=8)
    return format_table(
        ["Pattern", "TASD series"], rows, title="Table 2 — supported patterns, TTC-VEGETA-M8"
    )


def table3() -> str:
    """Table 3 — the evaluated designs and their native/TASD pattern menus."""
    rows = [("TC", "none"), ("DSTC", "unstructured")]
    for menu in ALL_TTC_MENUS:
        native = ", ".join(str(p) for p in menu.native_patterns)
        derived = sorted(
            str(c)
            for c in menu.menu().values()
            if c.order > 1
        )
        extra = f" + {', '.join(derived)} (TASD 2T)" if derived else ""
        rows.append((menu.name, f"{native} (TASD 1T){extra}"))
    return format_table(["HW design", "Sparsity support"], rows, title="Table 3 — HW designs")


def table4() -> str:
    """Table 4 — representative layers with their GEMM dimensions."""
    rows = []
    for wl in PAPER_WORKLOADS():
        reps = representative_layers(wl)
        for label in ("L1", "L2", "L3"):
            if label in reps:
                s = reps[label].shape
                rows.append((wl.name, label, s.name, f"M{s.spatial}-N{s.out_features}-K{s.reduction}"))
    return format_table(
        ["Workload", "Layer", "Name", "Dimensions"], rows, title="Table 4 — representative layers"
    )
