"""EXP-F19 — Fig. 19 (Appendix B): what each piece of the system buys.

Four systems on six model variants (dense / unstructured-pruned /
structured-pruned x ResNet-50 / BERT):

* DSTC — unstructured sparse HW, no TASDER.
* VEGETA — structured sparse HW alone: exploits only natively-legal
  (structured-pruned) weights; unstructured and dense models run dense.
* VEGETA w/ TASDER — TASD-W turns unstructured weights structured
  (1-term menu, no TASD units, so no activation support).
* TTC-VEGETA w/ TASDER — adds TASD units: 2-term TASD-W menus plus dynamic
  TASD-A for dense-weight models.

Expected shape: plain VEGETA ≈ 1.0 on dense/unstructured models; TASDER
recovers the weight-side gains; TTC adds activation-side gains everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.patterns import NMPattern
from repro.core.series import DENSE_CONFIG, TASDConfig
from repro.hw import LayerSpec, build_model, geomean
from repro.workloads import (
    Workload,
    WorkloadLayer,
    build_layer_specs,
    dense_bert,
    dense_resnet50,
    sparse_bert,
    sparse_resnet50,
)
from repro.workloads.suite import DROP_CAP_WEIGHTS, select_config_by_drop_cap

from .reporting import format_table

__all__ = ["Fig19Result", "run", "structured_pruned"]

NATIVE_4_8 = TASDConfig.single(4, 8)
SYSTEMS = ("DSTC", "VEGETA", "VEGETA w/ TASDER", "TTC-VEGETA w/ TASDER")


def structured_pruned(base: Workload, name: str) -> Workload:
    """A 4:8 structured-pruned (HW-aware fine-tuned) variant of a workload."""
    layers = tuple(
        WorkloadLayer(
            l.shape,
            weight_density=0.5,  # exactly 4:8 legal after fine-tuning
            activation_density=l.activation_density,
            activation_stat_density=l.activation_stat_density,
        )
        for l in base.layers
    )
    return Workload(name, layers, tasd_side="weights", activation_kind=base.activation_kind)


def _specs_for(system: str, workload: Workload, structured: bool) -> list[LayerSpec]:
    vegeta = build_model("VEGETA")
    ttc = build_model("TTC-VEGETA-M8")
    if system == "DSTC":
        return build_layer_specs(workload, build_model("DSTC"))
    if system == "VEGETA":
        if structured:
            # Natively legal 4:8 weights run lossless without any TASDER.
            return [
                LayerSpec(
                    name=l.name,
                    m=l.shape.out_features, k=l.shape.reduction, n=l.shape.spatial,
                    a_density=l.weight_density, b_density=l.activation_density,
                    a_config=NATIVE_4_8,
                )
                for l in workload.layers
            ]
        return build_layer_specs(workload, vegeta, use_tasder=False)
    if system == "VEGETA w/ TASDER":
        if structured:
            # Already 4:8 legal: TASDER selects the native pattern, zero drops.
            return _specs_for("VEGETA", workload, structured)
        if workload.tasd_side != "weights":
            # No TASD units: dense-weight models gain nothing.
            return build_layer_specs(workload, vegeta, use_tasder=False)
        return build_layer_specs(workload, vegeta, native_only=True)
    if system == "TTC-VEGETA w/ TASDER":
        if structured:
            return [
                LayerSpec(
                    name=l.name,
                    m=l.shape.out_features, k=l.shape.reduction, n=l.shape.spatial,
                    a_density=l.weight_density, b_density=l.activation_density,
                    a_config=NATIVE_4_8,
                )
                for l in workload.layers
            ]
        return build_layer_specs(workload, ttc)
    raise ValueError(f"unknown system {system!r}")


def _model_for(system: str):
    if system == "DSTC":
        return build_model("DSTC").model
    if system in ("VEGETA", "VEGETA w/ TASDER"):
        return build_model("VEGETA").model
    return build_model("TTC-VEGETA-M8").model


@dataclass
class Fig19Result:
    variants: list[str]
    edp: dict[tuple[str, str], float]  # (variant, system) -> normalized EDP

    def table(self) -> str:
        rows = []
        for variant in self.variants:
            rows.append(tuple([variant] + [self.edp[(variant, s)] for s in SYSTEMS]))
        gm = ["Geomean"] + [
            geomean([self.edp[(v, s)] for v in self.variants]) for s in SYSTEMS
        ]
        rows.append(tuple(gm))
        return format_table(
            ["Model"] + list(SYSTEMS), rows,
            title="Fig. 19 — ablation: DSTC / VEGETA / +TASDER / TTC (EDP vs dense TC)",
        )


def run() -> Fig19Result:
    variants: list[tuple[str, Workload, bool]] = [
        ("Dense ResNet50", dense_resnet50(), False),
        ("Dense BERT", dense_bert(), False),
        ("Unstr ResNet50", sparse_resnet50(), False),
        ("Unstr BERT", sparse_bert(), False),
        ("Str ResNet50", structured_pruned(dense_resnet50(), "Str ResNet50"), True),
        ("Str BERT", structured_pruned(dense_bert(), "Str BERT"), True),
    ]
    tc = build_model("TC")
    edp: dict[tuple[str, str], float] = {}
    for name, workload, structured in variants:
        base = tc.model.run_network(build_layer_specs(workload, tc, use_tasder=False))
        for system in SYSTEMS:
            model = _model_for(system)
            result = model.run_network(_specs_for(system, workload, structured))
            edp[(name, system)] = result.edp / base.edp
    return Fig19Result(variants=[v[0] for v in variants], edp=edp)
