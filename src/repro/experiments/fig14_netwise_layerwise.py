"""EXP-F14 — Fig. 14: network-wise vs layer-wise TASD on ResNet-50.

Upper plot: TASD-W on the 95 % unstructured sparse ResNet-50 — accuracy vs
approximated sparsity for network-wise N:4 / N:8 / N:16 sweeps plus
layer-wise (α-swept) points.  Lower plot: the same for TASD-A on the dense
ResNet-50.  Expected shapes: layer-wise dominates network-wise, and TASD-A
degrades at much lower approximated sparsity than TASD-W.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.train import evaluate_accuracy
from repro.pruning.targets import gemm_layers
from repro.tasder import (
    TTC_VEGETA_M8,
    TASDTransform,
    calibrate,
    collect_gemm_shapes,
    evaluate_transform,
    menu_n4,
    menu_n8,
    menu_n16,
    network_wise_activation_sweep,
    network_wise_weight_sweep,
    select_activation_configs,
    sparsity_based_weight_selection,
    transform_compute_fraction,
)

from .reporting import format_table
from .zoo import RECIPES, get_trained_model

__all__ = ["SweepPoint", "Fig14Result", "run"]


@dataclass(frozen=True)
class SweepPoint:
    series: str  # e.g. "netwise N:8" / "layerwise"
    config: str
    approximated_sparsity: float
    accuracy: float


@dataclass
class Fig14Result:
    weight_points: list[SweepPoint]
    activation_points: list[SweepPoint]
    original_accuracy_sparse: float
    original_accuracy_dense: float

    def table(self, which: str = "weights") -> str:
        pts = self.weight_points if which == "weights" else self.activation_points
        orig = (
            self.original_accuracy_sparse if which == "weights" else self.original_accuracy_dense
        )
        rows = [
            (p.series, p.config, p.approximated_sparsity, p.accuracy, p.accuracy >= 0.99 * orig)
            for p in pts
        ]
        return format_table(
            ["series", "config", "approx sparsity", "accuracy", "meets 99%"],
            rows,
            title=f"Fig. 14 ({'upper: TASD-W' if which == 'weights' else 'lower: TASD-A'}), "
            f"original accuracy {orig:.4f}",
        )


def _layerwise_weight_points(model, dataset, alphas) -> list[SweepPoint]:
    points = []
    shapes = collect_gemm_shapes(model, dataset.x_eval[:2])
    for alpha in alphas:
        transform = sparsity_based_weight_selection(model, TTC_VEGETA_M8, alpha=alpha)
        acc = evaluate_transform(model, transform, dataset.x_eval, dataset.y_eval)
        sparsity = 1.0 - transform_compute_fraction(transform, shapes)
        points.append(SweepPoint("layerwise N:8", f"alpha={alpha:+.2f}", sparsity, acc))
    return points


def _layerwise_activation_points(model, dataset, alphas) -> list[SweepPoint]:
    points = []
    shapes = collect_gemm_shapes(model, dataset.x_eval[:2])
    calibration = calibrate(model, dataset.x_calib)
    for alpha in alphas:
        transform = select_activation_configs(calibration, TTC_VEGETA_M8, alpha=alpha)
        acc = evaluate_transform(model, transform, dataset.x_eval, dataset.y_eval)
        sparsity = 1.0 - transform_compute_fraction(transform, shapes)
        points.append(SweepPoint("layerwise N:8", f"alpha={alpha:+.2f}", sparsity, acc))
    return points


def run(use_cache: bool = True, alphas: tuple[float, ...] = (-0.45, -0.3, -0.15, 0.0, 0.15, 0.3)) -> Fig14Result:
    sparse = get_trained_model(RECIPES["sparse_resnet50"], use_cache=use_cache)
    dense = get_trained_model(RECIPES["resnet50"], use_cache=use_cache)

    weight_points: list[SweepPoint] = []
    for label, menu in (("N:4", menu_n4()), ("N:8", menu_n8()), ("N:16", menu_n16())):
        for config, acc in network_wise_weight_sweep(
            sparse.model, menu, sparse.dataset.x_eval, sparse.dataset.y_eval
        ):
            weight_points.append(
                SweepPoint(f"netwise {label}", str(config), config.approximated_sparsity, acc)
            )
    weight_points.extend(_layerwise_weight_points(sparse.model, sparse.dataset, alphas))

    activation_points: list[SweepPoint] = []
    for label, menu in (("N:4", menu_n4()), ("N:8", menu_n8()), ("N:16", menu_n16())):
        for config, acc in network_wise_activation_sweep(
            dense.model, menu, dense.dataset.x_eval, dense.dataset.y_eval
        ):
            activation_points.append(
                SweepPoint(f"netwise {label}", str(config), config.approximated_sparsity, acc)
            )
    activation_points.extend(_layerwise_activation_points(dense.model, dense.dataset, alphas))

    return Fig14Result(
        weight_points=weight_points,
        activation_points=activation_points,
        original_accuracy_sparse=sparse.accuracy,
        original_accuracy_dense=dense.accuracy,
    )
