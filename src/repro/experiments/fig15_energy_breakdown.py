"""EXP-F15 — Fig. 15: energy breakdown by architecture level, TTC vs TC.

Runs the sparse-ResNet-50 representative layer (Table 4's L3) on the dense
TC and on TTC-VEGETA-M8 with the paper's 4:8 + 1:8 configuration, and
reports energy per component (DRAM / L2 SMEM / L1 SMEM / RF / MAC / TASD
unit).  Expected shape: TTC saves at *every* level, ≈50 %+ total.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.series import TASDConfig
from repro.hw import LayerSpec, build_model
from repro.workloads import representative_layers, sparse_resnet50

from .reporting import format_table

__all__ = ["Fig15Result", "run"]

COMPONENT_ORDER = ("dram", "l2", "l1", "rf", "mac", "tasd_unit", "accum", "index")


@dataclass
class Fig15Result:
    layer: str
    tc_breakdown: dict[str, float]
    ttc_breakdown: dict[str, float]

    @property
    def total_tc(self) -> float:
        return sum(self.tc_breakdown.values())

    @property
    def total_ttc(self) -> float:
        return sum(self.ttc_breakdown.values())

    @property
    def savings(self) -> float:
        return 1.0 - self.total_ttc / self.total_tc

    def table(self) -> str:
        rows = []
        for comp in COMPONENT_ORDER:
            tc = self.tc_breakdown.get(comp, 0.0)
            ttc = self.ttc_breakdown.get(comp, 0.0)
            if tc == 0.0 and ttc == 0.0:
                continue
            rows.append((comp, tc / self.total_tc, ttc / self.total_tc))
        rows.append(("TOTAL", 1.0, self.total_ttc / self.total_tc))
        return format_table(
            ["component", "dense TC", "TTC-VEGETA (4:8+1:8)"],
            rows,
            title=f"Fig. 15 — energy breakdown, {self.layer} "
            f"(TTC saves {self.savings:.1%})",
        )


def run() -> Fig15Result:
    wl = sparse_resnet50()
    layer = representative_layers(wl)["L3"]
    config = TASDConfig.parse("4:8+1:8")
    # TASD-W orientation: A = weights.
    base_spec = LayerSpec(
        name=layer.name,
        m=layer.shape.out_features, k=layer.shape.reduction, n=layer.shape.spatial,
        a_density=layer.weight_density, b_density=layer.activation_density,
    )
    tc = build_model("TC").model.run_layer(base_spec)
    ttc_spec = LayerSpec(
        name=layer.name,
        m=base_spec.m, k=base_spec.k, n=base_spec.n,
        a_density=base_spec.a_density, b_density=base_spec.b_density,
        a_config=config,
    )
    ttc = build_model("TTC-VEGETA-M8").model.run_layer(ttc_spec)
    return Fig15Result(
        layer=f"sparse RN50 {layer.name} (L3)",
        tc_breakdown=tc.energy_breakdown,
        ttc_breakdown=ttc.energy_breakdown,
    )
