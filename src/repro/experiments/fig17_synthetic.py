"""EXP-F17 — Fig. 17 (Appendix A): dropped nnz / magnitude vs density.

128x128 synthetic matrices, densities 0.1-0.75, values from Normal(0, 1/3),
decomposed with 1 / 2 / 3-term series (2:4; +2:8; +2:16).  Expected shapes:
two terms push dropped-nnz below 1 % at low density, and dropped magnitude
is always below dropped nnz (greedy keeps the largest values).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import dropped_magnitude_fraction, dropped_nonzero_fraction
from repro.core.series import TASDConfig
from repro.tensor.random import sparse_matrix

from .reporting import format_table

__all__ = ["Fig17Result", "run", "SERIES"]

SERIES = {
    "1 term (2:4)": TASDConfig.parse("2:4"),
    "2 terms (2:4+2:8)": TASDConfig.parse("2:4+2:8"),
    "3 terms (2:4+2:8+2:16)": TASDConfig.parse("2:4+2:8+2:16"),
}


@dataclass
class Fig17Result:
    densities: list[float]
    dropped_nnz: dict[str, list[float]]  # series label -> per-density values
    dropped_magnitude: dict[str, list[float]]
    distribution: str

    def table(self) -> str:
        rows = []
        for i, d in enumerate(self.densities):
            for label in SERIES:
                rows.append(
                    (d, label, self.dropped_nnz[label][i], self.dropped_magnitude[label][i])
                )
        return format_table(
            ["density", "series", "dropped nnz frac", "dropped magnitude frac"],
            rows,
            title=f"Fig. 17 — TASD drop rates on 128x128 {self.distribution} matrices",
            float_fmt="{:.4f}",
        )


def run(
    densities: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.75),
    size: int = 128,
    distribution: str = "normal",
    trials: int = 4,
    seed: int = 0,
) -> Fig17Result:
    dropped_nnz: dict[str, list[float]] = {label: [] for label in SERIES}
    dropped_mag: dict[str, list[float]] = {label: [] for label in SERIES}
    rng = np.random.default_rng(seed)
    for density in densities:
        mats = [
            sparse_matrix(size, size, density, distribution=distribution, seed=rng)
            for _ in range(trials)
        ]
        for label, config in SERIES.items():
            nnzs, mags = [], []
            for mat in mats:
                dec = config.apply(mat, axis=-1)
                nnzs.append(dropped_nonzero_fraction(dec))
                mags.append(dropped_magnitude_fraction(dec))
            dropped_nnz[label].append(float(np.mean(nnzs)))
            dropped_mag[label].append(float(np.mean(mags)))
    return Fig17Result(
        densities=list(densities),
        dropped_nnz=dropped_nnz,
        dropped_magnitude=dropped_mag,
        distribution=distribution,
    )
