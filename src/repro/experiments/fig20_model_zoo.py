"""EXP-F20 — Fig. 20 (Appendix B): layer-wise TASD across the model zoo.

Left: TASD-W MAC reduction on unstructured-sparse VGG-11/16, ResNet-18/34
under the 99 % accuracy requirement (paper: ≈49 % MACs removed on average).
Right: TASD-A MAC reduction on dense VGG-16, ResNet-18/50, ConvNeXt-T, ViT
(paper: ≈32 % on average).  The α for TASD-A is auto-tuned per model: the
most aggressive value whose transform still meets the gate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.metrics import geomean
from repro.tasder import TTC_VEGETA_M8, Tasder, TasderResult

from .reporting import format_table
from .zoo import RECIPES, get_trained_model

__all__ = ["ZooEntry", "Fig20Result", "run", "TASD_W_MODELS", "TASD_A_MODELS"]

TASD_W_MODELS = ("sparse_vgg11", "sparse_vgg16", "sparse_resnet18", "sparse_resnet34")
TASD_A_MODELS = ("vgg16", "resnet18", "resnet50", "convnext", "vit")


@dataclass(frozen=True)
class ZooEntry:
    model: str
    mode: str  # "TASD-W" | "TASD-A"
    original_accuracy: float
    transformed_accuracy: float
    mac_fraction: float
    meets_gate: bool

    @property
    def mac_reduction(self) -> float:
        return 1.0 - self.mac_fraction


@dataclass
class Fig20Result:
    entries: list[ZooEntry]

    def mean_mac_fraction(self, mode: str) -> float:
        vals = [e.mac_fraction for e in self.entries if e.mode == mode]
        return geomean(vals) if vals else 1.0

    def table(self) -> str:
        rows = [
            (e.model, e.mode, e.original_accuracy, e.transformed_accuracy,
             e.mac_fraction, e.meets_gate)
            for e in self.entries
        ]
        rows.append(("Geomean (TASD-W)", "TASD-W", "", "", self.mean_mac_fraction("TASD-W"), ""))
        rows.append(("Geomean (TASD-A)", "TASD-A", "", "", self.mean_mac_fraction("TASD-A"), ""))
        return format_table(
            ["model", "mode", "orig acc", "tasd acc", "normalized MACs", "meets 99%"],
            rows,
            title="Fig. 20 — layer-wise TASD on the model zoo (TTC-VEGETA-M8 menu)",
        )


def _tasd_a_with_auto_alpha(
    trained, alphas=(0.3, 0.2, 0.1, 0.0, -0.1, -0.2, -0.35)
) -> TasderResult:
    """Most aggressive α whose TASD-A transform meets the 99 % gate.

    Walks α from aggressive to conservative and returns the first passing
    transform; if even the most conservative fails, that attempt is returned
    (flagged by its ``meets_gate`` in the results table).  A sufficiently
    negative α selects dense everywhere, so the walk terminates at the gate
    in practice.
    """
    last: TasderResult | None = None
    for alpha in alphas:
        tasder = Tasder(trained.model, trained.dataset, TTC_VEGETA_M8, alpha=alpha)
        last = tasder.optimize_activations()
        if last.transformed_accuracy >= 0.99 * last.original_accuracy:
            return last
    return last  # most conservative attempt, still failing the gate


def run(use_cache: bool = True) -> Fig20Result:
    entries: list[ZooEntry] = []
    for name in TASD_W_MODELS:
        trained = get_trained_model(RECIPES[name], use_cache=use_cache)
        tasder = Tasder(trained.model, trained.dataset, TTC_VEGETA_M8)
        result = tasder.optimize_weights(method="greedy", eval_every=6)
        entries.append(
            ZooEntry(
                model=name.replace("sparse_", "") + " (sparse)",
                mode="TASD-W",
                original_accuracy=result.original_accuracy,
                transformed_accuracy=result.transformed_accuracy,
                mac_fraction=result.compute_fraction,
                meets_gate=result.transformed_accuracy >= 0.99 * result.original_accuracy,
            )
        )
    for name in TASD_A_MODELS:
        trained = get_trained_model(RECIPES[name], use_cache=use_cache)
        result = _tasd_a_with_auto_alpha(trained)
        entries.append(
            ZooEntry(
                model=name,
                mode="TASD-A",
                original_accuracy=result.original_accuracy,
                transformed_accuracy=result.transformed_accuracy,
                mac_fraction=result.compute_fraction,
                meets_gate=result.transformed_accuracy >= 0.99 * result.original_accuracy,
            )
        )
    return Fig20Result(entries=entries)
