"""Experiment drivers — one per table/figure of the paper (see DESIGN.md §4)."""

from . import (
    ablations,
    fig06_layer_sparsity,
    fig12_edp,
    fig14_netwise_layerwise,
    fig15_energy_breakdown,
    fig16_gpu,
    fig17_synthetic,
    fig18_matmul_error,
    fig19_ablation,
    fig20_model_zoo,
    tables,
    validation,
)
from .reporting import format_series, format_table
from .zoo import RECIPES, ModelRecipe, TrainedModel, get_trained_model

__all__ = [
    "fig06_layer_sparsity",
    "fig12_edp",
    "fig14_netwise_layerwise",
    "fig15_energy_breakdown",
    "fig16_gpu",
    "fig17_synthetic",
    "fig18_matmul_error",
    "fig19_ablation",
    "fig20_model_zoo",
    "tables",
    "validation",
    "ablations",
    "format_table",
    "format_series",
    "RECIPES",
    "ModelRecipe",
    "TrainedModel",
    "get_trained_model",
]
