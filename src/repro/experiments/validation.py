"""Aggregate fidelity check: rank-correlate measured EDP against the paper.

The reproduction's headline quality metric: across every (workload, design)
cell whose normalized EDP the paper's text states, the *ranking* of our
measured values should agree (Spearman correlation) and the values should
sit within a small log-space error — "who wins, by roughly what factor".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .fig12_edp import PAPER_EDP_REFERENCE, Fig12Result, run as run_fig12
from .reporting import format_table

__all__ = ["ValidationResult", "validate_against_paper"]


@dataclass
class ValidationResult:
    """Paper-vs-measured comparison over the quoted Fig. 12 cells."""

    cells: list[tuple[str, str, float, float]]  # workload, design, paper, measured
    spearman: float
    max_log2_error: float
    mean_log2_error: float

    def table(self) -> str:
        rows = [
            (wl, d, paper, measured, float(np.log2(measured / paper)))
            for wl, d, paper, measured in self.cells
        ]
        body = format_table(
            ["workload", "design", "paper EDP", "measured EDP", "log2 ratio"],
            rows,
            title="Fig. 12 reproduction fidelity (normalized EDP)",
        )
        summary = (
            f"\nSpearman rank correlation: {self.spearman:.3f}   "
            f"mean |log2 error|: {self.mean_log2_error:.2f}   "
            f"max |log2 error|: {self.max_log2_error:.2f}"
        )
        return body + summary


def validate_against_paper(fig12: Fig12Result | None = None) -> ValidationResult:
    """Compare measured Fig. 12 EDPs against every paper-quoted value."""
    fig12 = fig12 or run_fig12()
    cells = []
    paper_vals = []
    measured_vals = []
    for (workload, design), paper in sorted(PAPER_EDP_REFERENCE.items()):
        measured = fig12.cell(workload, design).edp
        cells.append((workload, design, paper, measured))
        paper_vals.append(paper)
        measured_vals.append(measured)
    rho = float(stats.spearmanr(paper_vals, measured_vals).statistic)
    log_err = np.abs(np.log2(np.array(measured_vals) / np.array(paper_vals)))
    return ValidationResult(
        cells=cells,
        spearman=rho,
        max_log2_error=float(log_err.max()),
        mean_log2_error=float(log_err.mean()),
    )
