"""EXP-F6 — Fig. 6: per-layer weight & activation sparsity of sparse ResNet-50.

Trains the scaled ResNet-50, prunes it to 95 % with the global-magnitude
recipe, and measures per-layer weight sparsity plus input-activation
sparsity over the calibration set — reproducing the figure's two series:
weights ramping to ≈95-99 % with a denser first layer, activations
oscillating in the 40-80 % band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pruning import sparsity_report
from repro.tasder import calibrate

from .reporting import format_table
from .zoo import RECIPES, get_trained_model

__all__ = ["Fig6Result", "run"]


@dataclass
class Fig6Result:
    layer_names: list[str]
    weight_sparsity: list[float]
    activation_sparsity: list[float]
    overall_weight_sparsity: float

    def table(self) -> str:
        rows = [
            (i, name, w, a)
            for i, (name, w, a) in enumerate(
                zip(self.layer_names, self.weight_sparsity, self.activation_sparsity)
            )
        ]
        return format_table(
            ["#", "layer", "weight sparsity", "activation sparsity"],
            rows,
            title=(
                "Fig. 6 — per-layer sparsity, "
                f"{self.overall_weight_sparsity:.1%} unstructured sparse ResNet50"
            ),
        )


def run(use_cache: bool = True) -> Fig6Result:
    trained = get_trained_model(RECIPES["sparse_resnet50"], use_cache=use_cache)
    report = sparsity_report(trained.model)
    calibration = calibrate(trained.model, trained.dataset.x_calib)
    names = list(report.per_layer)
    return Fig6Result(
        layer_names=names,
        weight_sparsity=[report.per_layer[n] for n in names],
        activation_sparsity=[
            calibration[n].mean_sparsity if n in calibration.profiles else 0.0 for n in names
        ],
        overall_weight_sparsity=report.overall,
    )
