"""Design-choice ablations called out in DESIGN.md §5.

* greedy vs random extraction — is largest-magnitude-first actually load
  bearing?  (It is: random selection drops far more magnitude.)
* decomposition-aware dataflow vs naive per-term re-fetch of B from DRAM.
* TASD-unit count vs PE-array stalls (the Little's-law sizing of §4.4).
* α sensitivity of TASD-A (accuracy / MACs trade-off around the default).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import dropped_magnitude_fraction
from repro.core.patterns import NMPattern, block_view, unblock_view
from repro.core.series import TASDConfig
from repro.hw import LayerSpec, build_model, min_units_no_stall, simulate_tasd_units
from repro.hw.accelerator import TTC
from repro.tensor.random import sparse_matrix
from repro.workloads import build_layer_specs, representative_layers, sparse_resnet50

from .reporting import format_table

__all__ = [
    "GreedyAblation",
    "ablate_greedy_extraction",
    "DataflowAblation",
    "ablate_dataflow",
    "UnitCountAblation",
    "ablate_tasd_units",
]


# --------------------------------------------------------------------------
# Greedy (largest-magnitude) extraction vs random selection
# --------------------------------------------------------------------------
def _random_view(x: np.ndarray, pattern: NMPattern, rng: np.random.Generator) -> np.ndarray:
    """Keep N *random* non-zeros per block instead of the largest ones."""
    blocks = block_view(x, pattern.m, axis=-1)
    keys = rng.random(blocks.shape)
    keys[blocks == 0.0] = np.inf  # never keep zeros
    order = np.argsort(keys, axis=-1)
    ranks = np.empty_like(order)
    np.put_along_axis(
        ranks, order,
        np.broadcast_to(np.arange(pattern.m), blocks.shape).copy(),
        axis=-1,
    )
    keep = (ranks < pattern.n) & (blocks != 0.0)
    return unblock_view(np.where(keep, blocks, 0.0), axis=-1)


@dataclass
class GreedyAblation:
    density: float
    greedy_dropped_magnitude: float
    random_dropped_magnitude: float

    @property
    def advantage(self) -> float:
        """How much more magnitude random selection loses (ratio)."""
        if self.greedy_dropped_magnitude == 0.0:
            return float("inf") if self.random_dropped_magnitude > 0 else 1.0
        return self.random_dropped_magnitude / self.greedy_dropped_magnitude


def ablate_greedy_extraction(
    density: float = 0.5, size: int = 128, seed: int = 0
) -> GreedyAblation:
    pattern = NMPattern(2, 4)
    rng = np.random.default_rng(seed)
    x = sparse_matrix(size, size, density, seed=seed)
    config = TASDConfig((pattern,))
    dec = config.apply(x, axis=-1)
    greedy_mag = dropped_magnitude_fraction(dec)
    random_term = _random_view(x, pattern, rng)
    random_mag = float(np.abs(x - random_term).sum() / np.abs(x).sum())
    return GreedyAblation(
        density=density,
        greedy_dropped_magnitude=greedy_mag,
        random_dropped_magnitude=random_mag,
    )


# --------------------------------------------------------------------------
# Decomposition-aware dataflow vs naive B re-fetch
# --------------------------------------------------------------------------
class NaiveDataflowTTC(TTC):
    """A TTC that re-fetches B from DRAM for every TASD term (no B/C reuse)."""

    def _series_counts(self, spec: LayerSpec):
        counts, density, storage = super()._series_counts(spec)
        n_terms = spec.a_config.order
        if n_terms > 1:
            counts.dram["B"] *= n_terms
            counts.dram["C"] *= 2 * n_terms - 1  # partial sums spill off-chip
        return counts, density, storage


@dataclass
class DataflowAblation:
    layer: str
    config: str
    aware_edp: float
    naive_edp: float

    @property
    def penalty(self) -> float:
        return self.naive_edp / self.aware_edp


def ablate_dataflow() -> DataflowAblation:
    wl = sparse_resnet50()
    layer = representative_layers(wl)["L3"]
    config = TASDConfig.parse("4:8+1:8")
    spec = LayerSpec(
        name=layer.name,
        m=layer.shape.out_features, k=layer.shape.reduction, n=layer.shape.spatial,
        a_density=layer.weight_density, b_density=layer.activation_density,
        a_config=config,
    )
    aware = build_model("TTC-VEGETA-M8").model.run_layer(spec)
    naive = NaiveDataflowTTC(name="TTC-naive").run_layer(spec)
    return DataflowAblation(
        layer=layer.name, config=str(config), aware_edp=aware.edp, naive_edp=naive.edp
    )


# --------------------------------------------------------------------------
# TASD-unit count vs stalls
# --------------------------------------------------------------------------
@dataclass
class UnitCountAblation:
    config: str
    rows: list[tuple[int, int, float]]  # (units, stall_cycles, busy fraction)
    little_bound: int

    def table(self) -> str:
        return format_table(
            ["units", "stall cycles", "unit busy fraction"],
            self.rows,
            title=f"TASD-unit sizing for {self.config} "
            f"(Little's-law bound: {self.little_bound} units)",
        )


def ablate_tasd_units(
    config: TASDConfig | None = None, num_blocks: int = 2048
) -> UnitCountAblation:
    config = config or TASDConfig.parse("4:8+1:8")
    bound = min_units_no_stall(config)
    rows = []
    for units in (2, 4, 8, bound, bound + 4):
        sim = simulate_tasd_units(config, num_units=units, num_blocks=num_blocks)
        rows.append((units, sim.stall_cycles, sim.unit_busy_fraction))
    return UnitCountAblation(config=str(config), rows=rows, little_bound=bound)
