"""EXP-F16 / EXP-RS — Fig. 16 & Section 5.5: TASD-W 2:4 on a real system.

The pipeline of Section 5.5 with the GPU substituted per DESIGN.md:

1. TASDER (greedy, 2:4-only menu) ranks the sparse ResNet-34's layers by
   dropped-non-zero fraction — the order in which layers should adopt 2:4.
2. For k = 0..36, the first k layers in that order run the sparse kernel:
   accuracy is measured on the trained scaled model; latency on the
   *full-size* ResNet-34 layer shapes through the TensorRT-like engine.

Expected shape: speed-up climbs toward ~1.3-1.5x while accuracy stays
within ~1.5 % of the dense baseline until nearly all layers convert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.series import TASDConfig
from repro.gpu import engine_speedup
from repro.pruning.targets import gemm_layers
from repro.tasder import TASDTransform, evaluate_transform
from repro.tasder.weight_search import weight_dropped_fraction
from repro.workloads import resnet_layers

from .reporting import format_table
from .zoo import RECIPES, get_trained_model

__all__ = ["Fig16Point", "Fig16Result", "run"]

CONFIG_2_4 = TASDConfig.parse("2:4")


@dataclass(frozen=True)
class Fig16Point:
    num_layers: int
    accuracy: float
    speedup: float


@dataclass
class Fig16Result:
    points: list[Fig16Point]
    original_accuracy: float
    batch: int

    @property
    def best_valid(self) -> Fig16Point:
        """Fastest point meeting the 99 % accuracy gate."""
        valid = [p for p in self.points if p.accuracy >= 0.99 * self.original_accuracy]
        return max(valid, key=lambda p: p.speedup)

    def table(self) -> str:
        rows = [
            (p.num_layers, p.accuracy, p.speedup, (p.speedup - 1.0))
            for p in self.points
        ]
        return format_table(
            ["#TASD layers", "top-1 accuracy", "speedup", "improvement"],
            rows,
            title=f"Fig. 16 — TASD-W 2:4 on modelled RTX 3080, sparse ResNet34 "
            f"(batch {self.batch}, dense accuracy {self.original_accuracy:.4f})",
        )


def run(use_cache: bool = True, batch: int = 32, step: int = 3) -> Fig16Result:
    trained = get_trained_model(RECIPES["sparse_resnet34"], use_cache=use_cache)
    model, dataset = trained.model, trained.dataset

    # Rank layers by how little 2:4 drops from them (the greedy order).
    layers = gemm_layers(model)
    ranked = sorted(
        (weight_dropped_fraction(layer.weight_matrix(), CONFIG_2_4), name)
        for name, layer in layers
    )
    order = [name for _, name in ranked]

    # Full-size shapes in the same forward order as the scaled model's layers.
    full_convs = [l for l in resnet_layers(34) if l.kind == "conv"]
    if len(full_convs) != len(order):
        raise RuntimeError(
            f"layer count mismatch: scaled model has {len(order)} GEMM layers, "
            f"full-size ResNet34 has {len(full_convs)}"
        )
    mini_to_full = {
        name: full_convs[i].name for i, (name, _) in enumerate(layers)
    }

    points: list[Fig16Point] = []
    ks = sorted(set(list(range(0, len(order) + 1, step)) + [len(order)]))
    for k in ks:
        chosen = order[:k]
        transform = TASDTransform(weight_configs={n: CONFIG_2_4 for n in chosen})
        accuracy = evaluate_transform(model, transform, dataset.x_eval, dataset.y_eval)
        sparse_full = {mini_to_full[n] for n in chosen}
        speedup = engine_speedup(full_convs, sparse_full, batch=batch)
        points.append(Fig16Point(num_layers=k, accuracy=accuracy, speedup=speedup))
    return Fig16Result(points=points, original_accuracy=trained.accuracy, batch=batch)
