"""EXP-F12/F13 — Figs. 12 & 13: EDP / latency / energy across designs.

Runs the four workloads (Table 4) through all six designs (Table 3) — with
per-layer results for the representative layers L1/L2/L3 and the Overall
aggregate, normalised to the dense TC — exactly the structure of Fig. 12's
bar groups and Fig. 13's latency/energy pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw import TABLE3_DESIGNS, build_model, geomean, normalize
from repro.hw.accelerator import NetworkResult
from repro.workloads import PAPER_WORKLOADS, Workload, build_layer_specs, representative_layers

from .reporting import format_table

__all__ = ["Fig12Cell", "Fig12Result", "run", "PAPER_EDP_REFERENCE"]

# Normalised EDP values quoted in the paper's text (Section 5.2) used for
# shape validation in EXPERIMENTS.md.
PAPER_EDP_REFERENCE = {
    ("Dense ResNet50", "DSTC"): 1.12,
    ("Dense BERT", "DSTC"): 2.67,
    ("Sparse ResNet50", "DSTC"): 0.13,
    ("Sparse BERT", "DSTC"): 0.45,
    ("Dense ResNet50", "TTC-STC-M4"): 0.96,
    ("Dense BERT", "TTC-STC-M4"): 0.68,
    ("Sparse ResNet50", "TTC-STC-M4"): 0.51,
    ("Sparse BERT", "TTC-STC-M4"): 0.47,
    ("Dense ResNet50", "TTC-VEGETA-M8"): 0.42,
    ("Dense BERT", "TTC-VEGETA-M8"): 0.39,
    ("Sparse ResNet50", "TTC-VEGETA-M8"): 0.17,
    ("Sparse BERT", "TTC-VEGETA-M8"): 0.18,
}


@dataclass
class Fig12Cell:
    """One (workload, design) evaluation with per-representative-layer EDP."""

    workload: str
    design: str
    edp: float
    latency: float
    energy: float
    layer_edp: dict[str, float] = field(default_factory=dict)  # L1/L2/L3 -> normalized


@dataclass
class Fig12Result:
    cells: list[Fig12Cell]
    designs: list[str]
    workloads: list[str]

    def cell(self, workload: str, design: str) -> Fig12Cell:
        for c in self.cells:
            if c.workload == workload and c.design == design:
                return c
        raise KeyError((workload, design))

    def geomean_edp(self, design: str) -> float:
        return geomean([c.edp for c in self.cells if c.design == design])

    # ------------------------------------------------------------------ #
    def edp_table(self) -> str:
        rows = []
        for wl in self.workloads:
            for label in ("L1", "L2", "L3", "Overall"):
                row: list[object] = [wl, label]
                for d in self.designs:
                    c = self.cell(wl, d)
                    row.append(c.layer_edp.get(label, c.edp) if label != "Overall" else c.edp)
                rows.append(tuple(row))
        rows.append(tuple(["Geomean", "Overall"] + [self.geomean_edp(d) for d in self.designs]))
        return format_table(
            ["Workload", "Layer"] + self.designs, rows,
            title="Fig. 12 — normalized EDP (lower is better, TC = 1.0)",
        )

    def latency_energy_table(self) -> str:
        rows = []
        for wl in self.workloads:
            for metric in ("Latency", "Energy"):
                row: list[object] = [wl, metric]
                for d in self.designs:
                    c = self.cell(wl, d)
                    row.append(c.latency if metric == "Latency" else c.energy)
                rows.append(tuple(row))
        gm_l = ["Geomean", "Latency"] + [
            geomean([self.cell(w, d).latency for w in self.workloads]) for d in self.designs
        ]
        gm_e = ["Geomean", "Energy"] + [
            geomean([self.cell(w, d).energy for w in self.workloads]) for d in self.designs
        ]
        rows.extend([tuple(gm_l), tuple(gm_e)])
        return format_table(
            ["Workload", "Metric"] + self.designs, rows,
            title="Fig. 13 — normalized latency and energy (TC = 1.0)",
        )


def _layer_results_by_name(result: NetworkResult) -> dict[str, float]:
    return {r.name: r.edp for r in result.layers}


def run(batch: int = 1) -> Fig12Result:
    workloads = PAPER_WORKLOADS(batch)
    designs = [build_model(name) for name in TABLE3_DESIGNS]
    cells: list[Fig12Cell] = []
    for wl in workloads:
        reps = representative_layers(wl)
        rep_names = {label: layer.name for label, layer in reps.items()}
        baseline = designs[0].model.run_network(build_layer_specs(wl, designs[0]))
        base_layer_edp = _layer_results_by_name(baseline)
        for design in designs:
            result = design.model.run_network(build_layer_specs(wl, design))
            norm = normalize(result, baseline)
            layer_edp = {
                label: _layer_results_by_name(result)[name] / base_layer_edp[name]
                for label, name in rep_names.items()
            }
            cells.append(
                Fig12Cell(
                    workload=wl.name,
                    design=design.name,
                    edp=norm.edp,
                    latency=norm.latency,
                    energy=norm.energy,
                    layer_edp=layer_edp,
                )
            )
    return Fig12Result(
        cells=cells,
        designs=[d.name for d in designs],
        workloads=[wl.name for wl in workloads],
    )
