"""EXP-F18 — Fig. 18 (Appendix A): matmul error vs approximated sparsity.

256x256 matrices, A at 20 % / 80 % unstructured sparsity, B dense; one-term
TASD with every N:4 and N:8 config; error = ||(A - A*)B|| / ||AB||.
Expected shapes (Appendix A's four observations): error falls with lower
approximated sparsity, falls with sparser A, and N:8 beats N:4 at equal
approximated sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import matmul_relative_error
from repro.core.series import TASDConfig
from repro.tensor.random import sparse_uniform

from .reporting import format_table

__all__ = ["Fig18Point", "Fig18Result", "run"]


@dataclass(frozen=True)
class Fig18Point:
    series_label: str  # e.g. "Unstructured 80% with N:8"
    config: str
    approximated_sparsity: float
    error: float


@dataclass
class Fig18Result:
    points: list[Fig18Point]

    def series(self, label: str) -> list[Fig18Point]:
        return sorted(
            (p for p in self.points if p.series_label == label),
            key=lambda p: p.approximated_sparsity,
        )

    def labels(self) -> list[str]:
        return sorted({p.series_label for p in self.points})

    def table(self) -> str:
        rows = [
            (p.series_label, p.config, p.approximated_sparsity, p.error)
            for label in self.labels()
            for p in self.series(label)
        ]
        return format_table(
            ["series", "config", "approx sparsity", "relative error"],
            rows,
            title="Fig. 18 — matmul error with one-term TASD (256x256, B dense)",
            float_fmt="{:.5f}",
        )


def run(size: int = 256, seed: int = 0) -> Fig18Result:
    rng = np.random.default_rng(seed)
    b = rng.uniform(0.0, 1.0, size=(size, size))
    points: list[Fig18Point] = []
    for sparsity in (0.2, 0.8):
        a = sparse_uniform((size, size), density=1.0 - sparsity, seed=rng)
        for m in (4, 8):
            label = f"Unstructured {int(sparsity * 100)}% with N:{m}"
            for n in range(1, m):  # n == m is dense (zero error, off the plot)
                config = TASDConfig.single(n, m)
                approx = config.view(a, axis=-1)
                err = matmul_relative_error(a, approx, b)
                points.append(
                    Fig18Point(label, str(config), config.approximated_sparsity, err)
                )
    return Fig18Result(points=points)
