"""Trained-model registry for the experiments, with on-disk caching.

Experiments that need real accuracy (Figs. 14, 16, 20) train scaled models
on the synthetic tasks once and cache the weights under ``.cache/models/``
in the repository root, keyed by a recipe fingerprint — so benches are fast
after the first run and fully deterministic (fixed seeds everywhere).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.nn import Adam, Dataset, evaluate_accuracy, synthetic_images, synthetic_tokens, train_classifier
from repro.nn.module import Module
from repro.nn.models import (
    BertEncoder,
    ConvNeXt,
    ResNet,
    VGG,
    VisionTransformer,
)
from repro.pruning import prune_and_finetune, sparsity_report

__all__ = ["TrainedModel", "ModelRecipe", "get_trained_model", "RECIPES", "cache_dir"]


def cache_dir() -> Path:
    path = Path(__file__).resolve().parents[3] / ".cache" / "models"
    path.mkdir(parents=True, exist_ok=True)
    return path


@dataclass(frozen=True)
class ModelRecipe:
    """How to build + train one experiment model (all seeds fixed)."""

    name: str
    family: str  # resnet | vgg | bert | vit | convnext
    depth: int = 18
    base_width: int = 8
    image_size: int = 16
    epochs: int = 5
    lr: float = 2e-3
    noise: float = 0.55
    sparsity: float = 0.0  # >0: iterative magnitude prune + fine-tune
    finetune_epochs: int = 2
    prune_steps: tuple[float, ...] | None = None  # custom sparsity ladder
    seed: int = 0

    def fingerprint(self) -> str:
        blob = json.dumps(self.__dict__, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]


@dataclass
class TrainedModel:
    """A trained (optionally pruned) model plus its task data and metrics."""

    recipe: ModelRecipe
    model: Module
    dataset: Dataset
    accuracy: float
    weight_sparsity: float


def _build(recipe: ModelRecipe) -> tuple[Module, Dataset]:
    rng = np.random.default_rng(recipe.seed)
    if recipe.family == "bert":
        dataset = synthetic_tokens(n_train=512, n_eval=256, n_calib=64, seed=recipe.seed)
        model: Module = BertEncoder(rng=rng)
        return model, dataset
    dataset = synthetic_images(
        n_train=512, n_eval=256, n_calib=64,
        size=recipe.image_size, noise=recipe.noise, seed=recipe.seed,
    )
    if recipe.family == "resnet":
        model = ResNet(depth=recipe.depth, base_width=recipe.base_width, rng=rng)
    elif recipe.family == "vgg":
        model = VGG(depth=recipe.depth, base_width=recipe.base_width, rng=rng)
    elif recipe.family == "vit":
        model = VisionTransformer(image_size=recipe.image_size, rng=rng)
    elif recipe.family == "convnext":
        model = ConvNeXt(base_width=recipe.base_width, rng=rng)
    else:
        raise ValueError(f"unknown family {recipe.family!r}")
    return model, dataset


def get_trained_model(recipe: ModelRecipe, use_cache: bool = True) -> TrainedModel:
    """Train (or load) the model a recipe describes."""
    model, dataset = _build(recipe)
    cache_file = cache_dir() / f"{recipe.name}-{recipe.fingerprint()}.npz"
    if use_cache and cache_file.exists():
        blob = np.load(cache_file)
        model.load_state_dict({k: blob[k] for k in blob.files})
    else:
        train_classifier(
            model, dataset.x_train, dataset.y_train,
            epochs=recipe.epochs, optimizer=Adam(model, lr=recipe.lr), seed=recipe.seed,
        )
        if recipe.sparsity > 0.0:
            prune_and_finetune(
                model, dataset.x_train, dataset.y_train,
                sparsity=recipe.sparsity, steps=recipe.prune_steps,
                finetune_epochs=recipe.finetune_epochs, lr=1.5e-3,
                seed=recipe.seed,
            )
        if use_cache:
            np.savez_compressed(cache_file, **model.state_dict())
    accuracy = evaluate_accuracy(model, dataset.x_eval, dataset.y_eval)
    overall = sparsity_report(model).overall if recipe.sparsity > 0 else 0.0
    return TrainedModel(
        recipe=recipe, model=model, dataset=dataset,
        accuracy=accuracy, weight_sparsity=overall,
    )


# Recipes used across the experiment suite (names match the paper's zoo).
RECIPES: dict[str, ModelRecipe] = {
    "resnet18": ModelRecipe("resnet18", "resnet", depth=18),
    "resnet34": ModelRecipe("resnet34", "resnet", depth=34),
    "resnet50": ModelRecipe("resnet50", "resnet", depth=50, base_width=16, epochs=8, noise=0.5),
    "vgg11": ModelRecipe("vgg11", "vgg", depth=11, image_size=32),
    "vgg16": ModelRecipe("vgg16", "vgg", depth=16, image_size=32, epochs=7),
    "vit": ModelRecipe("vit", "vit", epochs=10, lr=1e-3),
    "convnext": ModelRecipe("convnext", "convnext", epochs=6),
    "bert": ModelRecipe("bert", "bert", epochs=5),
    "sparse_resnet18": ModelRecipe("sparse_resnet18", "resnet", depth=18, sparsity=0.90),
    "sparse_resnet34": ModelRecipe("sparse_resnet34", "resnet", depth=34, sparsity=0.90),
    # The paper's SparseZoo ResNet-50 is 95 % sparse; the width-scaled
    # substitute lacks that over-parameterization margin, so its sparse
    # variant targets 90 % (recorded as a substitution in EXPERIMENTS.md).
    "sparse_resnet50": ModelRecipe(
        "sparse_resnet50", "resnet", depth=50, base_width=16, epochs=8, noise=0.5,
        sparsity=0.90, prune_steps=(0.4, 0.6, 0.75, 0.85, 0.90), finetune_epochs=4,
    ),
    "sparse_vgg11": ModelRecipe("sparse_vgg11", "vgg", depth=11, image_size=32, sparsity=0.90),
    "sparse_vgg16": ModelRecipe("sparse_vgg16", "vgg", depth=16, image_size=32, epochs=7, sparsity=0.90),
    "sparse_bert": ModelRecipe("sparse_bert", "bert", sparsity=0.85),
}
