"""Plain-text tables for experiment output (what the benches print)."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as an aligned ASCII table."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    xs: Sequence[float], ys: Sequence[float], x_label: str, y_label: str, title: str | None = None
) -> str:
    """Render an (x, y) series as two aligned columns."""
    rows = list(zip(xs, ys))
    return format_table([x_label, y_label], rows, title=title, float_fmt="{:.4f}")
