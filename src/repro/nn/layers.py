"""Trainable layers: Linear, Conv2d, normalisation, pooling, activations.

Every layer implements forward and backward explicitly (no autograd).  The
two compute-heavy layers — :class:`Linear` and :class:`Conv2d` — are the
TASD targets: both lower to GEMM, expose their reduction-axis weight matrix
via ``weight_matrix()``, and accept an optional *effective weight* override
that the TASDER transform uses to run inference with decomposed weights.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .im2col import GemmShape, col2im, conv_gemm_shape, im2col
from .module import Module, Parameter

__all__ = [
    "Linear",
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm2d",
    "LayerNorm",
    "Activation",
    "ReLU",
    "GELU",
    "SiLU",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Embedding",
]


def _kaiming(rng: np.random.Generator, fan_in: int, shape: tuple[int, ...]) -> np.ndarray:
    return rng.normal(0.0, np.sqrt(2.0 / max(1, fan_in)), size=shape)


class _GemmLayer(Module):
    """Shared machinery for layers that lower to GEMM (Linear / Conv2d).

    ``effective_weight`` holds a (possibly decomposed/approximated) weight
    matrix used in place of the trained one during inference — the mechanism
    behind the paper's TFC/TCONV layers.  Training always uses the true
    parameter.

    ``compiled_plan`` is the runtime's fast path: when a
    :class:`repro.runtime.plan.LayerPlan` is attached, eval-mode forwards
    route their GEMM through the plan's pre-compressed structured kernels
    instead of re-decomposing per call.  Training ignores it.
    """

    def __init__(self) -> None:
        super().__init__()
        self.effective_weight: np.ndarray | None = None
        self.compiled_plan = None  # LayerPlan | None (duck-typed; no nn→runtime import)

    # Overridden by subclasses -------------------------------------------------
    def weight_matrix(self) -> np.ndarray:
        """The (out_features, reduction) weight matrix the GEMM uses.

        TASD decomposes along axis -1 of this matrix (the reduction/K axis),
        matching how N:M hardware blocks the dot-product dimension.
        """
        raise NotImplementedError

    def set_effective_weight(self, w: np.ndarray | None) -> None:
        if w is not None and w.shape != self.weight_matrix().shape:
            raise ValueError(
                f"effective weight shape {w.shape} != {self.weight_matrix().shape}"
            )
        self.effective_weight = None if w is None else np.asarray(w)

    def set_compiled_plan(self, plan) -> None:
        """Attach (or detach, with ``None``) a compiled runtime layer plan."""
        if plan is not None:
            expected = self.weight_matrix().shape
            got = (plan.out_features, plan.reduction)
            if got != expected:
                raise ValueError(f"plan GEMM shape {got} != layer weight shape {expected}")
        self.compiled_plan = plan

    def _plan_active(self) -> bool:
        return self.compiled_plan is not None and not self.training

    def _active_weight(self) -> np.ndarray:
        if not self.training and self.effective_weight is not None:
            return self.effective_weight
        return self.weight_matrix()

    def gemm_shape(self, batch: int) -> GemmShape:
        raise NotImplementedError


class Linear(_GemmLayer):
    """Fully-connected layer ``y = x @ W.T + b`` (an FC layer of the paper).

    Accepts inputs of any leading shape; the last axis is the feature axis.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming(rng, in_features, (out_features, in_features)), "weight")
        self.bias = Parameter(np.zeros(out_features), "bias") if bias else None
        self._x: np.ndarray | None = None

    def weight_matrix(self) -> np.ndarray:
        return self.weight.data

    def gemm_shape(self, batch: int) -> GemmShape:
        return GemmShape(m=batch, k=self.in_features, n=self.out_features)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        if self._plan_active():
            plan = self.compiled_plan
            x_eff = plan.transform_input(x)
            x2 = x_eff.reshape(-1, self.in_features)
            y = plan.gemm(x2).reshape(*x.shape[:-1], self.out_features)
        else:
            w = self._active_weight()
            y = x @ w.T
        if self.bias is not None:
            y = y + self.bias.data
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x = self._x
        g2 = grad.reshape(-1, self.out_features)
        x2 = x.reshape(-1, self.in_features)
        self.weight.grad += g2.T @ x2
        if self.bias is not None:
            self.bias.grad += g2.sum(axis=0)
        return (g2 @ self.weight.data).reshape(x.shape)


class Conv2d(_GemmLayer):
    """2-D convolution over NCHW inputs, lowered to GEMM via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            _kaiming(rng, fan_in, (out_channels, in_channels, kernel_size, kernel_size)),
            "weight",
        )
        self.bias = Parameter(np.zeros(out_channels), "bias") if bias else None
        self._cols: np.ndarray | None = None
        self._input_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def weight_matrix(self) -> np.ndarray:
        return self.weight.data.reshape(self.out_channels, -1)

    def gemm_shape(self, batch: int, height: int | None = None, width: int | None = None) -> GemmShape:
        if height is None or width is None:
            if self._input_shape is None:
                raise ValueError("run a forward pass or pass height/width explicitly")
            _, _, height, width = self._input_shape
        return conv_gemm_shape(
            batch, self.in_channels, height, width, self.out_channels,
            self.kernel_size, self.stride, self.padding,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        b = x.shape[0]
        self._input_shape = x.shape
        use_plan = self._plan_active()
        if use_plan:
            # Dynamic TASD-A decomposes the NCHW map along channels,
            # before im2col spreads them across the reduction axis.
            x = self.compiled_plan.transform_input(x)
        cols, (oh, ow) = im2col(x, self.kernel_size, self.stride, self.padding)
        self._cols = cols
        self._out_hw = (oh, ow)
        if use_plan:
            y = self.compiled_plan.gemm(cols)  # (b*oh*ow, out_ch)
        else:
            w = self._active_weight()  # (out_ch, c*k*k)
            y = cols @ w.T  # (b*oh*ow, out_ch)
        if self.bias is not None:
            y = y + self.bias.data
        return y.reshape(b, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        b, _, oh, ow = grad.shape
        g2 = grad.transpose(0, 2, 3, 1).reshape(b * oh * ow, self.out_channels)
        self.weight.grad += (g2.T @ self._cols).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += g2.sum(axis=0)
        dcols = g2 @ self.weight.data.reshape(self.out_channels, -1)
        return col2im(dcols, self._input_shape, self.kernel_size, self.stride, self.padding)


class DepthwiseConv2d(Module):
    """Per-channel (depthwise) convolution, used by ConvNeXt blocks.

    Not a TASD target: its reduction dimension is only ``k*k`` and the paper
    restricts decomposition to CONV/FC GEMMs.
    """

    def __init__(self, channels: int, kernel_size: int, padding: int = 0, rng=None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.channels = channels
        self.kernel_size = kernel_size
        self.padding = padding
        fan_in = kernel_size * kernel_size
        self.weight = Parameter(_kaiming(rng, fan_in, (channels, kernel_size, kernel_size)), "weight")
        self.bias = Parameter(np.zeros(channels), "bias")
        self._windows: np.ndarray | None = None
        self._input_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, c, h, w = x.shape
        self._input_shape = x.shape
        k, p = self.kernel_size, self.padding
        xp = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p))) if p else x
        oh, ow = h + 2 * p - k + 1, w + 2 * p - k + 1
        sb, sc, sh, sw = xp.strides
        windows = np.lib.stride_tricks.as_strided(
            xp, shape=(b, c, oh, ow, k, k), strides=(sb, sc, sh, sw, sh, sw), writeable=False
        )
        self._windows = windows
        y = np.einsum("bcijuv,cuv->bcij", windows, self.weight.data, optimize=True)
        return y + self.bias.data[None, :, None, None]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.weight.grad += np.einsum("bcij,bcijuv->cuv", grad, self._windows, optimize=True)
        self.bias.grad += grad.sum(axis=(0, 2, 3))
        k = self.kernel_size
        b, c, oh, ow = grad.shape
        # dcols[b, i, j, c, u, v] = grad[b,c,i,j] * w[c,u,v], then im2col adjoint.
        dcols = np.einsum("bcij,cuv->bijcuv", grad, self.weight.data, optimize=True)
        dcols = dcols.reshape(b * oh * ow, c * k * k)
        return col2im(dcols, self._input_shape, k, stride=1, padding=self.padding)


class BatchNorm2d(Module):
    """Batch normalisation over NCHW feature maps with running statistics."""

    buffer_names = ("running_mean", "running_var")

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(channels), "gamma")
        self.beta = Parameter(np.zeros(channels), "beta")
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean += self.momentum * (mean - self.running_mean)
            self.running_var += self.momentum * (var - self.running_var)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std, x.shape)
        return self.gamma.data[None, :, None, None] * x_hat + self.beta.data[None, :, None, None]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_hat, inv_std, shape = self._cache
        b, _, h, w = shape
        n = b * h * w
        self.gamma.grad += (grad * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad.sum(axis=(0, 2, 3))
        g = grad * self.gamma.data[None, :, None, None]
        if not self.training:
            return g * inv_std[None, :, None, None]
        # Standard batch-norm backward: dx = inv_std/n * (n*g - Σg - x_hat Σ(g x_hat))
        sum_g = g.sum(axis=(0, 2, 3))[None, :, None, None]
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3))[None, :, None, None]
        return (inv_std[None, :, None, None] / n) * (n * g - sum_g - x_hat * sum_gx)


class LayerNorm(Module):
    """Layer normalisation over the trailing feature axis."""

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.features = features
        self.eps = eps
        self.gamma = Parameter(np.ones(features), "gamma")
        self.beta = Parameter(np.zeros(features), "beta")
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return self.gamma.data * x_hat + self.beta.data

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_hat, inv_std = self._cache
        d = self.features
        axes = tuple(range(grad.ndim - 1))
        self.gamma.grad += (grad * x_hat).sum(axis=axes)
        self.beta.grad += grad.sum(axis=axes)
        g = grad * self.gamma.data
        sum_g = g.sum(axis=-1, keepdims=True)
        sum_gx = (g * x_hat).sum(axis=-1, keepdims=True)
        return (inv_std / d) * (d * g - sum_g - x_hat * sum_gx)


class Activation(Module):
    """Pointwise non-linearity from :data:`repro.nn.functional.ACTIVATIONS`.

    The paper's TASD layers attach right after these (Fig. 8), so the module
    records the sparsity of its most recent output for calibration.
    """

    def __init__(self, kind: str = "relu") -> None:
        super().__init__()
        if kind not in F.ACTIVATIONS:
            raise ValueError(f"unknown activation {kind!r}; options: {sorted(F.ACTIVATIONS)}")
        self.kind = kind
        self._fwd, self._grad, self.induces_zeros = F.ACTIVATIONS[kind]
        self._x: np.ndarray | None = None
        self.last_output_sparsity: float | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        y = self._fwd(x)
        self.last_output_sparsity = 1.0 - np.count_nonzero(y) / y.size if y.size else 0.0
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._grad(self._x)


def ReLU() -> Activation:
    return Activation("relu")


def GELU() -> Activation:
    return Activation("gelu")


def SiLU() -> Activation:
    return Activation("silu")


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel == stride, dims divisible)."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(f"spatial dims {(h, w)} not divisible by pool size {k}")
        tiles = x.reshape(b, c, h // k, k, w // k, k).transpose(0, 1, 2, 4, 3, 5)
        flat = tiles.reshape(b, c, h // k, w // k, k * k)
        arg = flat.argmax(axis=-1)
        self._cache = (arg, x.shape)
        return np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        arg, (b, c, h, w) = self._cache
        k = self.kernel_size
        flat = np.zeros((b, c, h // k, w // k, k * k), dtype=grad.dtype)
        np.put_along_axis(flat, arg[..., None], grad[..., None], axis=-1)
        tiles = flat.reshape(b, c, h // k, w // k, k, k).transpose(0, 1, 2, 4, 3, 5)
        return tiles.reshape(b, c, h, w)


class GlobalAvgPool2d(Module):
    """Global average pooling NCHW -> NC."""

    def __init__(self) -> None:
        super().__init__()
        self._hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._hw = x.shape[2:]
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        h, w = self._hw
        return np.broadcast_to(grad[:, :, None, None], grad.shape + (h, w)) / (h * w)


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class Dropout(Module):
    """Inverted dropout; identity at eval time."""

    def __init__(self, p: float = 0.1, rng=None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        self._mask = (self.rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class Embedding(Module):
    """Token embedding lookup (BERT substrate)."""

    def __init__(self, vocab_size: int, dim: int, rng=None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(vocab_size, dim)), "weight")
        self._ids: np.ndarray | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        self._ids = np.asarray(ids)
        return self.weight.data[self._ids]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        np.add.at(self.weight.grad, self._ids.ravel(), grad.reshape(-1, self.dim))
        return grad  # no gradient flows to integer ids
