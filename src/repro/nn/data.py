"""Procedural synthetic datasets (the ImageNet / GLUE substitution).

Each class has a distinct, learnable generative signature plus noise, so
small CNNs/transformers reach high accuracy quickly — which is exactly what
the TASDER experiments need: a real accuracy number that degrades when the
approximation gets too aggressive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Dataset", "synthetic_images", "synthetic_tokens"]


@dataclass(frozen=True)
class Dataset:
    """Train/eval/calibration splits of one synthetic task."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_eval: np.ndarray
    y_eval: np.ndarray
    x_calib: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(self.y_train.max()) + 1


def _image_batch(
    n: int, num_classes: int, size: int, channels: int, noise: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Images whose class controls the orientation/frequency of a sinusoid
    grating plus a class-positioned Gaussian blob — separable but not
    trivially so under noise."""
    y = rng.integers(0, num_classes, size=n)
    coords = np.arange(size)
    xx, yy = np.meshgrid(coords, coords, indexing="ij")
    x = np.empty((n, channels, size, size))
    for cls in range(num_classes):
        sel = np.flatnonzero(y == cls)
        if sel.size == 0:
            continue
        theta = np.pi * cls / num_classes
        freq = 2.0 * np.pi * (1.0 + cls % 3) / size
        grating = np.sin(freq * (np.cos(theta) * xx + np.sin(theta) * yy))
        cx = (cls * 7919) % size
        cy = (cls * 104729) % size
        blob = np.exp(-(((xx - cx) ** 2 + (yy - cy) ** 2) / (2.0 * (size / 4.0) ** 2)))
        base = grating + blob
        phase = rng.uniform(-0.3, 0.3, size=(sel.size, 1, 1, 1))
        x[sel] = base[None, None] * (1.0 + phase)
    x += noise * rng.normal(size=x.shape)
    return x, y


def synthetic_images(
    n_train: int = 512,
    n_eval: int = 256,
    n_calib: int = 64,
    num_classes: int = 10,
    size: int = 16,
    channels: int = 3,
    noise: float = 0.35,
    seed: int = 0,
) -> Dataset:
    """The CNN/ViT classification task used throughout the experiments."""
    rng = np.random.default_rng(seed)
    x_tr, y_tr = _image_batch(n_train, num_classes, size, channels, noise, rng)
    x_ev, y_ev = _image_batch(n_eval, num_classes, size, channels, noise, rng)
    x_cal, _ = _image_batch(n_calib, num_classes, size, channels, noise, rng)
    return Dataset(x_tr, y_tr, x_ev, y_ev, x_cal)


def _token_batch(
    n: int, num_classes: int, seq_len: int, vocab: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sequences whose class plants a 3-token motif at random positions over
    background noise tokens — a synthetic 'key phrase' detection task."""
    y = rng.integers(0, num_classes, size=n)
    ids = rng.integers(num_classes * 3, vocab, size=(n, seq_len))
    # Each class owns tokens [3c, 3c+1, 3c+2]; plant the motif twice.
    for cls in range(num_classes):
        sel = np.flatnonzero(y == cls)
        if sel.size == 0:
            continue
        motif = np.array([3 * cls, 3 * cls + 1, 3 * cls + 2])
        for start_col in (rng.integers(0, seq_len - 3), rng.integers(0, seq_len - 3)):
            ids[sel, start_col : start_col + 3] = motif
    return ids, y


def synthetic_tokens(
    n_train: int = 512,
    n_eval: int = 256,
    n_calib: int = 64,
    num_classes: int = 4,
    seq_len: int = 16,
    vocab: int = 64,
    seed: int = 0,
) -> Dataset:
    """The transformer sequence-classification task (BERT substitute)."""
    rng = np.random.default_rng(seed)
    x_tr, y_tr = _token_batch(n_train, num_classes, seq_len, vocab, rng)
    x_ev, y_ev = _token_batch(n_eval, num_classes, seq_len, vocab, rng)
    x_cal, _ = _token_batch(n_calib, num_classes, seq_len, vocab, rng)
    return Dataset(x_tr, y_tr, x_ev, y_ev, x_cal)
