"""im2col / col2im: convolution as GEMM.

The paper applies TASD only to CONV and FC layers because both lower to
matrix multiplication (Section 4.1, "using algorithms such as im2col").
This module performs that lowering, and also *derives* the GEMM dimensions
analytically — which is how the workload suite obtains full-size layer
shapes (Table 4) without running full-size forward passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["conv_out_size", "GemmShape", "conv_gemm_shape", "im2col", "col2im"]


def conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


@dataclass(frozen=True)
class GemmShape:
    """Dimensions of the GEMM a layer lowers to: C[M,N] = A[M,K] @ B[K,N].

    Follows the paper's Table 4 convention: M = output spatial positions x
    batch (or tokens), K = reduction (in_ch * kh * kw, or input features),
    N = output channels / features.
    """

    m: int
    k: int
    n: int

    @property
    def macs(self) -> int:
        """Dense multiply-accumulate count."""
        return self.m * self.k * self.n

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"M{self.m}-N{self.n}-K{self.k}"


def conv_gemm_shape(
    batch: int,
    in_ch: int,
    height: int,
    width: int,
    out_ch: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> GemmShape:
    """GEMM dimensions of a conv layer after im2col lowering."""
    oh = conv_out_size(height, kernel, stride, padding)
    ow = conv_out_size(width, kernel, stride, padding)
    return GemmShape(m=batch * oh * ow, k=in_ch * kernel * kernel, n=out_ch)


def im2col(
    x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> tuple[np.ndarray, tuple[int, int]]:
    """Lower NCHW input patches to a column matrix.

    Returns ``(cols, (oh, ow))`` where ``cols`` has shape
    ``(batch * oh * ow, in_ch * kernel * kernel)`` — one row per output
    position, matching :class:`GemmShape`'s M x K operand.
    """
    b, c, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, padding)
    ow = conv_out_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # Strided window view: (b, c, oh, ow, kernel, kernel), zero-copy.
    sb, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(b, c, oh, ow, kernel, kernel),
        strides=(sb, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # -> (b, oh, ow, c, kh, kw) -> (b*oh*ow, c*k*k)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(b * oh * ow, c * kernel * kernel)
    return np.ascontiguousarray(cols), (oh, ow)


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Scatter-add column gradients back to input layout (im2col adjoint)."""
    b, c, h, w = input_shape
    oh = conv_out_size(h, kernel, stride, padding)
    ow = conv_out_size(w, kernel, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    grad_padded = np.zeros((b, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(b, oh, ow, c, kernel, kernel).transpose(0, 3, 1, 2, 4, 5)
    # Accumulate each kernel offset in one vectorised slice-add.
    for ki in range(kernel):
        for kj in range(kernel):
            grad_padded[:, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride] += cols6[
                :, :, :, :, ki, kj
            ]
    if padding > 0:
        return grad_padded[:, :, padding : padding + h, padding : padding + w]
    return grad_padded
