"""ConvNeXt (Liu et al., 2022a) — a GELU CNN for Fig. 20's TASD-A zoo."""

from __future__ import annotations

import numpy as np

from ..blocks import ConvNeXtBlock
from ..layers import Conv2d, GlobalAvgPool2d, LayerNorm, Linear
from ..module import Module, Sequential

__all__ = ["ConvNeXt", "convnext_tiny"]


class _ChannelsLastLayerNorm(Module):
    """LayerNorm applied across channels of an NCHW tensor."""

    def __init__(self, channels: int) -> None:
        super().__init__()
        self.norm = LayerNorm(channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.norm(x.transpose(0, 2, 3, 1)).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.norm.backward(grad.transpose(0, 2, 3, 1)).transpose(0, 3, 1, 2)


class ConvNeXt(Module):
    """ConvNeXt-Tiny topology ([3,3,9,3] blocks), width-scaled.

    The patchify stem and downsample layers are strided convs; block MLPs
    are channels-last Linears (TFC targets for TASD-A).
    """

    def __init__(
        self,
        num_classes: int = 10,
        base_width: int = 16,
        depths: tuple[int, ...] = (3, 3, 9, 3),
        in_channels: int = 3,
        patch: int = 2,
        rng=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        widths = [base_width * (2**i) for i in range(len(depths))]
        self.stem = Sequential(
            Conv2d(in_channels, widths[0], patch, patch, 0, rng=rng),
            _ChannelsLastLayerNorm(widths[0]),
        )
        stages: list[Module] = []
        for i, depth in enumerate(depths):
            if i > 0:
                stages.append(_ChannelsLastLayerNorm(widths[i - 1]))
                stages.append(Conv2d(widths[i - 1], widths[i], 2, 2, 0, rng=rng))
            for _ in range(depth):
                stages.append(ConvNeXtBlock(widths[i], rng=rng))
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.norm = LayerNorm(widths[-1])
        self.head = Linear(widths[-1], num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.head(self.norm(self.pool(self.stages(self.stem(x)))))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.pool.backward(self.norm.backward(self.head.backward(grad)))
        return self.stem.backward(self.stages.backward(g))


def convnext_tiny(**kwargs) -> ConvNeXt:
    return ConvNeXt(**kwargs)
