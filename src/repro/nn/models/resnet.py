"""ResNet family (He et al., 2016) — the paper's main CNN workload.

Depth/topology matches the original family (18/34 use BasicBlock,
50/101 use BottleneckBlock with the same stage layout); width and input
size are scaled down so the NumPy substrate can train them, per the
substitution note in DESIGN.md.  Full-size GEMM shapes for the hardware
model come from :mod:`repro.workloads`, not from these instances.
"""

from __future__ import annotations

import numpy as np

from ..blocks import BasicBlock, BottleneckBlock
from ..layers import Activation, BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear
from ..module import Module, Sequential

__all__ = ["ResNet", "resnet18", "resnet34", "resnet50", "resnet101"]

_STAGES = {
    18: ([2, 2, 2, 2], BasicBlock),
    34: ([3, 4, 6, 3], BasicBlock),
    50: ([3, 4, 6, 3], BottleneckBlock),
    101: ([3, 4, 23, 3], BottleneckBlock),
}


class ResNet(Module):
    """A width-scaled ResNet over small inputs (CIFAR-style 3x3 stem)."""

    def __init__(
        self,
        depth: int = 18,
        num_classes: int = 10,
        base_width: int = 16,
        in_channels: int = 3,
        rng=None,
    ) -> None:
        super().__init__()
        if depth not in _STAGES:
            raise ValueError(f"unsupported depth {depth}; options: {sorted(_STAGES)}")
        rng = rng or np.random.default_rng(0)
        stage_blocks, block_cls = _STAGES[depth]
        self.depth = depth
        self.stem = Sequential(
            Conv2d(in_channels, base_width, 3, 1, 1, bias=False, rng=rng),
            BatchNorm2d(base_width),
            Activation("relu"),
        )
        layers: list[Module] = []
        in_ch = base_width
        width = base_width
        for stage_idx, n_blocks in enumerate(stage_blocks):
            stride = 1 if stage_idx == 0 else 2
            for block_idx in range(n_blocks):
                block = block_cls(in_ch, width, stride if block_idx == 0 else 1, rng=rng)
                layers.append(block)
                in_ch = width * block_cls.expansion
            width *= 2
        self.body = Sequential(*layers)
        self.pool = GlobalAvgPool2d()
        self.head = Linear(in_ch, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.head(self.pool(self.body(self.stem(x))))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.stem.backward(self.body.backward(self.pool.backward(self.head.backward(grad))))


def resnet18(**kwargs) -> ResNet:
    return ResNet(depth=18, **kwargs)


def resnet34(**kwargs) -> ResNet:
    return ResNet(depth=34, **kwargs)


def resnet50(**kwargs) -> ResNet:
    return ResNet(depth=50, **kwargs)


def resnet101(**kwargs) -> ResNet:
    return ResNet(depth=101, **kwargs)
