"""Small MLP — fast substrate for unit tests and search-algorithm checks."""

from __future__ import annotations

import numpy as np

from ..layers import Activation, Linear
from ..module import Module, Sequential

__all__ = ["MLP"]


class MLP(Module):
    """Plain feed-forward classifier over flat feature vectors."""

    def __init__(
        self,
        in_features: int,
        hidden: tuple[int, ...] = (64, 64),
        num_classes: int = 10,
        activation: str = "relu",
        rng=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        layers: list[Module] = []
        prev = in_features
        for width in hidden:
            layers.append(Linear(prev, width, rng=rng))
            layers.append(Activation(activation))
            prev = width
        layers.append(Linear(prev, num_classes, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.net.backward(grad)
