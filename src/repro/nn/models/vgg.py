"""VGG family (Fig. 20 workloads), width-scaled for the NumPy substrate."""

from __future__ import annotations

import numpy as np

from ..layers import Activation, BatchNorm2d, Conv2d, Flatten, GlobalAvgPool2d, Linear, MaxPool2d
from ..module import Module, Sequential

__all__ = ["VGG", "vgg11", "vgg16"]

# Channel multipliers per stage; "M" marks max-pool, numbers are conv widths
# relative to base_width (the canonical 64/128/256/512 plan divided by 64).
_PLANS = {
    11: [1, "M", 2, "M", 4, 4, "M", 8, 8, "M", 8, 8, "M"],
    16: [1, 1, "M", 2, 2, "M", 4, 4, 4, "M", 8, 8, 8, "M", 8, 8, 8, "M"],
}


class VGG(Module):
    """VGG-11/16 with batch norm and a single linear classifier head."""

    def __init__(
        self,
        depth: int = 11,
        num_classes: int = 10,
        base_width: int = 16,
        in_channels: int = 3,
        rng=None,
    ) -> None:
        super().__init__()
        if depth not in _PLANS:
            raise ValueError(f"unsupported depth {depth}; options: {sorted(_PLANS)}")
        rng = rng or np.random.default_rng(0)
        self.depth = depth
        layers: list[Module] = []
        in_ch = in_channels
        for item in _PLANS[depth]:
            if item == "M":
                layers.append(MaxPool2d(2))
            else:
                out_ch = int(item) * base_width
                layers.append(Conv2d(in_ch, out_ch, 3, 1, 1, bias=False, rng=rng))
                layers.append(BatchNorm2d(out_ch))
                layers.append(Activation("relu"))
                in_ch = out_ch
        self.features = Sequential(*layers)
        self.pool = GlobalAvgPool2d()
        self.head = Linear(in_ch, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.head(self.pool(self.features(x)))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.features.backward(self.pool.backward(self.head.backward(grad)))


def vgg11(**kwargs) -> VGG:
    return VGG(depth=11, **kwargs)


def vgg16(**kwargs) -> VGG:
    return VGG(depth=16, **kwargs)
