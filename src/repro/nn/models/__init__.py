"""Model zoo: the architectures the paper evaluates, width-scaled."""

from .bert import BertEncoder, bert_mini
from .convnext import ConvNeXt, convnext_tiny
from .mlp import MLP
from .resnet import ResNet, resnet18, resnet34, resnet50, resnet101
from .vgg import VGG, vgg11, vgg16
from .vit import VisionTransformer, vit_tiny

__all__ = [
    "ResNet",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet101",
    "VGG",
    "vgg11",
    "vgg16",
    "BertEncoder",
    "bert_mini",
    "VisionTransformer",
    "vit_tiny",
    "ConvNeXt",
    "convnext_tiny",
    "MLP",
]
