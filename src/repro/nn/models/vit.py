"""Vision Transformer (ViT-B/16 topology, width-scaled) for Fig. 20's zoo."""

from __future__ import annotations

import numpy as np

from ..blocks import TransformerEncoderBlock
from ..layers import LayerNorm, Linear
from ..module import Module, Parameter

__all__ = ["VisionTransformer", "vit_tiny"]


class VisionTransformer(Module):
    """Patchify via a linear projection, encoder stack, mean-pool classifier."""

    def __init__(
        self,
        image_size: int = 16,
        patch_size: int = 4,
        dim: int = 32,
        num_layers: int = 4,
        num_heads: int = 4,
        num_classes: int = 10,
        in_channels: int = 3,
        rng=None,
    ) -> None:
        super().__init__()
        if image_size % patch_size:
            raise ValueError(f"image size {image_size} not divisible by patch {patch_size}")
        rng = rng or np.random.default_rng(0)
        self.patch_size = patch_size
        self.grid = image_size // patch_size
        self.num_patches = self.grid * self.grid
        self.patch_dim = in_channels * patch_size * patch_size
        self.embed = Linear(self.patch_dim, dim, rng=rng)
        self.pos = Parameter(rng.normal(0.0, 0.02, size=(self.num_patches, dim)), "pos")
        self.blocks = [
            TransformerEncoderBlock(dim, num_heads, activation="gelu", rng=rng)
            for _ in range(num_layers)
        ]
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng=rng)
        self._img_shape: tuple | None = None

    def _patchify(self, x: np.ndarray) -> np.ndarray:
        b, c, h, w = x.shape
        p = self.patch_size
        g = self.grid
        patches = x.reshape(b, c, g, p, g, p).transpose(0, 2, 4, 1, 3, 5)
        return patches.reshape(b, g * g, c * p * p)

    def _unpatchify(self, grad: np.ndarray) -> np.ndarray:
        b, c, h, w = self._img_shape
        p, g = self.patch_size, self.grid
        grad = grad.reshape(b, g, g, c, p, p).transpose(0, 3, 1, 4, 2, 5)
        return grad.reshape(b, c, h, w)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._img_shape = x.shape
        tokens = self.embed(self._patchify(x)) + self.pos.data
        for block in self.blocks:
            tokens = block(tokens)
        tokens = self.norm(tokens)
        return self.head(tokens.mean(axis=1))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.head.backward(grad)
        g = np.broadcast_to(g[:, None, :], (g.shape[0], self.num_patches, g.shape[1]))
        g = self.norm.backward(np.ascontiguousarray(g) / self.num_patches)
        for block in reversed(self.blocks):
            g = block.backward(g)
        self.pos.grad += g.sum(axis=0)
        return self._unpatchify(self.embed.backward(g))


def vit_tiny(**kwargs) -> VisionTransformer:
    return VisionTransformer(**kwargs)
