"""BERT-style transformer encoder for sequence classification.

The paper's transformer workload.  GELU activations make it the showcase
for TASD-A's pseudo-density heuristic (Section 4.3): activations are dense
but magnitude-skewed.
"""

from __future__ import annotations

import numpy as np

from ..blocks import TransformerEncoderBlock
from ..layers import Embedding, LayerNorm, Linear
from ..module import Module, Parameter

__all__ = ["BertEncoder", "bert_mini"]


class BertEncoder(Module):
    """Token + position embeddings, N encoder blocks, mean-pool classifier."""

    def __init__(
        self,
        vocab_size: int = 64,
        dim: int = 32,
        num_layers: int = 4,
        num_heads: int = 4,
        seq_len: int = 16,
        num_classes: int = 4,
        activation: str = "gelu",
        rng=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.seq_len = seq_len
        self.dim = dim
        self.tok = Embedding(vocab_size, dim, rng=rng)
        self.pos = Parameter(rng.normal(0.0, 0.02, size=(seq_len, dim)), "pos")
        self.blocks = [
            TransformerEncoderBlock(dim, num_heads, activation=activation, rng=rng)
            for _ in range(num_layers)
        ]
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng=rng)
        self._tokens: int | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        if ids.shape[1] != self.seq_len:
            raise ValueError(f"expected sequence length {self.seq_len}, got {ids.shape[1]}")
        x = self.tok(ids) + self.pos.data
        for block in self.blocks:
            x = block(x)
        x = self.norm(x)
        self._tokens = x.shape[1]
        return self.head(x.mean(axis=1))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.head.backward(grad)
        g = np.broadcast_to(g[:, None, :], (g.shape[0], self._tokens, g.shape[1])) / self._tokens
        g = self.norm.backward(np.ascontiguousarray(g))
        for block in reversed(self.blocks):
            g = block.backward(g)
        self.pos.grad += g.sum(axis=0)
        return self.tok.backward(g)


def bert_mini(**kwargs) -> BertEncoder:
    """The default scaled-down BERT used in training experiments."""
    return BertEncoder(**kwargs)
