"""Multi-head self-attention with explicit backward (BERT / ViT substrate).

The QKV and output projections are :class:`repro.nn.layers.Linear` layers —
i.e. FC layers in the paper's taxonomy.  TASDER leaves them dense by default
(Section 4.3 found only the MLP FCs tolerate TASD well) but the transform
can target them when asked.
"""

from __future__ import annotations

import numpy as np

from .functional import softmax
from .layers import Linear
from .module import Module

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Standard scaled-dot-product multi-head self-attention over (B, T, D)."""

    def __init__(self, dim: int, num_heads: int, rng=None) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.qkv = Linear(dim, 3 * dim, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)
        self._cache: tuple | None = None

    def _split(self, x: np.ndarray) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        b, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * d)

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, t, _ = x.shape
        qkv = self.qkv(x)  # (b, t, 3*dim)
        q, k, v = np.split(qkv, 3, axis=-1)
        q, k, v = self._split(q), self._split(k), self._split(v)  # (b, h, t, hd)
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = np.einsum("bhqd,bhkd->bhqk", q, k, optimize=True) * scale
        attn = softmax(scores, axis=-1)
        ctx = np.einsum("bhqk,bhkd->bhqd", attn, v, optimize=True)
        self._cache = (q, k, v, attn, scale)
        return self.proj(self._merge(ctx))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        q, k, v, attn, scale = self._cache
        d_ctx = self._split(self.proj.backward(grad))  # (b, h, t, hd)
        d_attn = np.einsum("bhqd,bhkd->bhqk", d_ctx, v, optimize=True)
        d_v = np.einsum("bhqk,bhqd->bhkd", attn, d_ctx, optimize=True)
        # Softmax backward: dS = attn * (d_attn - Σ_k attn*d_attn)
        inner = (attn * d_attn).sum(axis=-1, keepdims=True)
        d_scores = attn * (d_attn - inner) * scale
        d_q = np.einsum("bhqk,bhkd->bhqd", d_scores, k, optimize=True)
        d_k = np.einsum("bhqk,bhqd->bhkd", d_scores, q, optimize=True)
        d_qkv = np.concatenate(
            [self._merge(d_q), self._merge(d_k), self._merge(d_v)], axis=-1
        )
        return self.qkv.backward(d_qkv)
