"""Composite blocks: ResNet blocks, Transformer encoder, ConvNeXt block.

These mirror Fig. 8's block diagrams — the structures TASDER rewrites by
swapping CONV/FC for TCONV/TFC and inserting TASD layers after activations.
"""

from __future__ import annotations

import numpy as np

from .attention import MultiHeadSelfAttention
from .layers import (
    Activation,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Dropout,
    LayerNorm,
    Linear,
)
from .module import Identity, Module, Sequential

__all__ = [
    "BasicBlock",
    "BottleneckBlock",
    "TransformerEncoderBlock",
    "ConvNeXtBlock",
    "conv_bn_act",
]


def conv_bn_act(
    in_ch: int, out_ch: int, kernel: int, stride: int = 1, padding: int = 0,
    activation: str = "relu", rng=None,
) -> Sequential:
    """Conv → BN → activation, the CNN workhorse stack."""
    return Sequential(
        Conv2d(in_ch, out_ch, kernel, stride, padding, bias=False, rng=rng),
        BatchNorm2d(out_ch),
        Activation(activation),
    )


class BasicBlock(Module):
    """ResNet-18/34 residual block: two 3x3 convs plus identity/projection skip."""

    expansion = 1

    def __init__(self, in_ch: int, out_ch: int, stride: int = 1, rng=None) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_ch, out_ch, 3, stride, 1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_ch)
        self.act1 = Activation("relu")
        self.conv2 = Conv2d(out_ch, out_ch, 3, 1, 1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_ch)
        self.act2 = Activation("relu")
        if stride != 1 or in_ch != out_ch:
            self.shortcut: Module = Sequential(
                Conv2d(in_ch, out_ch, 1, stride, 0, bias=False, rng=rng), BatchNorm2d(out_ch)
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.act1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.act2(out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.act2.backward(grad)
        g_main = self.bn2.backward(g)
        g_main = self.conv2.backward(g_main)
        g_main = self.act1.backward(g_main)
        g_main = self.bn1.backward(g_main)
        g_main = self.conv1.backward(g_main)
        return g_main + self.shortcut.backward(g)


class BottleneckBlock(Module):
    """ResNet-50/101 bottleneck: 1x1 reduce → 3x3 → 1x1 expand (Fig. 8a)."""

    expansion = 4

    def __init__(self, in_ch: int, mid_ch: int, stride: int = 1, rng=None) -> None:
        super().__init__()
        out_ch = mid_ch * self.expansion
        self.conv1 = Conv2d(in_ch, mid_ch, 1, 1, 0, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(mid_ch)
        self.act1 = Activation("relu")
        self.conv2 = Conv2d(mid_ch, mid_ch, 3, stride, 1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(mid_ch)
        self.act2 = Activation("relu")
        self.conv3 = Conv2d(mid_ch, out_ch, 1, 1, 0, bias=False, rng=rng)
        self.bn3 = BatchNorm2d(out_ch)
        self.act3 = Activation("relu")
        if stride != 1 or in_ch != out_ch:
            self.shortcut: Module = Sequential(
                Conv2d(in_ch, out_ch, 1, stride, 0, bias=False, rng=rng), BatchNorm2d(out_ch)
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.act1(self.bn1(self.conv1(x)))
        out = self.act2(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        out = out + self.shortcut(x)
        return self.act3(out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.act3.backward(grad)
        g_main = self.bn3.backward(g)
        g_main = self.conv3.backward(g_main)
        g_main = self.act2.backward(g_main)
        g_main = self.bn2.backward(g_main)
        g_main = self.conv2.backward(g_main)
        g_main = self.act1.backward(g_main)
        g_main = self.bn1.backward(g_main)
        g_main = self.conv1.backward(g_main)
        return g_main + self.shortcut.backward(g)


class TransformerEncoderBlock(Module):
    """Pre-LN transformer block: LN→MHSA→add, LN→FC→GELU→FC→add (Fig. 8c)."""

    def __init__(
        self, dim: int, num_heads: int, mlp_ratio: int = 4,
        activation: str = "gelu", dropout: float = 0.0, rng=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, rng=rng)
        self.ln2 = LayerNorm(dim)
        self.fc1 = Linear(dim, dim * mlp_ratio, rng=rng)
        self.act = Activation(activation)
        self.fc2 = Linear(dim * mlp_ratio, dim, rng=rng)
        self.drop = Dropout(dropout, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x + self.attn(self.ln1(x))
        return x + self.fc2(self.drop(self.act(self.fc1(self.ln2(x)))))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g_mlp = self.fc2.backward(grad)
        g_mlp = self.drop.backward(g_mlp)
        g_mlp = self.act.backward(g_mlp)
        g_mlp = self.fc1.backward(g_mlp)
        g_mlp = self.ln2.backward(g_mlp)
        g = grad + g_mlp
        g_attn = self.attn.backward(g)
        g_attn = self.ln1.backward(g_attn)
        return g + g_attn


class ConvNeXtBlock(Module):
    """ConvNeXt block: 7x7 depthwise → LN → pointwise x4 → GELU → pointwise.

    Pointwise convs are implemented as Linear over the channel axis (the
    tensor is kept channels-last inside the block), making them TFC targets.
    """

    def __init__(self, channels: int, rng=None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.dwconv = DepthwiseConv2d(channels, 7, padding=3, rng=rng)
        self.norm = LayerNorm(channels)
        self.pw1 = Linear(channels, 4 * channels, rng=rng)
        self.act = Activation("gelu")
        self.pw2 = Linear(4 * channels, channels, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = self.dwconv(x)
        y = y.transpose(0, 2, 3, 1)  # NCHW -> NHWC for the per-channel MLP
        y = self.pw2(self.act(self.pw1(self.norm(y))))
        return x + y.transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = grad.transpose(0, 2, 3, 1)
        g = self.pw2.backward(g)
        g = self.act.backward(g)
        g = self.pw1.backward(g)
        g = self.norm.backward(g)
        g = g.transpose(0, 3, 1, 2)
        return grad + self.dwconv.backward(g)
