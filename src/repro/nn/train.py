"""Training substrate: loss, optimizers, training loop, evaluation.

The paper's acceptance criterion — a TASD-transformed model must keep
>= 99 % of the original model's accuracy (MLPerf-style, Section 5.1) — only
means something against genuinely trained models, so this module provides
the training loop the experiments use to produce them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .functional import log_softmax, softmax
from .module import Module, Parameter

__all__ = [
    "cross_entropy",
    "SGD",
    "Adam",
    "iterate_minibatches",
    "TrainResult",
    "train_classifier",
    "evaluate_accuracy",
    "predict_logits",
]


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits."""
    n = logits.shape[0]
    logp = log_softmax(logits, axis=-1)
    loss = -float(logp[np.arange(n), labels].mean())
    grad = softmax(logits, axis=-1)
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


class SGD:
    """SGD with momentum and optional weight decay."""

    def __init__(
        self, params: list[Parameter] | Module, lr: float = 0.1,
        momentum: float = 0.9, weight_decay: float = 0.0,
    ) -> None:
        self.params = list(params.parameters()) if isinstance(params, Module) else list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v += g
            p.data -= self.lr * v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self, params: list[Parameter] | Module, lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.params = list(params.parameters()) if isinstance(params, Module) else list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p.data -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


def iterate_minibatches(
    x: np.ndarray, y: np.ndarray, batch_size: int, rng: np.random.Generator
):
    """Shuffled minibatch iterator over one epoch."""
    order = rng.permutation(len(x))
    for start in range(0, len(x), batch_size):
        idx = order[start : start + batch_size]
        yield x[idx], y[idx]


@dataclass
class TrainResult:
    """Loss/accuracy trajectory of one training run."""

    losses: list[float] = field(default_factory=list)
    train_accuracy: float = 0.0
    epochs: int = 0


def train_classifier(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    epochs: int = 5,
    batch_size: int = 32,
    optimizer=None,
    seed: int = 0,
    mask_fn=None,
) -> TrainResult:
    """Train ``model`` on ``(x, y)`` with cross-entropy.

    ``mask_fn(model)`` — if given — runs after every optimizer step; the
    pruning module uses it to keep pruned weights at exactly zero during
    fine-tuning (the standard sparse fine-tuning recipe).
    """
    rng = np.random.default_rng(seed)
    opt = optimizer or SGD(model, lr=0.05)
    result = TrainResult()
    model.train()
    for _ in range(epochs):
        for xb, yb in iterate_minibatches(x, y, batch_size, rng):
            opt.zero_grad()
            logits = model(xb)
            loss, dlogits = cross_entropy(logits, yb)
            model.backward(dlogits)
            opt.step()
            if mask_fn is not None:
                mask_fn(model)
            result.losses.append(loss)
        result.epochs += 1
    result.train_accuracy = evaluate_accuracy(model, x, y)
    return result


def predict_logits(model: Module, x: np.ndarray, batch_size: int = 128) -> np.ndarray:
    """Batched eval-mode forward pass."""
    model.eval()
    outs = [model(x[i : i + batch_size]) for i in range(0, len(x), batch_size)]
    return np.concatenate(outs, axis=0)


def evaluate_accuracy(model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 128) -> float:
    """Top-1 accuracy in eval mode."""
    preds = predict_logits(model, x, batch_size).argmax(axis=-1)
    return float((preds == y).mean())
