"""Stateless tensor functions: activations (forward + derivative), softmax.

Activation choice matters to this paper — ReLU-family functions create the
intrinsic activation sparsity TASD-A exploits, while GELU/Swish produce dense
but magnitude-skewed activations handled via pseudo-density (Section 4.3).
"""

from __future__ import annotations

import numpy as np
from scipy import special

__all__ = [
    "relu",
    "relu_grad",
    "relu6",
    "relu6_grad",
    "squared_relu",
    "squared_relu_grad",
    "gelu",
    "gelu_grad",
    "silu",
    "silu_grad",
    "softmax",
    "log_softmax",
    "ACTIVATIONS",
]

_SQRT_2 = np.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / np.sqrt(2.0 * np.pi)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(x.dtype)


def relu6(x: np.ndarray) -> np.ndarray:
    return np.clip(x, 0.0, 6.0)


def relu6_grad(x: np.ndarray) -> np.ndarray:
    return ((x > 0.0) & (x < 6.0)).astype(x.dtype)


def squared_relu(x: np.ndarray) -> np.ndarray:
    r = np.maximum(x, 0.0)
    return r * r


def squared_relu_grad(x: np.ndarray) -> np.ndarray:
    return 2.0 * np.maximum(x, 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Exact GELU: ``x * Phi(x)`` with the Gaussian CDF."""
    return x * 0.5 * (1.0 + special.erf(x / _SQRT_2))


def gelu_grad(x: np.ndarray) -> np.ndarray:
    cdf = 0.5 * (1.0 + special.erf(x / _SQRT_2))
    pdf = _INV_SQRT_2PI * np.exp(-0.5 * x * x)
    return cdf + x * pdf


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / Swish: ``x * sigmoid(x)``."""
    return x * special.expit(x)


def silu_grad(x: np.ndarray) -> np.ndarray:
    s = special.expit(x)
    return s * (1.0 + x * (1.0 - s))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


# name -> (forward, derivative, induces_exact_zeros)
ACTIVATIONS: dict[str, tuple] = {
    "relu": (relu, relu_grad, True),
    "relu6": (relu6, relu6_grad, True),
    "squared_relu": (squared_relu, squared_relu_grad, True),
    "gelu": (gelu, gelu_grad, False),
    "silu": (silu, silu_grad, False),
    "swish": (silu, silu_grad, False),
}
