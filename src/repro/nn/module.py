"""Minimal NumPy module system with explicit forward/backward.

The paper's experiments need real trained networks (accuracy is part of the
TASDER acceptance criterion), and the offline environment has no deep
learning framework — so this package implements one: modules cache whatever
forward state their backward pass needs, ``backward(grad)`` returns the
gradient w.r.t. the input and accumulates parameter gradients in
``Parameter.grad``.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

__all__ = ["Parameter", "Module", "Sequential", "Identity"]


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter({self.name or 'unnamed'}, shape={self.data.shape})"


class Module:
    """Base class for layers and models.

    Subclasses implement :meth:`forward` (caching what backward needs on
    ``self``) and :meth:`backward`.  Parameters and submodules are discovered
    by attribute scan, in definition order, like the frameworks this mirrors.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = self.forward(x)
        for hook in getattr(self, "_forward_hooks", ()):
            hook(self, x, out)
        return out

    def register_forward_hook(self, fn) -> None:
        """Register ``fn(module, input, output)`` to run after every forward.

        Used by TASDER's calibration pass to observe activation statistics
        without modifying layer code.
        """
        if not hasattr(self, "_forward_hooks"):
            self._forward_hooks: list = []
        self._forward_hooks.append(fn)

    def clear_forward_hooks(self) -> None:
        self._forward_hooks = []

    # ------------------------------------------------------------------ #
    def children(self) -> Iterator["Module"]:
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def modules(self) -> Iterator["Module"]:
        """Depth-first iterator over this module and all descendants."""
        yield self
        for child in self.children():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix or type(self).__name__.lower(), self
        for attr, value in self.__dict__.items():
            entries: list[tuple[str, Module]] = []
            if isinstance(value, Module):
                entries.append((attr, value))
            elif isinstance(value, (list, tuple)):
                entries.extend(
                    (f"{attr}.{i}", item)
                    for i, item in enumerate(value)
                    if isinstance(item, Module)
                )
            for name, child in entries:
                child_prefix = f"{prefix}.{name}" if prefix else name
                yield from child.named_modules(child_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()
                    elif isinstance(item, Parameter):
                        yield item

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for attr, value in self.__dict__.items():
            path = f"{prefix}.{attr}" if prefix else attr
            if isinstance(value, Parameter):
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(path)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{path}.{i}")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for m in self.modules():
            fn(m)
        return self

    # ------------------------------------------------------------------ #
    # Buffers: non-trainable state that must persist with the weights
    # (BatchNorm running statistics).  Subclasses list attribute names in
    # ``buffer_names``; state_dict round-trips them alongside parameters.
    buffer_names: tuple[str, ...] = ()

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for attr in self.buffer_names:
            path = f"{prefix}.{attr}" if prefix else attr
            yield path, getattr(self, attr)
        for attr, value in self.__dict__.items():
            path = f"{prefix}.{attr}" if prefix else attr
            if isinstance(value, Module):
                yield from value.named_buffers(path)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_buffers(f"{path}.{i}")

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[f"buffer::{name}"] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = {f"buffer::{name}": name for name, _ in self.named_buffers()}
        missing = (set(own_params) | set(own_buffers)) - set(state)
        extra = set(state) - set(own_params) - set(own_buffers)
        if missing or extra:
            raise KeyError(f"state mismatch: missing={sorted(missing)} extra={sorted(extra)}")
        for name, p in own_params.items():
            if p.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}")
            p.data[...] = state[name]
        for key, name in own_buffers.items():
            self._assign_buffer(name, state[key])

    def _assign_buffer(self, dotted_name: str, value: np.ndarray) -> None:
        target: Module = self
        parts = dotted_name.split(".")
        for part in parts[:-1]:
            if part.isdigit():
                target = target[int(part)] if hasattr(target, "__getitem__") else getattr(target, part)
            else:
                target = getattr(target, part)
        getattr(target, parts[-1])[...] = value


class Sequential(Module):
    """Chain of modules executed in order; backward runs in reverse."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def append(self, layer: Module) -> None:
        self.layers.append(layer)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


class Identity(Module):
    """Pass-through module (useful as a default skip/projection)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad
