"""NumPy DNN substrate: modules, layers, models, training, synthetic data."""

from . import functional, models
from .attention import MultiHeadSelfAttention
from .blocks import BasicBlock, BottleneckBlock, ConvNeXtBlock, TransformerEncoderBlock
from .data import Dataset, synthetic_images, synthetic_tokens
from .im2col import GemmShape, col2im, conv_gemm_shape, conv_out_size, im2col
from .layers import (
    Activation,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Dropout,
    Embedding,
    Flatten,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
)
from .module import Identity, Module, Parameter, Sequential
from .train import (
    Adam,
    SGD,
    TrainResult,
    cross_entropy,
    evaluate_accuracy,
    predict_logits,
    train_classifier,
)

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Identity",
    "Linear",
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm2d",
    "LayerNorm",
    "Activation",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Embedding",
    "MultiHeadSelfAttention",
    "BasicBlock",
    "BottleneckBlock",
    "TransformerEncoderBlock",
    "ConvNeXtBlock",
    "GemmShape",
    "conv_gemm_shape",
    "conv_out_size",
    "im2col",
    "col2im",
    "cross_entropy",
    "SGD",
    "Adam",
    "TrainResult",
    "train_classifier",
    "evaluate_accuracy",
    "predict_logits",
    "Dataset",
    "synthetic_images",
    "synthetic_tokens",
    "functional",
    "models",
]
