"""Closed-form analysis of TASD drop rates (Appendix A, analytically).

For a tensor whose elements are non-zero i.i.d. with probability ``d`` (the
density), the number of non-zeros in an ``M``-element block is
``B ~ Binomial(M, d)``.  A single ``N:M`` view keeps ``min(B, N)`` of them, so
the expected dropped-non-zero fraction is ``E[(B - N)+] / E[B]``.  A series
whose terms share the block size ``M`` behaves exactly like its effective
``(Σ n_i):M`` pattern (greedy top-k extraction nests), which gives closed
forms for the same-``M`` series used throughout the paper.

These formulas let TASDER pick layer configurations from layer densities
alone — no weight instantiation — and they are property-tested against the
empirical decomposition in ``tests/core/test_analysis.py``.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from .patterns import NMPattern
from .series import TASDConfig

__all__ = [
    "expected_dropped_nonzero_fraction",
    "expected_kept_nonzero_fraction",
    "expected_block_overflow",
    "series_expected_dropped_fraction",
    "probability_block_legal",
    "monte_carlo_dropped_fraction",
]


def expected_block_overflow(density: float, pattern: NMPattern) -> float:
    """``E[(B - N)+]`` for ``B ~ Binomial(M, density)``.

    The expected number of non-zeros per block that a single ``pattern`` view
    must drop.
    """
    _check_density(density)
    if pattern.n >= pattern.m:
        return 0.0
    ks = np.arange(pattern.n + 1, pattern.m + 1)
    pmf = stats.binom.pmf(ks, pattern.m, density)
    return float(np.sum((ks - pattern.n) * pmf))


def expected_dropped_nonzero_fraction(density: float, pattern: NMPattern) -> float:
    """Expected fraction of non-zeros dropped by one ``pattern`` view.

    ``E[(B - N)+] / (M * density)`` — the quantity the TASD-W greedy
    algorithm sorts (Section 4.2), computable without touching weights.
    """
    _check_density(density)
    if density == 0.0:
        return 0.0
    return expected_block_overflow(density, pattern) / (pattern.m * density)


def expected_kept_nonzero_fraction(density: float, pattern: NMPattern) -> float:
    """Complement of :func:`expected_dropped_nonzero_fraction`."""
    return 1.0 - expected_dropped_nonzero_fraction(density, pattern)


def series_expected_dropped_fraction(density: float, config: TASDConfig) -> float:
    """Expected dropped-non-zero fraction of a TASD series.

    Exact when all terms share one block size (the effective-pattern
    equivalence); for mixed block sizes this is a first-order estimate that
    treats each term's block boundary independently, applying each term to
    the expected residual density of the previous one.  The Monte-Carlo
    helper provides ground truth for tests.
    """
    _check_density(density)
    if config.is_dense:
        return 0.0
    effective = config.effective_pattern
    if effective is not None:
        return expected_dropped_nonzero_fraction(density, effective)
    remaining = density
    original_nnz = density
    for pattern in config.patterns:
        dropped = expected_dropped_nonzero_fraction(remaining, pattern)
        remaining = remaining * dropped
    if original_nnz == 0.0:
        return 0.0
    return remaining / original_nnz


def probability_block_legal(density: float, pattern: NMPattern) -> float:
    """``P(B <= N)``: chance a random block already satisfies the pattern."""
    _check_density(density)
    return float(stats.binom.cdf(pattern.n, pattern.m, density))


def monte_carlo_dropped_fraction(
    density: float,
    config: TASDConfig,
    n_blocks: int = 20_000,
    rng: np.random.Generator | None = None,
) -> float:
    """Empirical dropped-non-zero fraction on random blocks (ground truth).

    Samples ``n_blocks`` i.i.d. Bernoulli(density) blocks of the maximum
    block size in ``config`` (padded to the lcm of block sizes so every term
    tiles evenly) and decomposes them.
    """
    _check_density(density)
    if config.is_dense:
        return 0.0
    rng = rng or np.random.default_rng(0)
    lcm = int(np.lcm.reduce([p.m for p in config.patterns]))
    x = rng.random((n_blocks, lcm))
    mask = rng.random((n_blocks, lcm)) < density
    x = np.where(mask, x + 0.1, 0.0)  # offset keeps magnitudes strictly positive
    dec = config.apply(x, axis=-1)
    total = np.count_nonzero(x)
    if total == 0:
        return 0.0
    return np.count_nonzero(dec.residual) / total


def _check_density(density: float) -> None:
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
