"""N:M structured sparsity patterns and pattern views.

An ``N:M`` pattern constrains every block of ``M`` consecutive elements
(along one axis of a tensor) to hold at most ``N`` non-zeros.  The *view* of a
tensor under a pattern keeps, per block, the ``N`` largest-magnitude elements
and zeroes the rest (ties broken toward the lowest index, deterministically).

This module is the foundation of TASD (Section 3 of the paper): terms of a
TASD series are views of the running residual under successive patterns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "NMPattern",
    "block_view",
    "unblock_view",
    "pattern_view",
    "pattern_mask",
    "is_pattern_legal",
    "DENSE_LIKE_EPS",
]

# Magnitudes at or below this threshold are treated as zero when checking
# pattern legality; keeps float round-trip noise from flipping legality.
DENSE_LIKE_EPS = 0.0


@dataclass(frozen=True, order=True)
class NMPattern:
    """A fine-grained ``N:M`` structured sparsity pattern.

    Parameters
    ----------
    n : int
        Maximum number of non-zeros kept per block.
    m : int
        Block size (number of consecutive elements along the sparsity axis).
    """

    n: int
    m: int

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ValueError(f"block size m must be positive, got {self.m}")
        if not 0 <= self.n <= self.m:
            raise ValueError(f"need 0 <= n <= m, got {self.n}:{self.m}")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def density(self) -> float:
        """Fraction of elements a view may keep (``n / m``)."""
        return self.n / self.m

    @property
    def approximated_sparsity(self) -> float:
        """Sparsity degree of the pattern (``1 - n/m``), as used in Fig. 14/18."""
        return 1.0 - self.density

    @property
    def is_dense(self) -> bool:
        """True when the pattern keeps every element (``n == m``)."""
        return self.n == self.m

    @property
    def metadata_bits_per_value(self) -> float:
        """Index metadata cost per *kept* value.

        A kept value needs ``ceil(log2(m))`` bits to name its position inside
        the block (the encoding used by NVIDIA STC for 2:4 uses 2 bits per
        value; this generalises that).  Dense patterns need no metadata.
        """
        if self.is_dense or self.n == 0:
            return 0.0
        return float(math.ceil(math.log2(self.m)))

    def storage_fraction(self, value_bits: int = 16) -> float:
        """Compressed footprint of a view relative to the dense tensor.

        Counts kept values plus per-value index metadata, e.g. 2:4 at 16-bit
        values costs ``(2*16 + 2*2) / (4*16) = 0.5625`` of dense.
        """
        if value_bits <= 0:
            raise ValueError("value_bits must be positive")
        bits = self.n * (value_bits + self.metadata_bits_per_value)
        return bits / (self.m * value_bits)

    # ------------------------------------------------------------------ #
    # Naming
    # ------------------------------------------------------------------ #
    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.n}:{self.m}"

    @classmethod
    def parse(cls, text: str) -> "NMPattern":
        """Parse ``"N:M"`` notation, e.g. ``NMPattern.parse("2:4")``."""
        try:
            n_str, m_str = text.strip().split(":")
            return cls(int(n_str), int(m_str))
        except (ValueError, AttributeError) as exc:
            raise ValueError(f"cannot parse N:M pattern from {text!r}") from exc


# ---------------------------------------------------------------------- #
# Blocking helpers
# ---------------------------------------------------------------------- #
def block_view(x: np.ndarray, m: int, axis: int = -1) -> np.ndarray:
    """Reshape ``x`` so blocks of ``m`` along ``axis`` become the last axis.

    Returns an array of shape ``(..., n_blocks, m)`` where the original
    ``axis`` has been moved to the end and split.  The length of ``axis``
    must be divisible by ``m``.
    """
    x = np.asarray(x)
    moved = np.moveaxis(x, axis, -1)
    length = moved.shape[-1]
    if length % m != 0:
        raise ValueError(
            f"axis length {length} is not divisible by block size {m}; "
            "pad the tensor first (see repro.tensor.blocks.pad_to_multiple)"
        )
    return moved.reshape(*moved.shape[:-1], length // m, m)


def unblock_view(blocks: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`block_view`: merge the trailing block axes back."""
    blocks = np.asarray(blocks)
    merged = blocks.reshape(*blocks.shape[:-2], blocks.shape[-2] * blocks.shape[-1])
    return np.moveaxis(merged, -1, axis)


# ---------------------------------------------------------------------- #
# Views
# ---------------------------------------------------------------------- #
def pattern_mask(x: np.ndarray, pattern: NMPattern, axis: int = -1) -> np.ndarray:
    """Boolean mask of the elements a pattern view keeps.

    Per ``m``-block, marks the ``n`` largest-magnitude elements.  Elements
    that are exactly zero are never marked (keeping them is pointless), so the
    mask of an already-legal tensor marks exactly its non-zeros.  Ties break
    toward the lowest index within the block, deterministically.
    """
    x = np.asarray(x)
    if pattern.n == 0:
        return np.zeros_like(x, dtype=bool)
    blocks = block_view(x, pattern.m, axis=axis)
    mag = np.abs(blocks)
    if pattern.is_dense:
        keep = mag > DENSE_LIKE_EPS
        return unblock_view(keep, axis=axis)
    # Stable sort on negated magnitude: among equal magnitudes the lower
    # index wins, which makes extraction deterministic across runs.
    order = np.argsort(-mag, axis=-1, kind="stable")
    ranks = np.empty_like(order)
    np.put_along_axis(ranks, order, np.arange(pattern.m).reshape((1,) * (blocks.ndim - 1) + (pattern.m,)), axis=-1)
    keep = (ranks < pattern.n) & (mag > DENSE_LIKE_EPS)
    return unblock_view(keep, axis=axis)


def pattern_view(x: np.ndarray, pattern: NMPattern, axis: int = -1) -> np.ndarray:
    """The (possibly lossy) view of ``x`` under ``pattern`` (Section 2.1).

    Keeps the ``n`` largest-magnitude elements per ``m``-block and zeroes the
    rest.  The result always satisfies :func:`is_pattern_legal`.
    """
    x = np.asarray(x)
    mask = pattern_mask(x, pattern, axis=axis)
    return np.where(mask, x, np.zeros((), dtype=x.dtype))


def is_pattern_legal(x: np.ndarray, pattern: NMPattern, axis: int = -1) -> bool:
    """True when every ``m``-block of ``x`` has at most ``n`` non-zeros."""
    blocks = block_view(np.asarray(x), pattern.m, axis=axis)
    nnz_per_block = np.count_nonzero(blocks, axis=-1)
    return bool(np.all(nnz_per_block <= pattern.n))
