"""Channel permutation for better N:M views (Pool & Yu, 2021; Section 6.1).

The paper notes TASD is compatible with channel permutation: reordering the
columns of a weight matrix (the reduction axis) redistributes non-zeros
across N:M blocks, which can raise the magnitude a view keeps — and the
permutation is free at inference because the producing layer's output
channels (or the GEMM's other operand) are permuted identically.

This module implements a greedy balanced-assignment permutation search and
the plumbing to apply/invert it, plus the combined "permute then decompose"
pipeline the paper suggests as future work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .decompose import Decomposition, decompose
from .patterns import NMPattern, pattern_view
from .series import TASDConfig

__all__ = [
    "PermutationResult",
    "kept_magnitude",
    "greedy_balance_permutation",
    "permute_columns",
    "invert_permutation",
    "decompose_with_permutation",
]


def kept_magnitude(w: np.ndarray, pattern: NMPattern) -> float:
    """Total |magnitude| an N:M view of ``w`` keeps (the search objective)."""
    return float(np.abs(pattern_view(w, pattern, axis=-1)).sum())


def permute_columns(w: np.ndarray, permutation: np.ndarray) -> np.ndarray:
    """Reorder the reduction-axis columns of a 2-D weight matrix."""
    return np.asarray(w)[:, permutation]


def invert_permutation(permutation: np.ndarray) -> np.ndarray:
    """The inverse permutation (to apply to the matching operand)."""
    inverse = np.empty_like(permutation)
    inverse[permutation] = np.arange(len(permutation))
    return inverse


def greedy_balance_permutation(w: np.ndarray, pattern: NMPattern) -> np.ndarray:
    """A permutation that balances column mass across N:M blocks.

    Greedy bin packing: sort columns by their aggregate magnitude
    (descending) and deal them round-robin into blocks, always placing the
    next-heaviest column into the currently lightest block.  Heavy columns
    stop crowding into the same block, so the top-N selection inside each
    block wastes less magnitude.  O(K log K); deterministic.
    """
    w = np.asarray(w)
    k = w.shape[-1]
    if k % pattern.m != 0:
        raise ValueError(f"reduction dim {k} not divisible by block size {pattern.m}")
    n_blocks = k // pattern.m
    column_mass = np.abs(w).sum(axis=0)
    order = np.argsort(-column_mass, kind="stable")
    block_load = np.zeros(n_blocks)
    block_fill = np.zeros(n_blocks, dtype=int)
    placement = np.empty(k, dtype=int)  # column -> target position
    for col in order:
        open_blocks = np.flatnonzero(block_fill < pattern.m)
        target = open_blocks[np.argmin(block_load[open_blocks])]
        placement[col] = target * pattern.m + block_fill[target]
        block_fill[target] += 1
        block_load[target] += column_mass[col]
    # placement maps old column -> new position; we need new-order indices.
    permutation = np.empty(k, dtype=int)
    permutation[placement] = np.arange(k)
    return permutation


@dataclass
class PermutationResult:
    """Outcome of permutation-assisted decomposition."""

    permutation: np.ndarray
    decomposition: Decomposition
    kept_magnitude_before: float
    kept_magnitude_after: float

    @property
    def improvement(self) -> float:
        """Relative gain in kept magnitude (>= 0 when the search helps)."""
        if self.kept_magnitude_before == 0.0:
            return 0.0
        return self.kept_magnitude_after / self.kept_magnitude_before - 1.0


def decompose_with_permutation(
    w: np.ndarray, config: TASDConfig, pattern_for_search: NMPattern | None = None
) -> PermutationResult:
    """Permute the reduction axis, then decompose (Section 6.1's combination).

    The permutation is searched against the first term's pattern (or an
    explicit ``pattern_for_search``); the returned decomposition is of the
    *permuted* matrix — consumers must permute the matching operand with
    :func:`invert_permutation` (tested for exactness in the suite).
    """
    if config.is_dense or not config.patterns:
        raise ValueError("permutation search needs a non-dense TASD config")
    search_pattern = pattern_for_search or config.patterns[0]
    before = kept_magnitude(w, search_pattern)
    permutation = greedy_balance_permutation(w, search_pattern)
    permuted = permute_columns(w, permutation)
    after = kept_magnitude(permuted, search_pattern)
    if after < before:
        # Never make things worse: fall back to the identity permutation.
        permutation = np.arange(w.shape[-1])
        permuted = np.asarray(w)
        after = before
    return PermutationResult(
        permutation=permutation,
        decomposition=config.apply(permuted, axis=-1),
        kept_magnitude_before=before,
        kept_magnitude_after=after,
    )
