"""Structured sparse storage and compute kernels.

Implements the compressed N:M format used by structured sparse tensor cores
(values + per-value block indices, the layout behind NVIDIA's 2:4 STC) and
GEMM kernels that operate on it, including the distributive TASD execution of
Section 3.2: ``A @ B ≈ Σ (Ai @ B)`` with every ``Ai`` run as a structured
sparse GEMM.

These are functional models: they compute the exact arithmetic the hardware
would, vectorised with NumPy, and are verified against dense matmul in the
test suite.  Latency/energy are the job of ``repro.hw`` / ``repro.gpu``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .decompose import Decomposition
from .patterns import NMPattern, block_view, is_pattern_legal, pattern_view
from .series import TASDConfig

__all__ = [
    "CompressedNM",
    "nm_compress",
    "nm_decompress",
    "nm_gather_tables",
    "nm_matmul",
    "nm_matmul_from_tables",
    "tasd_matmul",
]


@dataclass(frozen=True)
class CompressedNM:
    """A 2-D matrix stored in compressed N:M format along its rows.

    ``values[r, b, j]`` is the ``j``-th kept value of block ``b`` in row
    ``r`` and ``indices[r, b, j]`` its offset inside the block (0..m-1).
    Blocks with fewer than ``n`` non-zeros pad with value 0 at index 0, which
    is arithmetically neutral for matmul.
    """

    pattern: NMPattern
    values: np.ndarray  # (rows, n_blocks, n)
    indices: np.ndarray  # (rows, n_blocks, n), uint8
    shape: tuple[int, int]

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    @property
    def compressed_bits(self) -> float:
        """Storage cost in bits assuming 16-bit values (metadata included)."""
        value_bits = 16
        return self.values.size * (value_bits + self.pattern.metadata_bits_per_value)


def _stable_top_n(mag: np.ndarray, n: int) -> np.ndarray:
    """Indices of the ``n`` largest entries per block, stably ordered.

    Semantics are exactly ``np.argsort(-mag, kind="stable")[..., :n]`` —
    descending magnitude, ties broken by ascending in-block index — but
    computed with :func:`np.argpartition` so only the kept ``n`` slots are
    ever fully ordered, not the whole ``m``-wide block.
    """
    m = mag.shape[-1]
    if n <= 0:
        return np.empty(mag.shape[:-1] + (0,), dtype=np.intp)
    if n >= m:
        return np.argsort(-mag, axis=-1, kind="stable")
    # Select *a* top-n set (correct magnitudes, arbitrary tie membership) ...
    cand = np.argpartition(-mag, n - 1, axis=-1)[..., :n]
    # ... then order it stably: sorting candidate indices first makes the
    # stable sort's tie order equal ascending original index.
    cand.sort(axis=-1)
    cand_mag = np.take_along_axis(mag, cand, axis=-1)
    top = np.take_along_axis(cand, np.argsort(-cand_mag, axis=-1, kind="stable"), axis=-1)
    # Boundary ties: if the weakest kept magnitude also occurs *outside*
    # the kept set, argpartition may have kept the wrong (non-lowest-index)
    # members.  Zero-magnitude boundaries are exempt — zero slots are
    # value-0/index-0 padding after normalisation, identical either way.
    thresh = np.take_along_axis(mag, top[..., -1:], axis=-1)
    at_thresh_total = (mag == thresh).sum(axis=-1)
    at_thresh_kept = (cand_mag == thresh).sum(axis=-1)
    ambiguous = (thresh[..., 0] > 0) & (at_thresh_total > at_thresh_kept)
    if np.any(ambiguous):
        top[ambiguous] = np.argsort(-mag[ambiguous], axis=-1, kind="stable")[..., :n]
    return top


def nm_compress(a: np.ndarray, pattern: NMPattern) -> CompressedNM:
    """Compress a pattern-legal 2-D matrix into N:M format.

    Raises if ``a`` violates the pattern — compression is lossless by
    definition (Section 2.1: accelerators natively support only legal views).
    Apply :func:`repro.core.patterns.pattern_view` first for lossy use.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"nm_compress expects a 2-D matrix, got shape {a.shape}")
    if not is_pattern_legal(a, pattern, axis=-1):
        raise ValueError(f"matrix is not {pattern} legal; take a pattern_view first")
    blocks = block_view(a, pattern.m, axis=-1)  # (rows, n_blocks, m)
    mag = np.abs(blocks)
    # Stable order: non-zeros first (largest magnitude first), ties by index.
    top = _stable_top_n(mag, pattern.n)  # (rows, n_blocks, n)
    values = np.take_along_axis(blocks, top, axis=-1)
    indices = top.astype(np.uint8)
    # Neutralise padding slots (zero values): point them at offset 0.
    indices = np.where(values != 0, indices, np.uint8(0))
    return CompressedNM(pattern=pattern, values=values, indices=indices, shape=a.shape)


def nm_decompress(c: CompressedNM) -> np.ndarray:
    """Expand compressed N:M storage back to a dense 2-D matrix.

    Single vectorised scatter-*add* pass.  Additive semantics make the
    padding alias order-independent: real slots occupy distinct in-block
    offsets by construction, so the only index collisions are padding slots
    (value 0 at offset 0), whose contribution is 0 — no reliance on
    duplicate-index write ordering, which NumPy leaves unspecified.
    """
    rows, cols = c.shape
    n_blocks = cols // c.pattern.m
    base = (np.arange(rows * n_blocks, dtype=np.intp) * c.pattern.m).reshape(rows, n_blocks, 1)
    flat_idx = (base + c.indices.astype(np.intp)).ravel()
    out = np.bincount(
        flat_idx, weights=c.values.ravel().astype(np.float64, copy=False), minlength=rows * cols
    )
    return out.reshape(rows, cols).astype(c.values.dtype, copy=False)


def nm_gather_tables(c: CompressedNM) -> tuple[np.ndarray, np.ndarray]:
    """Flattened gather tables for the structured GEMM.

    Returns ``(flat_vals, flat_rows)``, both ``(rows, n_blocks * n)``:
    every compressed slot's value and the row of the right-hand operand it
    multiplies (``block_base + in-block offset``).  The tables depend only
    on the compressed operand, so runtime plans precompute them once.
    """
    rows, _ = c.shape
    n_blocks = c.values.shape[1]
    base = (np.arange(n_blocks) * c.pattern.m)[None, :, None]
    b_rows = base + c.indices.astype(np.intp)  # (rows, n_blocks, n)
    return c.values.reshape(rows, -1), b_rows.reshape(rows, -1)


def nm_matmul_from_tables(
    flat_vals: np.ndarray, flat_rows: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """The structured GEMM contraction over precomputed gather tables.

    Single source of the kernel arithmetic: every structured execution path
    (direct :func:`nm_matmul`, compiled runtime plans) funnels through this
    einsum, which is what keeps their results bit-identical.
    """
    # Gathered B slices: (rows, n_blocks*n, N_out); contract per output row.
    # einsum keeps this a single vectorised pass over all rows.
    return np.einsum("rk,rkn->rn", flat_vals, b[flat_rows])


def nm_matmul(c: CompressedNM, b: np.ndarray) -> np.ndarray:
    """Structured sparse GEMM: ``decompress(c) @ b`` without decompressing.

    Models what an N:M tensor core does: for each block, gather the ``n``
    rows of ``b`` named by the metadata and multiply-accumulate only those —
    ``n/m`` of the dense MACs.
    """
    b = np.asarray(b)
    rows, k = c.shape
    if b.shape[0] != k:
        raise ValueError(f"inner dimensions mismatch: {c.shape} @ {b.shape}")
    flat_vals, flat_rows = nm_gather_tables(c)
    return nm_matmul_from_tables(flat_vals, flat_rows, b)


def tasd_matmul(
    a: np.ndarray,
    b: np.ndarray,
    config: TASDConfig,
    return_decomposition: bool = False,
) -> np.ndarray | tuple[np.ndarray, Decomposition]:
    """Approximate ``a @ b`` by the distributive TASD execution (Section 3.2).

    Decomposes ``a`` with ``config``, runs each term as a structured sparse
    GEMM through :func:`nm_matmul`, and accumulates partial sums — exactly
    the datapath of the TTC mapping in Fig. 11.  The dense configuration
    falls back to a dense matmul.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if config.is_dense:
        out = a @ b
        return (out, Decomposition(original=a)) if return_decomposition else out
    dec = config.apply(a, axis=-1)
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.result_type(a, b))
    for term in dec.terms:
        # Terms are legal views of the residual by construction.
        out += nm_matmul(nm_compress(term.tensor, term.pattern), b)
    return (out, dec) if return_decomposition else out
