"""TASD core: structured sparse patterns, decomposition, series, and kernels.

The paper's primary contribution (Section 3): approximate any sparse tensor
with a series of N:M structured sparse tensors and execute tensor algebra
distributively over the terms.
"""

from .analysis import (
    expected_dropped_nonzero_fraction,
    expected_kept_nonzero_fraction,
    monte_carlo_dropped_fraction,
    probability_block_legal,
    series_expected_dropped_fraction,
)
from .decompose import Decomposition, TASDTerm, decompose, extract_term
from .metrics import (
    ApproximationReport,
    density,
    dropped_magnitude_fraction,
    dropped_nonzero_fraction,
    matmul_relative_error,
    relative_frobenius_error,
    report,
    sparsity_degree,
)
from .patterns_ext import BlockPattern, StructuredPattern, VectorPattern, generalized_decompose
from .permute import (
    PermutationResult,
    decompose_with_permutation,
    greedy_balance_permutation,
    invert_permutation,
    kept_magnitude,
    permute_columns,
)
from .patterns import (
    NMPattern,
    block_view,
    is_pattern_legal,
    pattern_mask,
    pattern_view,
    unblock_view,
)
from .series import DENSE_CONFIG, TASDConfig, compose_menu, menu_table
from .sparse_ops import CompressedNM, nm_compress, nm_decompress, nm_matmul, tasd_matmul

__all__ = [
    "NMPattern",
    "TASDConfig",
    "DENSE_CONFIG",
    "TASDTerm",
    "Decomposition",
    "CompressedNM",
    "decompose",
    "extract_term",
    "pattern_view",
    "pattern_mask",
    "is_pattern_legal",
    "block_view",
    "unblock_view",
    "compose_menu",
    "menu_table",
    "nm_compress",
    "nm_decompress",
    "nm_matmul",
    "tasd_matmul",
    "sparsity_degree",
    "density",
    "dropped_nonzero_fraction",
    "dropped_magnitude_fraction",
    "relative_frobenius_error",
    "matmul_relative_error",
    "report",
    "ApproximationReport",
    "expected_dropped_nonzero_fraction",
    "expected_kept_nonzero_fraction",
    "series_expected_dropped_fraction",
    "probability_block_legal",
    "monte_carlo_dropped_fraction",
    "BlockPattern",
    "VectorPattern",
    "StructuredPattern",
    "generalized_decompose",
    "PermutationResult",
    "decompose_with_permutation",
    "greedy_balance_permutation",
    "invert_permutation",
    "permute_columns",
    "kept_magnitude",
]
