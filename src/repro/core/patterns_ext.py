"""Structured sparsity patterns beyond N:M (Section 3: "the method is
general and not limited to only N:M structured sparsity").

TASD only needs a *view* operator — keep some elements, zero the rest,
under a hardware-friendly constraint.  This module adds two such pattern
families and a protocol so :func:`generalized_decompose` can mix them with
N:M terms in one series:

* :class:`BlockPattern` — coarse block sparsity (Narang et al., 2017):
  keep the top-K blocks of a BxB grid per row group, by block magnitude.
* :class:`VectorPattern` — vector-wise sparsity (Zhu et al., 2019's STC):
  keep the top-N whole columns out of every M-column group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from .decompose import Decomposition, TASDTerm

__all__ = ["StructuredPattern", "BlockPattern", "VectorPattern", "generalized_decompose"]


@runtime_checkable
class StructuredPattern(Protocol):
    """Anything that can produce a structured view of a 2-D matrix."""

    def view(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - protocol
        """The (possibly lossy) structured view of ``x``."""
        ...

    @property
    def density(self) -> float:  # pragma: no cover - protocol
        """Fraction of elements the view may keep."""
        ...


@dataclass(frozen=True)
class BlockPattern:
    """Keep the ``keep`` largest-magnitude BxB blocks per group of ``total``.

    A coarse-grained analogue of N:M: the matrix is tiled into
    ``block x block`` tiles; within every run of ``total`` consecutive tiles
    (row-major), only the ``keep`` highest-magnitude tiles survive.
    """

    block: int
    keep: int
    total: int

    def __post_init__(self) -> None:
        if self.block <= 0:
            raise ValueError("block size must be positive")
        if not 0 < self.keep <= self.total:
            raise ValueError(f"need 0 < keep <= total, got {self.keep}/{self.total}")

    @property
    def density(self) -> float:
        return self.keep / self.total

    def view(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        r, c = x.shape
        if r % self.block or c % self.block:
            raise ValueError(f"shape {x.shape} not tileable by {self.block}")
        br, bc = r // self.block, c // self.block
        tiles = x.reshape(br, self.block, bc, self.block).transpose(0, 2, 1, 3)
        mass = np.abs(tiles).sum(axis=(2, 3)).reshape(-1)  # (br*bc,)
        n_tiles = mass.size
        if n_tiles % self.total:
            raise ValueError(f"{n_tiles} tiles not divisible by group size {self.total}")
        groups = mass.reshape(-1, self.total)
        order = np.argsort(-groups, axis=-1, kind="stable")
        ranks = np.empty_like(order)
        np.put_along_axis(
            ranks, order, np.broadcast_to(np.arange(self.total), groups.shape).copy(), axis=-1
        )
        keep_mask = (ranks < self.keep).reshape(br, bc)
        out_tiles = np.where(keep_mask[:, :, None, None], tiles, 0.0)
        return out_tiles.transpose(0, 2, 1, 3).reshape(r, c)


@dataclass(frozen=True)
class VectorPattern:
    """Keep the ``n`` largest-magnitude whole columns per ``m``-column group.

    Vector-wise sparsity as in the original Sparse Tensor Core proposal:
    entire K-dim vectors survive or die together, which makes the hardware
    even simpler than fine-grained N:M at the cost of approximation quality.
    """

    n: int
    m: int

    def __post_init__(self) -> None:
        if not 0 < self.n <= self.m:
            raise ValueError(f"need 0 < n <= m, got {self.n}:{self.m}")

    @property
    def density(self) -> float:
        return self.n / self.m

    def view(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.shape[-1] % self.m:
            raise ValueError(f"columns {x.shape[-1]} not divisible by {self.m}")
        groups = np.abs(x).sum(axis=0).reshape(-1, self.m)
        order = np.argsort(-groups, axis=-1, kind="stable")
        ranks = np.empty_like(order)
        np.put_along_axis(
            ranks, order, np.broadcast_to(np.arange(self.m), groups.shape).copy(), axis=-1
        )
        col_mask = (ranks < self.n).reshape(-1)
        return np.where(col_mask[None, :], x, 0.0)


def generalized_decompose(
    x: np.ndarray, patterns: list[StructuredPattern | object]
) -> Decomposition:
    """TASD with arbitrary structured patterns (mixable with NMPattern).

    Each pattern contributes one term extracted from the running residual —
    exactly the N:M algorithm with the view operator swapped out.  NMPattern
    instances are adapted transparently.
    """
    from .patterns import NMPattern, pattern_view

    dec = Decomposition(original=np.asarray(x))
    for pattern in patterns:
        if isinstance(pattern, NMPattern):
            term_tensor = pattern_view(dec.residual, pattern, axis=-1)
        elif isinstance(pattern, StructuredPattern):
            term_tensor = pattern.view(dec.residual)
        else:
            raise TypeError(f"{type(pattern).__name__} is not a structured pattern")
        dec.terms.append(TASDTerm(pattern, term_tensor))  # type: ignore[arg-type]
        dec.residual = dec.residual - term_tensor
    return dec
