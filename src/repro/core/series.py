"""TASD series configurations and the hardware pattern menu (Table 2).

A :class:`TASDConfig` names a fixed sequence of N:M patterns — the series a
layer will be decomposed with.  :func:`compose_menu` derives the *effective*
sparsity menu a structured accelerator exposes once TASD is layered on top:
e.g. native {1:8, 2:8, 4:8} support plus two TASD terms yields effective
3:8 (= 2:8 + 1:8), 5:8 (= 4:8 + 1:8) and 6:8 (= 4:8 + 2:8), exactly Table 2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .decompose import Decomposition, decompose
from .patterns import NMPattern

__all__ = ["TASDConfig", "DENSE_CONFIG", "compose_menu", "menu_table"]


@dataclass(frozen=True)
class TASDConfig:
    """An ordered, immutable TASD series configuration.

    ``TASDConfig.parse("4:8+1:8")`` builds the two-term series from Fig. 10.
    An empty configuration means "dense" (no decomposition, no compute
    savings); it is always an admissible choice for TASDER.
    """

    patterns: tuple[NMPattern, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "patterns", tuple(self.patterns))
        for p in self.patterns:
            if not isinstance(p, NMPattern):
                raise TypeError(f"expected NMPattern, got {type(p).__name__}")

    # ------------------------------------------------------------------ #
    @property
    def order(self) -> int:
        """Number of terms in the series."""
        return len(self.patterns)

    @property
    def is_dense(self) -> bool:
        """True for the no-decomposition configuration."""
        return self.order == 0 or all(p.is_dense for p in self.patterns)

    @property
    def density(self) -> float:
        """Fraction of MACs executed relative to dense (``Σ n_i / m_i``).

        This is the compute-cost model of Section 3.2: each term runs one
        structured GEMM at its own ``n/m`` cost.  Capped at 1.0 — a series
        denser than dense would never be selected.
        """
        if self.order == 0:
            return 1.0
        return min(1.0, sum(p.density for p in self.patterns))

    @property
    def approximated_sparsity(self) -> float:
        """Sparsity degree of the series view (``1 - density``), Fig. 14's x-axis."""
        return 1.0 - self.density

    @property
    def block_lcm(self) -> int:
        """Least common multiple of the series' block sizes.

        The padding granule: a tensor axis zero-padded to a multiple of this
        is block-aligned for every term of the series.
        """
        return int(np.lcm.reduce([p.m for p in self.patterns])) if self.patterns else 1

    @property
    def effective_pattern(self) -> NMPattern | None:
        """The single N:M pattern this series is exactly equivalent to, if any.

        A series whose terms share one block size ``M`` extracts, in total,
        the ``Σ n_i`` largest-magnitude elements per block — identical to a
        single ``(Σ n_i):M`` view (greedy top-k extraction nests).  Mixed
        block sizes have no such equivalent and return ``None``.
        """
        if self.order == 0:
            return None
        ms = {p.m for p in self.patterns}
        if len(ms) != 1:
            return None
        m = ms.pop()
        n = min(m, sum(p.n for p in self.patterns))
        return NMPattern(n, m)

    # ------------------------------------------------------------------ #
    def apply(self, x: np.ndarray, axis: int = -1) -> Decomposition:
        """Decompose ``x`` with this series (dense config leaves a dense term out)."""
        return decompose(x, self.patterns, axis=axis)

    def view(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """The approximation of ``x`` under this series (``Σ Ai``).

        The dense configuration returns ``x`` unchanged.
        """
        if self.is_dense:
            return np.asarray(x)
        return self.apply(x, axis=axis).reconstruct()

    # ------------------------------------------------------------------ #
    def __str__(self) -> str:
        if self.order == 0:
            return "dense"
        return "+".join(str(p) for p in self.patterns)

    @classmethod
    def parse(cls, text: str) -> "TASDConfig":
        """Parse ``"4:8+1:8"`` / ``"2:4"`` / ``"dense"`` notation."""
        text = text.strip().lower()
        if text in ("dense", ""):
            return cls(())
        return cls(tuple(NMPattern.parse(part) for part in text.split("+")))

    @classmethod
    def single(cls, n: int, m: int) -> "TASDConfig":
        """Convenience constructor for a one-term series."""
        return cls((NMPattern(n, m),))


DENSE_CONFIG = TASDConfig(())


# ---------------------------------------------------------------------- #
# Table 2: effective pattern menu of a structured accelerator with TASD
# ---------------------------------------------------------------------- #
def compose_menu(
    native_patterns: Sequence[NMPattern] | Iterable[NMPattern],
    max_terms: int = 2,
    include_dense: bool = True,
) -> dict[float, TASDConfig]:
    """Effective sparsity menu from composing up to ``max_terms`` native patterns.

    Parameters
    ----------
    native_patterns : sequence of NMPattern
        Patterns the hardware supports losslessly (e.g. VEGETA: 1:8, 2:8, 4:8).
    max_terms : int
        TASD series length limit (the paper uses 2).
    include_dense : bool
        Whether the dense fallback appears in the menu (it always exists on
        the accelerators modelled here).

    Returns
    -------
    dict mapping *density* (Σ n_i/m_i, rounded to 6 decimals) to the cheapest
    TASDConfig achieving it.  When several configurations reach the same
    density, the one with fewer terms wins; ties break toward extracting the
    densest pattern first (which minimises per-term residual magnitude).
    """
    native = sorted(set(native_patterns), key=lambda p: (-p.density, p.m))
    if any(p.n == 0 for p in native):
        raise ValueError("a 0:M pattern cannot be a native hardware pattern")
    menu: dict[float, TASDConfig] = {}

    def consider(config: TASDConfig) -> None:
        density = round(config.density, 6)
        if density >= 1.0 and not config.is_dense:
            return  # no cheaper than dense; never useful
        incumbent = menu.get(density)
        if incumbent is None or config.order < incumbent.order:
            menu[density] = config

    if include_dense:
        menu[1.0] = DENSE_CONFIG
    for n_terms in range(1, max_terms + 1):
        # combinations_with_replacement over patterns sorted densest-first
        # keeps the canonical "densest term first" ordering of the paper.
        for combo in itertools.combinations_with_replacement(native, n_terms):
            consider(TASDConfig(tuple(combo)))
    return menu


def menu_table(menu: Mapping[float, TASDConfig], m: int | None = None) -> list[tuple[str, str]]:
    """Render a menu as (effective pattern, TASD series) rows like Table 2.

    When ``m`` is given, rows are labelled ``k:m`` for every k in 1..m, with
    ``-`` marking unsupported effective patterns (7:8 in the paper's table).
    """
    rows: list[tuple[str, str]] = []
    if m is None:
        for density in sorted(menu):
            rows.append((f"{density:.3f}", str(menu[density])))
        return rows
    by_density = {round(k, 6): v for k, v in menu.items()}
    for k in range(1, m + 1):
        density = round(k / m, 6)
        config = by_density.get(density)
        if config is None:
            rows.append((f"{k}:{m}", "-"))
        elif config.is_dense:
            rows.append((f"{k}:{m}", "Dense"))
        else:
            rows.append((f"{k}:{m}", str(config)))
    return rows
