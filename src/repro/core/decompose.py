"""Structured decomposition: extracting TASD terms from a tensor.

Implements the core mechanism of Section 3: a TASD term is the pattern view
of the running residual, and the residual after extraction feeds the next
term.  ``A = A1 + R1``, ``R1 = A2 + R2``, … so that ``A ≈ Σ Ai`` with the
error carried entirely by the final residual.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from .patterns import NMPattern, pattern_view

__all__ = ["TASDTerm", "Decomposition", "extract_term", "decompose"]


@dataclass(frozen=True)
class TASDTerm:
    """One term of a TASD series: a pattern and its extracted tensor."""

    pattern: NMPattern
    tensor: np.ndarray

    @property
    def nnz(self) -> int:
        """Number of non-zeros this term covers."""
        return int(np.count_nonzero(self.tensor))

    @property
    def magnitude(self) -> float:
        """Sum of absolute values this term covers."""
        return float(np.abs(self.tensor).sum())


@dataclass
class Decomposition:
    """The result of decomposing a tensor into a TASD series.

    Attributes
    ----------
    original : np.ndarray
        The tensor that was decomposed.
    terms : list of TASDTerm
        Extracted structured sparse terms, in extraction order.
    residual : np.ndarray
        ``original - Σ terms``; what the approximation drops.
    axis : int
        The axis along which blocks were formed.
    """

    original: np.ndarray
    terms: list[TASDTerm] = field(default_factory=list)
    # Declared Optional because the true default ("a fresh copy of the
    # original") depends on another field; __post_init__ resolves it, so
    # consumers always observe an ndarray.
    residual: Optional[np.ndarray] = field(default=None)
    axis: int = -1

    def __post_init__(self) -> None:
        if self.residual is None:
            self.residual = np.array(self.original, copy=True)

    # ------------------------------------------------------------------ #
    @property
    def order(self) -> int:
        """Number of TASD terms."""
        return len(self.terms)

    @property
    def patterns(self) -> tuple[NMPattern, ...]:
        return tuple(t.pattern for t in self.terms)

    @property
    def total_nnz(self) -> int:
        """Non-zeros covered by the series terms (the MACs a TASD unit runs)."""
        return sum(t.nnz for t in self.terms)

    def reconstruct(self) -> np.ndarray:
        """The approximation ``Σ Ai`` (excludes the residual)."""
        if not self.terms:
            return np.zeros_like(self.original)
        out = np.zeros_like(self.original)
        for term in self.terms:
            out = out + term.tensor
        return out

    @property
    def is_lossless(self) -> bool:
        """True when the residual holds no non-zeros (Fig. 4's 2:4 + 2:8 case)."""
        return not np.any(self.residual)

    # ------------------------------------------------------------------ #
    def extract(self, pattern: NMPattern) -> TASDTerm:
        """Extract one more term from the current residual, in place."""
        term_tensor = pattern_view(self.residual, pattern, axis=self.axis)
        term = TASDTerm(pattern, term_tensor)
        self.terms.append(term)
        self.residual = self.residual - term_tensor
        return term


def extract_term(
    x: np.ndarray, pattern: NMPattern, axis: int = -1
) -> tuple[np.ndarray, np.ndarray]:
    """Extract a single TASD term; returns ``(term, residual)``.

    Equivalent to Equation (1): ``x = term + residual`` with ``term`` a legal
    ``pattern`` view of ``x`` holding the largest-magnitude elements.
    """
    term = pattern_view(x, pattern, axis=axis)
    return term, np.asarray(x) - term


def decompose(
    x: np.ndarray,
    patterns: Sequence[NMPattern] | Iterable[NMPattern],
    axis: int = -1,
) -> Decomposition:
    """Decompose ``x`` into a TASD series with the given patterns (Eq. 2-4).

    Each pattern is applied to the residual left by the previous term, so
    earlier patterns capture the dominant magnitudes.  Passing an empty
    sequence returns a decomposition whose residual is ``x`` itself.
    """
    dec = Decomposition(original=np.asarray(x), axis=axis)
    for pattern in patterns:
        dec.extract(pattern)
    return dec
