"""Approximation-quality metrics for TASD decompositions.

These are the quantities the paper tracks when judging a TASD series:
fraction of dropped non-zeros, fraction of dropped magnitude (Fig. 4 / 17),
and the relative matrix-multiplication error ``||(A - A*)B|| / ||A B||``
(Fig. 18).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .decompose import Decomposition

__all__ = [
    "sparsity_degree",
    "density",
    "dropped_nonzero_fraction",
    "dropped_magnitude_fraction",
    "relative_frobenius_error",
    "matmul_relative_error",
    "ApproximationReport",
    "report",
]


def sparsity_degree(x: np.ndarray) -> float:
    """Fraction of zero elements (Section 2.1's sparsity degree)."""
    x = np.asarray(x)
    if x.size == 0:
        return 0.0
    return 1.0 - np.count_nonzero(x) / x.size


def density(x: np.ndarray) -> float:
    """Fraction of non-zero elements (``1 - sparsity_degree``)."""
    return 1.0 - sparsity_degree(x)


def dropped_nonzero_fraction(dec: Decomposition) -> float:
    """Non-zeros the approximation drops, over the original non-zeros."""
    total = np.count_nonzero(dec.original)
    if total == 0:
        return 0.0
    return np.count_nonzero(dec.residual) / total


def dropped_magnitude_fraction(dec: Decomposition) -> float:
    """Absolute magnitude the approximation drops, over the original magnitude.

    Because each term keeps the *largest* magnitudes first, this is always
    at most :func:`dropped_nonzero_fraction` in expectation (Appendix A).
    """
    total = float(np.abs(dec.original).sum())
    if total == 0.0:
        return 0.0
    return float(np.abs(dec.residual).sum()) / total


def relative_frobenius_error(original: np.ndarray, approx: np.ndarray) -> float:
    """``||original - approx||_F / ||original||_F`` (0 for a zero original)."""
    denom = float(np.linalg.norm(original))
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(np.asarray(original) - np.asarray(approx))) / denom


def matmul_relative_error(a: np.ndarray, a_approx: np.ndarray, b: np.ndarray) -> float:
    """Fig. 18's metric: ``||(A - A*) B||_F / ||A B||_F``."""
    exact = np.asarray(a) @ np.asarray(b)
    denom = float(np.linalg.norm(exact))
    if denom == 0.0:
        return 0.0
    err = (np.asarray(a) - np.asarray(a_approx)) @ np.asarray(b)
    return float(np.linalg.norm(err)) / denom


@dataclass(frozen=True)
class ApproximationReport:
    """Summary of one decomposition, mirroring the Fig. 4 walk-through."""

    series: str
    original_sparsity: float
    approximated_density: float
    dropped_nonzeros: float
    dropped_magnitude: float
    frobenius_error: float
    lossless: bool

    def __str__(self) -> str:  # pragma: no cover - formatting only
        return (
            f"series={self.series} orig_sparsity={self.original_sparsity:.3f} "
            f"density={self.approximated_density:.3f} "
            f"dropped_nnz={self.dropped_nonzeros:.3%} "
            f"dropped_mag={self.dropped_magnitude:.3%} "
            f"fro_err={self.frobenius_error:.4f} lossless={self.lossless}"
        )


def report(dec: Decomposition) -> ApproximationReport:
    """Build an :class:`ApproximationReport` from a decomposition."""
    approx = dec.reconstruct()
    return ApproximationReport(
        series="+".join(str(p) for p in dec.patterns) or "dense",
        original_sparsity=sparsity_degree(dec.original),
        approximated_density=min(1.0, sum(p.density for p in dec.patterns)) if dec.patterns else 1.0,
        dropped_nonzeros=dropped_nonzero_fraction(dec),
        dropped_magnitude=dropped_magnitude_fraction(dec),
        frobenius_error=relative_frobenius_error(dec.original, approx),
        lossless=dec.is_lossless,
    )
