"""Command-line interface: regenerate paper tables/figures, or run the runtime.

Usage::

    python -m repro.cli list                 # what can be regenerated
    python -m repro.cli fig12                # normalized EDP (Figs. 12/13)
    python -m repro.cli table2               # the TTC-VEGETA pattern menu
    python -m repro.cli fig16 --batch 64     # the GPU sweep at batch 64
    python -m repro.cli all                  # everything (trains the zoo)

    python -m repro.cli compile --config 2:4          # build an execution plan
    python -m repro.cli compile --autotune            # + pick kernels per layer
    python -m repro.cli serve --requests 32 --max-batch 8   # serving demo
    python -m repro.cli serve --pool thread --workers 4     # replica-parallel
    python -m repro.cli serve --pool process --workers 4    # past the GIL
    python -m repro.cli serve --autotune --tune-observed    # tune on real shapes
    python -m repro.cli serve --metrics-port 9100           # live /metrics scrape
    python -m repro.cli serve --pool process --max-queue 64 --request-timeout 30 \
        --max-retries 2 --no-respawn                        # fault-tolerance knobs
    python -m repro.cli compile --metrics-json plan_metrics.json
    python -m repro.cli lint --strict        # runtime invariant linter

Compiled plans persist across restarts: ``compile --autotune --save-plan
plan.npz`` pays decomposition + tuning once and writes a digest-keyed
artifact; ``compile --plan plan.npz`` / ``serve --plan plan.npz`` reload
it in milliseconds (autotuned backend choices included) and refuse models
whose weights have drifted::

    python -m repro.cli compile --autotune --save-plan plan.npz
    python -m repro.cli serve --plan plan.npz --requests 32
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

__all__ = ["main"]


def _fig12(args: argparse.Namespace) -> str:
    from repro.experiments import fig12_edp

    result = fig12_edp.run(batch=args.batch)
    return result.edp_table() + "\n\n" + result.latency_energy_table()


def _fig15(args: argparse.Namespace) -> str:
    from repro.experiments import fig15_energy_breakdown

    return fig15_energy_breakdown.run().table()


def _fig17(args: argparse.Namespace) -> str:
    from repro.experiments import fig17_synthetic

    return fig17_synthetic.run().table()


def _fig18(args: argparse.Namespace) -> str:
    from repro.experiments import fig18_matmul_error

    return fig18_matmul_error.run().table()


def _fig19(args: argparse.Namespace) -> str:
    from repro.experiments import fig19_ablation

    return fig19_ablation.run().table()


def _fig06(args: argparse.Namespace) -> str:
    from repro.experiments import fig06_layer_sparsity

    return fig06_layer_sparsity.run().table()


def _fig14(args: argparse.Namespace) -> str:
    from repro.experiments import fig14_netwise_layerwise

    result = fig14_netwise_layerwise.run()
    return result.table("weights") + "\n\n" + result.table("activations")


def _fig16(args: argparse.Namespace) -> str:
    from repro.experiments import fig16_gpu

    return fig16_gpu.run(batch=args.batch).table()


def _fig20(args: argparse.Namespace) -> str:
    from repro.experiments import fig20_model_zoo

    return fig20_model_zoo.run().table()


def _runtime_model(args: argparse.Namespace):
    """A pruned ResNet-18 + uniform transform for the runtime commands."""
    from repro.core import TASDConfig
    from repro.nn.models.resnet import resnet18
    from repro.pruning.magnitude import global_magnitude_prune
    from repro.pruning.targets import gemm_layers
    from repro.tasder.transform import TASDTransform

    model = resnet18(num_classes=10, base_width=16)
    global_magnitude_prune(model, args.sparsity)
    config = TASDConfig.parse(args.config if args.config is not None else "2:4")
    transform = TASDTransform(
        weight_configs={name: config for name, _ in gemm_layers(model)}
    )
    return model, transform


def _check_runtime_flags(args: argparse.Namespace) -> None:
    """Reject bad flag combinations before paying the model-build cost."""
    if args.plan is not None:
        if args.autotune or args.backend is not None or args.config is not None:
            raise SystemExit(
                "--plan loads a persisted plan (series config and backend "
                "choices included); --autotune / --backend / --config only "
                "apply when compiling"
            )
        return
    if args.autotune and args.backend is not None:
        raise SystemExit(
            "--autotune and --backend are mutually exclusive: autotuning "
            "picks the backend per layer, a fixed --backend pins it"
        )
    if args.backend is not None:
        from repro.runtime.backends import backend_names

        if args.backend not in backend_names():
            raise SystemExit(
                f"unknown --backend {args.backend!r}; valid backends: "
                + ", ".join(backend_names())
            )


def _compile_kwargs(args: argparse.Namespace) -> dict:
    kwargs = {"autotune": args.autotune}
    if args.backend is not None:
        kwargs["backend"] = args.backend
    return kwargs


def _plan_for(args: argparse.Namespace, model, transform):
    """Build (or load, with ``--plan``) the execution plan the command runs."""
    if args.plan is not None:
        from repro.runtime import PlanDigestError, PlanFormatError, load_plan

        try:
            return load_plan(args.plan, model)
        except FileNotFoundError:
            raise SystemExit(f"plan artifact not found: {args.plan}") from None
        except (PlanFormatError, PlanDigestError) as exc:
            raise SystemExit(f"cannot load plan {args.plan}: {exc}") from None
    from repro.runtime import compile_plan

    return compile_plan(model, transform, **_compile_kwargs(args))


def _save_plan_or_exit(plan, path):
    try:
        return plan.save(path)
    except OSError as exc:
        raise SystemExit(f"cannot save plan to {path}: {exc}") from None


def _compile(args: argparse.Namespace) -> str:
    _check_runtime_flags(args)
    model, transform = _runtime_model(args)
    plan = _plan_for(args, model, transform)
    lines = [plan.summary()]
    if args.save_plan is not None:
        path = _save_plan_or_exit(plan, args.save_plan)
        lines.append(f"plan saved to {path} (reload with --plan {path})")
    if args.metrics_json is not None:
        import json

        snapshot = plan.metrics_registry().snapshot()
        try:
            with open(args.metrics_json, "w") as fh:
                json.dump(snapshot, fh, indent=2, sort_keys=True)
        except OSError as exc:
            raise SystemExit(
                f"cannot write metrics to {args.metrics_json}: {exc}"
            ) from None
        lines.append(
            f"compile metrics ({len(snapshot)} families) written to {args.metrics_json}"
        )
    return "\n".join(lines)


def _tune_observed(args: argparse.Namespace, model, plan, requests) -> str:
    """Profile a served-shaped batch, then re-tune each layer on its shape.

    The serving engine coalesces up to ``max_batch`` requests per
    micro-batch, so the profiling forward runs a batch of that size — the
    GEMM widths recorded (and tuned on) are the widths serving will
    actually see, not the narrower single-request shapes.
    """
    import numpy as np

    from repro.runtime import PlanExecutor, retune_plan

    coalesced = np.concatenate(requests[: max(1, min(args.max_batch, len(requests)))])
    with PlanExecutor(model, plan) as profiler:
        profiler.run(coalesced)
        observed = profiler.stats().observed_cols()
    plan.reset_counters()  # profiling forwards must not pollute the serve stats
    before = plan.backend_choices()
    after = retune_plan(plan, observed)
    changed = sum(1 for name in after if after[name] != before[name])
    widths = sorted(set(observed.values()))
    return (
        f"re-tuned {len(after)} layers on observed GEMM widths {widths} "
        f"({changed} backend choices changed)"
    )


def _install_serve_signals(flags: dict) -> "dict | None":
    """Map SIGTERM -> graceful drain and SIGHUP -> plan reload for `serve`.

    Handlers only set flags; the serving loop acts on them between future
    waits, so all engine work happens on the main thread, not inside a
    signal handler.  Returns the previous handlers for restoration, or
    None when not on the main thread (signal.signal would raise there).
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return None
    previous = {
        signal.SIGTERM: signal.signal(
            signal.SIGTERM, lambda signum, frame: flags.__setitem__("drain", True)
        )
    }
    if hasattr(signal, "SIGHUP"):
        previous[signal.SIGHUP] = signal.signal(
            signal.SIGHUP, lambda signum, frame: flags.__setitem__("swap", True)
        )
    return previous


def _restore_serve_signals(previous: "dict | None") -> None:
    import signal

    for signum, handler in (previous or {}).items():
        signal.signal(signum, handler)


def _serve(args: argparse.Namespace) -> str:
    import numpy as np

    from repro.runtime import PlanExecutor, ServingEngine, SwapRejected, make_pool

    _check_runtime_flags(args)
    workers = args.workers if args.workers is not None else args.replicas
    if workers <= 0:
        raise SystemExit(f"--workers must be positive, got {workers}")
    if args.max_queue is not None and args.max_queue <= 0:
        raise SystemExit(f"--max-queue must be positive, got {args.max_queue}")
    if args.max_retries < 0:
        raise SystemExit(f"--max-retries must be >= 0, got {args.max_retries}")
    if args.request_timeout is not None and args.request_timeout <= 0:
        raise SystemExit(f"--request-timeout must be positive, got {args.request_timeout}")
    model, transform = _runtime_model(args)
    plan = _plan_for(args, model, transform)
    rng = np.random.default_rng(0)
    requests = [rng.normal(size=(args.batch, 3, 8, 8)) for _ in range(args.requests)]
    tune_note = None
    if args.tune_observed:
        # Before --save-plan, so the persisted artifact (and the summary
        # below) carry the retuned backend choices.
        tune_note = _tune_observed(args, model, plan, requests)
    if args.save_plan is not None:
        _save_plan_or_exit(plan, args.save_plan)
    lines = [plan.summary()]
    if tune_note is not None:
        lines.append(tune_note)
    if args.pool == "thread" and workers == 1 and not args.shard_layers:
        # The degenerate one-worker pool — unless sharding was asked for,
        # which needs a real pool's scatter/gather path.
        executor_cm = PlanExecutor(model, plan)
    else:
        pool_kwargs = {}
        if args.pool == "process":
            # Supervision knobs only exist on the process pool (thread
            # workers share the parent and cannot die independently).
            pool_kwargs["respawn"] = args.respawn
            if args.request_timeout is not None:
                pool_kwargs["request_timeout"] = args.request_timeout
        executor_cm = make_pool(args.pool, model, plan, workers=workers, **pool_kwargs)
    metrics_note = None
    with executor_cm as executor:
        with ServingEngine(
            executor,
            max_batch=args.max_batch,
            batch_window=args.window,
            workers=workers,
            max_queue=args.max_queue,
            max_retries=args.max_retries,
        ) as engine:
            server = (
                engine.serve_metrics(port=args.metrics_port)
                if args.metrics_port is not None
                else None
            )
            if args.shard_layers:
                decisions = engine.enable_sharding()
                chosen = {
                    name: d.spec.num_shards
                    for name, d in decisions.items()
                    if d.spec is not None
                }
                lines.append(
                    "sharding: "
                    + (
                        ", ".join(f"{n} x{k}" for n, k in sorted(chosen.items()))
                        if chosen
                        else "no layer beat its unsharded GEMM (all stay whole)"
                    )
                )
            flags: dict = {}
            previous_handlers = _install_serve_signals(flags)
            try:
                futures = [engine.submit(x, shard=args.shard_layers) for x in requests]
                for f in futures:
                    while True:
                        if flags.pop("swap", False):
                            if args.plan is None:
                                lines.append(
                                    "SIGHUP ignored: no --plan artifact path to reload"
                                )
                            else:
                                try:
                                    info = engine.swap_plan(args.plan)
                                    lines.append(
                                        f"SIGHUP: hot-swapped plan from {args.plan} "
                                        f"({info['swapped_workers']} workers rolled)"
                                    )
                                except SwapRejected as exc:
                                    lines.append(
                                        f"SIGHUP: swap rejected, old plan kept "
                                        f"({exc.reason})"
                                    )
                        if flags.pop("drain", False):
                            drained = engine.drain(timeout=args.drain_timeout)
                            lines.append(
                                "SIGTERM: drained gracefully, queue empty"
                                if drained
                                else "SIGTERM: drain timed out with work pending"
                            )
                            break
                        try:
                            f.result(timeout=0.2)
                            break
                        except TimeoutError:
                            continue
                    if flags == {} and not engine.running:
                        break  # drained: every admitted future is resolved
                for f in futures:
                    f.result(timeout=120.0)
                if server is not None:
                    metrics_note = _scrape_own_metrics(server)
            finally:
                _restore_serve_signals(previous_handlers)
                if server is not None:
                    server.close()
        report = engine.report()
        stats = executor.stats()
    tail = [stats.table(), report.summary()]
    if metrics_note is not None:
        tail.append(metrics_note)
    return "\n\n".join(lines + tail)


def _scrape_own_metrics(server) -> str:
    """Scrape the engine's own /metrics endpoint for the serve demo output."""
    import urllib.request

    with urllib.request.urlopen(server.url + "/metrics", timeout=10.0) as resp:
        body = resp.read().decode("utf-8")
    keep = [
        line
        for line in body.splitlines()
        if line.startswith(("tasd_serve_requests_total", "tasd_worker_alive"))
        or (line.startswith("tasd_serve_request_latency_seconds") and "+Inf" in line)
    ]
    return "\n".join(
        [f"metrics endpoint served at {server.url}/metrics "
         f"({len(body.splitlines())} lines); sample:"]
        + ["  " + line for line in keep]
    )


def _table(n: int) -> Callable[[argparse.Namespace], str]:
    def runner(args: argparse.Namespace) -> str:
        from repro.experiments import tables

        return getattr(tables, f"table{n}")()

    return runner


COMMANDS: dict[str, tuple[Callable[[argparse.Namespace], str], str]] = {
    "table1": (_table(1), "HW capability matrix"),
    "table2": (_table(2), "TTC-VEGETA-M8 pattern menu (via TASD composition)"),
    "table3": (_table(3), "evaluated HW designs"),
    "table4": (_table(4), "representative layer dimensions"),
    "fig6": (_fig06, "per-layer sparsity of the sparse ResNet-50 [trains models]"),
    "fig12": (_fig12, "normalized EDP across designs and workloads (+Fig. 13)"),
    "fig14": (_fig14, "network-wise vs layer-wise TASD [trains models]"),
    "fig15": (_fig15, "energy breakdown, TTC vs dense TC"),
    "fig16": (_fig16, "2:4 TASD-W on the modelled GPU [trains models]"),
    "fig17": (_fig17, "synthetic drop rates (Appendix A)"),
    "fig18": (_fig18, "matmul error vs approximated sparsity (Appendix A)"),
    "fig19": (_fig19, "system ablation (Appendix B)"),
    "fig20": (_fig20, "model-zoo MAC reductions [trains models]"),
}

# Runtime subcommands: not part of "all" (they demo the serving system, not
# a paper figure).
RUNTIME_COMMANDS: dict[str, tuple[Callable[[argparse.Namespace], str], str]] = {
    "compile": (_compile, "compile a TASD execution plan for a sparse ResNet-18"),
    "serve": (_serve, "micro-batched serving demo over a compiled plan"),
}

# Tooling subcommands own their full argv (their flag sets don't overlap the
# experiment flags above), so they dispatch before the experiment parser runs.
TOOL_COMMANDS: dict[str, str] = {
    "lint": "run the runtime invariant linter (same as python -m repro.lint)",
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        from repro.lint import main as lint_main

        return lint_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiment",
        help="one of: list, all, "
        + ", ".join(list(COMMANDS) + list(RUNTIME_COMMANDS) + list(TOOL_COMMANDS)),
    )
    parser.add_argument("--batch", type=int, default=1, help="batch size where applicable")
    parser.add_argument(
        "--config",
        default=None,
        help="TASD series for runtime commands (e.g. 2:4+1:4; default 2:4)",
    )
    parser.add_argument(
        "--sparsity", type=float, default=0.6, help="magnitude-pruning sparsity (runtime)"
    )
    parser.add_argument(
        "--requests", type=int, default=16, help="number of requests to serve (serve)"
    )
    parser.add_argument(
        "--max-batch", type=int, default=4, help="micro-batch size cap (serve)"
    )
    parser.add_argument(
        "--window", type=float, default=0.002, help="micro-batching window in seconds (serve)"
    )
    parser.add_argument(
        "--autotune",
        action="store_true",
        help="micro-benchmark GEMM backends per layer at compile time (compile/serve)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="fix one structured-GEMM backend for every compiled layer (compile/serve)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="legacy spelling of --workers for the thread pool (serve)",
    )
    parser.add_argument(
        "--pool",
        choices=["thread", "process"],
        default="thread",
        help="worker-pool substrate: thread replicas (share the GIL) or "
        "worker processes attached to shared-memory operands (serve)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool workers; with --pool thread, 1 means a plain single "
        "executor (defaults to --replicas) (serve)",
    )
    parser.add_argument(
        "--tune-observed",
        action="store_true",
        help="profile a few requests, then re-tune each layer's GEMM "
        "backend on its observed serving shape instead of the fixed "
        "representative width (serve)",
    )
    parser.add_argument(
        "--save-plan",
        default=None,
        metavar="PATH",
        help="persist the compiled plan (operands, gather tables, autotuned "
        "backend choices) to a .npz artifact after compiling (compile/serve)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="N",
        help="serve a live Prometheus /metrics endpoint on this port while "
        "requests run (0 picks an ephemeral port) (serve)",
    )
    parser.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help="write the compiled plan's metrics snapshot (layer nnz, backend "
        "choices, cache occupancy) as JSON (compile)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="admission bound: reject submits once N requests wait in the "
        "queue instead of growing it without bound (serve)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="S",
        help="seconds a process-pool worker may hold one dispatch before it "
        "is declared hung and retired (serve, --pool process)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per micro-batch after a worker crash before the batch "
        "is split to isolate a poison request (serve)",
    )
    parser.add_argument(
        "--respawn",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="supervise process-pool workers and respawn dead ones from the "
        "shared plan segment (serve, --pool process)",
    )
    parser.add_argument(
        "--shard-layers",
        action="store_true",
        help="latency mode: micro-benchmark per-layer shard counts, then "
        "scatter each request's large layers across the pool's workers "
        "(nnz-balanced row shards, gathered bit-identically) (serve)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds a SIGTERM-triggered graceful drain may spend "
        "finishing admitted requests before giving up (serve)",
    )
    parser.add_argument(
        "--plan",
        default=None,
        metavar="PATH",
        help="load a plan saved with --save-plan instead of recompiling/"
        "re-tuning; refuses artifacts whose weight digests do not match "
        "the model (compile/serve)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (_, desc) in {**COMMANDS, **RUNTIME_COMMANDS}.items():
            print(f"{name:8s} {desc}")
        for name, desc in TOOL_COMMANDS.items():
            print(f"{name:8s} {desc}")
        return 0
    if args.experiment == "all":
        for name, (runner, _) in COMMANDS.items():
            print(f"\n================ {name} ================")
            print(runner(args))
        return 0
    dispatch = {**COMMANDS, **RUNTIME_COMMANDS}
    if args.experiment not in dispatch:
        parser.error(f"unknown experiment {args.experiment!r}; try 'list'")
    print(dispatch[args.experiment][0](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
