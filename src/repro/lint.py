"""``python -m repro.lint`` — run the invariant checkers over the repo.

Usage::

    python -m repro.lint                      # lint src/ tests/ benchmarks/
    python -m repro.lint src/repro/runtime    # or any explicit paths
    python -m repro.lint --strict             # + fail on stale baseline
    python -m repro.lint --json               # machine-readable findings
    python -m repro.lint --list-rules         # the rule catalog
    python -m repro.lint --update-baseline    # accept current findings

Exit codes: 0 clean, 1 findings (or stale baseline under ``--strict``),
2 usage/internal error.  See ``src/repro/analysis/README.md`` for the
rule catalog and the suppression/baseline workflow.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis import all_rules
from repro.analysis.engine import lint_paths, update_baseline

DEFAULT_PATHS = ("src", "tests", "benchmarks")
DEFAULT_BASELINE = "lint-baseline.json"
DEFAULT_CACHE = ".lint-cache.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant linter for the serving runtime",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root for relative paths in reports (default: cwd)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (the ratchet)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="only run the named rule (repeatable)",
    )
    parser.add_argument("--baseline", default=None, metavar="PATH")
    parser.add_argument("--cache", default=None, metavar="PATH")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(all_rules().items()):
            print(f"{rule:16s} {desc}")
        return 0

    root = Path(args.root or Path.cwd()).resolve()
    paths = [Path(p) for p in args.paths] or [
        root / p for p in DEFAULT_PATHS if (root / p).is_dir()
    ]
    if not paths:
        print("lint: no paths to lint", file=sys.stderr)
        return 2
    rules = set(args.rules) if args.rules else None
    if rules is not None:
        unknown = rules - set(all_rules())
        if unknown:
            print(f"lint: unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
    baseline = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    cache = Path(args.cache) if args.cache else root / DEFAULT_CACHE

    start = time.perf_counter()
    result = lint_paths(
        paths,
        root=root,
        baseline_path=baseline,
        cache_path=cache,
        use_cache=not args.no_cache,
        rules=rules,
    )
    elapsed = time.perf_counter() - start

    if args.update_baseline:
        count = update_baseline(result, baseline, root=root)
        print(f"lint: wrote {count} entries to {baseline}")
        return 0

    if args.as_json:
        print(
            json.dumps(
                {
                    "findings": [d.to_json() for d in result.diagnostics],
                    "baselined": [d.to_json() for d in result.baselined],
                    "stale_baseline": [e.fingerprint for e in result.stale_baseline],
                    "errors": result.errors,
                    "files": result.files,
                    "cache_hits": result.cache_hits,
                    "seconds": round(elapsed, 3),
                },
                indent=2,
            )
        )
    else:
        for err in result.errors:
            print(f"ERROR {err}")
        for d in result.diagnostics:
            print(d.render())
        if args.strict:
            for e in result.stale_baseline:
                print(
                    f"STALE baseline entry {e.fingerprint} [{e.rule}] {e.path}: "
                    "the finding no longer exists — remove it (the ratchet "
                    "only tightens)"
                )
        summary = (
            f"lint: {result.files} files, {result.cache_hits} cached, "
            f"{len(result.diagnostics)} finding(s), "
            f"{len(result.baselined)} baselined, "
            f"{len(result.stale_baseline)} stale baseline entr(y/ies) "
            f"in {elapsed:.2f}s"
        )
        print(summary)

    if result.diagnostics or result.errors:
        return 1
    if args.strict and result.stale_baseline:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
