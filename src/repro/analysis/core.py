"""Core types for the ``repro.lint`` framework: diagnostics, per-file
context (AST + suppression pragmas + qualname spans), and the checker
registry.

Everything here is stdlib-only (``ast``, ``re``, ``dataclasses``) so the
linter can run in the bare CI images that only install numpy.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

__all__ = [
    "Diagnostic",
    "FileContext",
    "Checker",
    "register_checker",
    "all_checkers",
    "all_rules",
]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: ``rule`` at ``path:line`` inside ``qualname``."""

    path: str  # repo-relative posix path (or "<snippet>" for lint_source)
    line: int
    rule: str
    qualname: str  # innermost enclosing Class.method, or "<module>"
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.qualname}: {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "qualname": self.qualname,
            "message": self.message,
        }

    @classmethod
    def from_json(cls, d: dict) -> "Diagnostic":
        return cls(d["path"], d["line"], d["rule"], d["qualname"], d["message"])


# ``# lint: disable=rule-a,rule-b — optional reason``
_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=([\w,-]+)")
# ``self.field = ...  # guarded-by: _state_lock``
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")


@dataclass
class FileContext:
    """Parsed source plus the pragma/scope maps the checkers share."""

    path: str  # repo-relative posix path used in diagnostics
    source: str
    tree: ast.Module = field(init=False)
    lines: list[str] = field(init=False)
    # line -> rules disabled exactly on that line
    line_pragmas: dict[int, set[str]] = field(init=False)
    # (start, end, rules) for def/class-line pragmas covering a whole body
    scope_pragmas: list[tuple[int, int, set[str]]] = field(init=False)
    # (start, end, qualname) spans for every function/class, innermost wins
    _qual_spans: list[tuple[int, int, str]] = field(init=False)

    def __post_init__(self) -> None:
        self.tree = ast.parse(self.source)
        self.lines = self.source.splitlines()
        self.line_pragmas = {}
        for i, text in enumerate(self.lines, start=1):
            m = _PRAGMA_RE.search(text)
            if m:
                self.line_pragmas[i] = {r.strip() for r in m.group(1).split(",") if r.strip()}
        # A pragma on a comment-only line covers the next code line too
        # (the idiomatic spot when the offending line is already long).
        for i in sorted(self.line_pragmas):
            if self.lines[i - 1].lstrip().startswith("#"):
                j = i + 1
                while j <= len(self.lines) and (
                    not self.lines[j - 1].strip()
                    or self.lines[j - 1].lstrip().startswith("#")
                ):
                    j += 1
                if j <= len(self.lines):
                    self.line_pragmas.setdefault(j, set()).update(self.line_pragmas[i])
        self.scope_pragmas = []
        self._qual_spans = []
        self._index_scopes(self.tree, prefix="")

    def _index_scopes(self, node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                end = child.end_lineno or child.lineno
                self._qual_spans.append((child.lineno, end, qual))
                # A pragma on the def/class line (or a decorator line)
                # suppresses for the whole body.
                first = min((d.lineno for d in child.decorator_list), default=child.lineno)
                for ln in range(first, child.body[0].lineno):
                    if ln in self.line_pragmas:
                        self.scope_pragmas.append((child.lineno, end, self.line_pragmas[ln]))
                self._index_scopes(child, qual)
            else:
                self._index_scopes(child, prefix)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.line_pragmas.get(line, ()):
            return True
        return any(
            start <= line <= end and rule in rules
            for start, end, rules in self.scope_pragmas
        )

    def qualname_at(self, line: int) -> str:
        best = "<module>"
        best_size = None
        for start, end, qual in self._qual_spans:
            if start <= line <= end:
                size = end - start
                if best_size is None or size <= best_size:
                    best, best_size = qual, size
        return best

    def guarded_by_on(self, lineno: int, end_lineno: int | None = None) -> str | None:
        """The ``# guarded-by: <lock>`` annotation on a statement's lines."""
        for ln in range(lineno, (end_lineno or lineno) + 1):
            if 1 <= ln <= len(self.lines):
                m = _GUARDED_RE.search(self.lines[ln - 1])
                if m:
                    return m.group(1)
        return None

    def diag(self, rule: str, line: int, message: str) -> Diagnostic:
        return Diagnostic(self.path, line, rule, self.qualname_at(line), message)


class Checker:
    """Base class.  Subclasses register with :func:`register_checker`.

    ``check`` yields per-file diagnostics.  Checkers that need cross-file
    knowledge implement ``collect`` (per-file, cacheable, JSON-safe facts)
    and ``finalize`` (global pass over all collected facts).
    """

    name: str = ""
    rules: tuple[str, ...] = ()
    description: str = ""

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        return []

    def collect(self, ctx: FileContext) -> dict | None:
        return None

    def finalize(self, facts: dict[str, dict]) -> list[Diagnostic]:
        """``facts`` maps path -> this checker's collected facts."""
        return []


_REGISTRY: dict[str, Checker] = {}


def register_checker(cls: type[Checker]) -> type[Checker]:
    inst = cls()
    if not inst.name or not inst.rules:
        raise ValueError(f"checker {cls.__name__} must define name and rules")
    _REGISTRY[inst.name] = inst
    return cls


def all_checkers() -> dict[str, Checker]:
    # Importing the package registers the built-in checkers exactly once.
    from repro.analysis import checkers as _  # noqa: F401

    return dict(_REGISTRY)


def all_rules() -> dict[str, str]:
    """rule id -> owning checker description."""
    return {
        rule: chk.description
        for chk in all_checkers().values()
        for rule in chk.rules
    }
