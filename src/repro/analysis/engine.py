"""The lint engine: file discovery, per-file caching, suppression and
baseline filtering, and the two-pass (per-file + global) checker drive.

Caching: ``.lint-cache.json`` maps each repo-relative path to the blake2
digest of its content plus the diagnostics and cross-file facts computed
from it.  A warm run over an unchanged repo parses nothing — it only
hashes file contents and replays the cached per-file results (the global
``finalize`` pass re-runs every time; it is pure dict-walking and cheap).
That is what keeps the CI gate's warm path under a second.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineEntry, fingerprint
from repro.analysis.core import Checker, Diagnostic, FileContext, all_checkers

__all__ = ["LintResult", "lint_paths", "lint_source"]

_CACHE_VERSION = 3
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", ".benchmarks"}


@dataclass
class LintResult:
    diagnostics: list[Diagnostic] = field(default_factory=list)  # actionable
    baselined: list[Diagnostic] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files: int = 0
    cache_hits: int = 0
    errors: list[str] = field(default_factory=list)  # unparseable files

    @property
    def clean(self) -> bool:
        return not self.diagnostics and not self.errors


def _digest(text: str) -> str:
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def discover(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in f.parts):
                    files.append(f)
        elif p.suffix == ".py":
            files.append(p)
    return files


def _line_text(source_lines: list[str], line: int) -> str:
    return source_lines[line - 1] if 1 <= line <= len(source_lines) else ""


def lint_source(
    source: str,
    path: str = "<snippet>",
    rules: set[str] | None = None,
) -> list[Diagnostic]:
    """Lint one in-memory snippet (the fixture-test hook): runs every
    checker including the global pass, no cache, no baseline.  Suppression
    pragmas in the snippet are honored; returns the surviving diagnostics
    sorted by line."""
    ctx = FileContext(path=path, source=source)
    checkers = all_checkers().values()
    diags: list[Diagnostic] = []
    facts_by_checker: dict[str, dict[str, dict]] = {}
    for chk in checkers:
        diags.extend(chk.check(ctx))
        facts = chk.collect(ctx)
        if facts is not None:
            facts_by_checker[chk.name] = {path: facts}
    for chk in checkers:
        if chk.name in facts_by_checker:
            diags.extend(chk.finalize(facts_by_checker[chk.name]))
    out = [
        d
        for d in diags
        if not ctx.is_suppressed(d.rule, d.line)
        and (rules is None or d.rule in rules)
    ]
    return sorted(out)


def lint_paths(
    paths: list[str | Path],
    root: str | Path | None = None,
    baseline_path: str | Path | None = None,
    cache_path: str | Path | None = None,
    use_cache: bool = True,
    rules: set[str] | None = None,
) -> LintResult:
    root = Path(root or Path.cwd()).resolve()
    files = discover([Path(p).resolve() for p in paths])
    checkers = list(all_checkers().values())
    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()

    cache: dict = {}
    cache_file = Path(cache_path) if cache_path else None
    if use_cache and cache_file and cache_file.exists():
        try:
            loaded = json.loads(cache_file.read_text())
            if loaded.get("version") == _CACHE_VERSION:
                cache = loaded.get("files", {})
        except (json.JSONDecodeError, OSError):
            cache = {}

    result = LintResult()
    new_cache: dict = {}
    facts_by_checker: dict[str, dict[str, dict]] = {c.name: {} for c in checkers}
    per_file_diags: dict[str, list[Diagnostic]] = {}
    sources: dict[str, list[str]] = {}

    for f in files:
        try:
            relpath = f.relative_to(root).as_posix()
        except ValueError:
            relpath = f.as_posix()
        try:
            source = f.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            result.errors.append(f"{relpath}: unreadable ({exc})")
            continue
        result.files += 1
        sources[relpath] = source.splitlines()
        digest = _digest(source)
        entry = cache.get(relpath)
        if entry and entry.get("digest") == digest:
            result.cache_hits += 1
            per_file_diags[relpath] = [
                Diagnostic.from_json(d) for d in entry["diagnostics"]
            ]
            for cname, facts in entry.get("facts", {}).items():
                if cname in facts_by_checker:
                    facts_by_checker[cname][relpath] = facts
            new_cache[relpath] = entry
            continue
        try:
            ctx = FileContext(path=relpath, source=source)
        except SyntaxError as exc:
            result.errors.append(f"{relpath}: syntax error ({exc})")
            continue
        diags: list[Diagnostic] = []
        facts_entry: dict[str, dict] = {}
        for chk in checkers:
            diags.extend(chk.check(ctx))
            facts = chk.collect(ctx)
            if facts is not None:
                facts_by_checker[chk.name][relpath] = facts
                facts_entry[chk.name] = facts
        diags = sorted(d for d in diags if not ctx.is_suppressed(d.rule, d.line))
        per_file_diags[relpath] = diags
        new_cache[relpath] = {
            "digest": digest,
            "diagnostics": [d.to_json() for d in diags],
            "facts": facts_entry,
        }

    # Global pass over the collected facts (cheap; never cached).
    global_diags: list[Diagnostic] = []
    for chk in checkers:
        global_diags.extend(chk.finalize(facts_by_checker[chk.name]))

    all_diags = sorted(
        [d for ds in per_file_diags.values() for d in ds] + global_diags
    )
    if rules is not None:
        all_diags = [d for d in all_diags if d.rule in rules]

    seen_fps: set[str] = set()
    for d in all_diags:
        fp = fingerprint(d, _line_text(sources.get(d.path, []), d.line))
        seen_fps.add(fp)
        (result.baselined if fp in baseline else result.diagnostics).append(d)
    result.stale_baseline = baseline.stale(seen_fps)

    if use_cache and cache_file:
        try:
            cache_file.write_text(
                json.dumps({"version": _CACHE_VERSION, "files": new_cache})
            )
        except OSError:
            pass  # a read-only checkout just runs cold every time
    return result


def update_baseline(
    result: LintResult,
    baseline_path: str | Path,
    root: str | Path | None = None,
    justification: str = "baselined by --update-baseline; justify before merging",
) -> int:
    """Write every current finding into the baseline file.  Returns the
    number of entries written."""
    root = Path(root or Path.cwd()).resolve()
    entries: list[BaselineEntry] = []
    for d in result.diagnostics + result.baselined:
        try:
            lines = (root / d.path).read_text().splitlines()
        except OSError:
            lines = []
        entries.append(
            BaselineEntry(
                fingerprint(d, _line_text(lines, d.line)),
                d.rule,
                d.path,
                justification,
            )
        )
    Baseline(entries).save(baseline_path)
    return len(entries)
