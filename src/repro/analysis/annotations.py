"""Runtime-visible markers consumed by the ``repro.lint`` static checkers.

These are deliberately zero-cost at runtime: each decorator only stamps a
dunder attribute and returns its argument unchanged, so decorating a hot
function (or aliasing it, as ``LayerPlan.__call__ = LayerPlan.gemm`` does)
changes nothing about how it executes.  The static checkers in
``repro.analysis.checkers`` find the *decorator syntax* in the AST — the
attributes exist only so runtime introspection and tests can agree with
the linter about what is tagged.

This module must stay import-free (stdlib ``typing`` only) because every
runtime module imports it; a heavyweight import here would tax cold-start
of the worker processes that ``ProcessWorkerPool`` spawns.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["hot_path", "cross_process"]

_F = TypeVar("_F", bound=Callable)
_C = TypeVar("_C", bound=type)


def hot_path(fn: _F) -> _F:
    """Mark ``fn`` as serving-hot: the ``hot-path`` checker forbids lock
    construction, wall-clock reads (``time.time``), printing, logging, and
    I/O inside it.  Monotonic clocks (``time.perf_counter``) and *using*
    an existing lock (``with self._lock:``) remain allowed."""
    fn.__hot_path__ = True
    return fn


def cross_process(cls: _C) -> _C:
    """Mark ``cls`` as shipped across the worker pipe: the
    ``cross-process`` checker requires every field to be transitively
    picklable by construction (primitives, containers of primitives,
    ndarrays, or classes that define ``__getstate__``/``__setstate__``)."""
    cls.__cross_process__ = True
    return cls
