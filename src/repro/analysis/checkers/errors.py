"""Typed-error contract: two rules.

``typed-raise`` — public entry points of the serving runtime
(``src/repro/runtime/*.py``, public class + public method or public
module-level function) may only raise exceptions from the documented
typed set: the runtime's own error taxonomy (``QueueFull``,
``DeadlineExceeded``, ``SwapRejected``, ``WorkerCrashError``, ...) plus
the narrow builtin contract errors (``ValueError``, ``TypeError``, ...).
Raising bare ``RuntimeError`` / ``Exception`` from a public API is
flagged: callers cannot catch what the API does not name.  Re-raises
(``raise`` / ``raise exc``) always pass — propagation is not a new
contract.

``broad-except`` — ``except Exception:`` (or bare / ``BaseException``)
anywhere is an error unless the handler re-raises (any ``raise``
statement in its body) or carries ``# lint: disable=broad-except`` with
a written reason.  This is what forced the triage of the runtime's
pre-existing broad handlers: each is now either narrowed or annotated.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Diagnostic, FileContext, register_checker

# The runtime's documented typed-error taxonomy (serve.py, pool.py,
# planio.py) plus builtins that *are* the contract for argument/state
# validation.  RuntimeError and Exception are deliberately absent.
ALLOWED_RAISES = {
    # runtime taxonomy
    "QueueFull",
    "DeadlineExceeded",
    "SwapRejected",
    "EngineStopped",
    "WorkerCrashError",
    "PoolDegradedError",
    "PlanSwapError",
    "RemoteTraceback",
    "PlanFormatError",
    "PlanDigestError",
    # builtin contract errors
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "AttributeError",
    "NotImplementedError",
    "FileNotFoundError",
    "OSError",
    "StopIteration",
    "TimeoutError",
    "AssertionError",
    "KeyboardInterrupt",
    "SystemExit",
}

_BROAD = {"Exception", "BaseException"}


def _exc_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_runtime_path(path: str) -> bool:
    return "repro/runtime/" in path.replace("\\", "/")


@register_checker
class TypedErrorChecker(Checker):
    name = "typed-errors"
    rules = ("typed-raise", "broad-except")
    description = (
        "public runtime entry points raise only documented typed errors; "
        "'except Exception' must re-raise, chain, or carry a pragma"
    )

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        diags = self._broad_excepts(ctx)
        if _is_runtime_path(ctx.path):
            diags.extend(self._typed_raises(ctx))
        return diags

    # ------------------------------------------------------------ #
    def _broad_excepts(self, ctx: FileContext) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names: set[str] = set()
            if node.type is None:
                names.add("<bare>")
            elif isinstance(node.type, ast.Tuple):
                names.update(filter(None, (_exc_name(e) for e in node.type.elts)))
            else:
                name = _exc_name(node.type)
                if name:
                    names.add(name)
            broad = names & (_BROAD | {"<bare>"})
            if not broad:
                continue
            if any(isinstance(n, ast.Raise) for n in ast.walk(node)):
                continue  # re-raises or chains: propagation is fine
            caught = "bare except" if "<bare>" in broad else f"except {broad.pop()}"
            diags.append(
                ctx.diag(
                    "broad-except",
                    node.lineno,
                    f"{caught} swallows all failures without re-raising; "
                    "narrow it or annotate '# lint: disable=broad-except — reason'",
                )
            )
        return diags

    # ------------------------------------------------------------ #
    def _typed_raises(self, ctx: FileContext) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for fn, public in self._entry_points(ctx.tree):
            if not public:
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                if isinstance(exc, ast.Call):
                    name = _exc_name(exc.func)
                elif isinstance(exc, ast.Name):
                    continue  # `raise err` — propagating a caught object
                else:
                    name = _exc_name(exc)
                if name is None or name in ALLOWED_RAISES:
                    continue
                diags.append(
                    ctx.diag(
                        "typed-raise",
                        node.lineno,
                        f"public runtime entry point raises {name}, which is "
                        "not in the documented typed-error set "
                        "(see repro/analysis/checkers/errors.py)",
                    )
                )
        return diags

    def _entry_points(self, tree: ast.Module):
        """Yield (function node, is_public) for module-level functions and
        methods of module-level classes."""
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, not node.name.startswith("_")
            elif isinstance(node, ast.ClassDef):
                cls_public = not node.name.startswith("_")
                for meth in node.body:
                    if isinstance(meth, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        public = (
                            cls_public
                            and not meth.name.startswith("_")
                            or meth.name in ("__enter__", "__exit__", "__call__")
                            and cls_public
                        )
                        yield meth, public
