"""Built-in checkers.  Importing this package registers all of them with
:mod:`repro.analysis.core`'s registry (each module's ``@register_checker``
runs at import time)."""

from repro.analysis.checkers import (  # noqa: F401
    errors,
    hotpath,
    locks,
    pickles,
    shard,
    shm,
)
