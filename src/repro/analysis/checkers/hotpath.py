"""``hot-path``: functions decorated ``@hot_path`` must stay pure enough
for the ≤5% serving-overhead fence.

Banned inside a hot function (including its nested helpers):

- lock *construction* — ``threading.Lock()`` & friends (allocating a
  lock per call is a classic slow-creep regression; *using* an existing
  lock via ``with self._lock:`` is allowed and checked by
  ``guarded-field`` instead);
- wall-clock reads — ``time.time()`` (hot code must use the monotonic
  clocks ``time.perf_counter``/``time.monotonic`` so NTP steps cannot
  corrupt latency accounting), and ``time.sleep``;
- console/file I/O — ``print``, ``open``, ``input``, ``breakpoint``,
  ``sys.stdout/stderr.write``;
- logging — ``logging.*`` / ``logger.*`` / ``log.*`` level calls.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Diagnostic, FileContext, register_checker

_BANNED_BUILTINS = {"print", "open", "input", "breakpoint"}
_BANNED_TIME_ATTRS = {"time", "sleep"}
_LOCK_CTORS = {
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
}
_LOG_BASES = {"logging", "logger", "log"}
_LOG_METHODS = {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}


def _has_hot_path_decorator(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "hot_path":
            return True
    return False


def _from_imports(tree: ast.Module) -> dict[str, tuple[str, str]]:
    """local name -> (module, original name) for module-level from-imports."""
    out: dict[str, tuple[str, str]] = {}
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                out[alias.asname or alias.name] = (node.module, alias.name)
    return out


@register_checker
class HotPathChecker(Checker):
    name = "hot-path"
    rules = ("hot-path",)
    description = (
        "@hot_path functions must not construct locks, read the wall "
        "clock, print, log, or do I/O"
    )

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        imports = _from_imports(ctx.tree)
        diags: list[Diagnostic] = []
        for fn in ast.walk(ctx.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _has_hot_path_decorator(fn):
                    self._check_body(ctx, fn, imports, diags)
        return diags

    def _check_body(
        self,
        ctx: FileContext,
        fn: ast.AST,
        imports: dict[str, tuple[str, str]],
        diags: list[Diagnostic],
    ) -> None:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            offense = self._offense(node, imports)
            if offense:
                diags.append(ctx.diag("hot-path", node.lineno, offense))

    def _offense(
        self, call: ast.Call, imports: dict[str, tuple[str, str]]
    ) -> str | None:
        fn = call.func
        if isinstance(fn, ast.Name):
            name = fn.id
            if name in _BANNED_BUILTINS:
                return f"{name}() in a @hot_path function (console/file I/O)"
            origin = imports.get(name)
            if origin == ("time", "time"):
                return (
                    "time.time() in a @hot_path function — use the monotonic "
                    "time.perf_counter()/time.monotonic()"
                )
            if origin == ("time", "sleep"):
                return "time.sleep() in a @hot_path function"
            if name in _LOCK_CTORS and (
                origin is None or origin[0] in ("threading", "multiprocessing")
            ):
                return (
                    f"{name}() constructs a synchronization primitive in a "
                    "@hot_path function — allocate it once at init time"
                )
            return None
        if isinstance(fn, ast.Attribute):
            attr = fn.attr
            base = fn.value
            if isinstance(base, ast.Name):
                if base.id == "time" and attr in _BANNED_TIME_ATTRS:
                    if attr == "time":
                        return (
                            "time.time() in a @hot_path function — use the "
                            "monotonic time.perf_counter()/time.monotonic()"
                        )
                    return "time.sleep() in a @hot_path function"
                if base.id in ("threading", "multiprocessing") and attr in _LOCK_CTORS:
                    return (
                        f"{base.id}.{attr}() constructs a synchronization "
                        "primitive in a @hot_path function — allocate it once "
                        "at init time"
                    )
                if base.id in _LOG_BASES and attr in _LOG_METHODS:
                    return f"{base.id}.{attr}() logging call in a @hot_path function"
            if attr == "write" and isinstance(base, ast.Attribute):
                if base.attr in ("stdout", "stderr"):
                    return f"sys.{base.attr}.write() in a @hot_path function"
        return None
