"""``shard-spec``: invariants of the intra-layer sharding subsystem.

A shard table (:class:`~repro.runtime.shard.ShardSpec`) crosses the
process boundary twice — pickled to pool workers inside plan specs and
persisted into plan artifacts — so the class definition must carry
``@cross_process`` (the contract the ``pickle-contract`` checker
enforces for payload fields).  And the scatter/gather dispatch path runs
inside every sharded forward, so its entry points must be fenced
``@hot_path`` like the rest of the serving path:

- ``run_sharded`` — the pool-level scatter/gather primitive;
- ``shard_partial`` — the worker-side shard kernel;
- ``_scatter_layer`` / ``_shard_slice_matmul`` — the per-layer dispatch
  hooks the driver replica routes compiled GEMMs through.

Both rules fire on the *definition*, wherever it lives: a new pool
substrate adding an unfenced ``run_sharded``, or a shard-table class
dropping its pickling contract, fails the lint gate instead of the perf
fence (or a worker crash) later.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Diagnostic, FileContext, register_checker

_SHARD_CLASSES = {"ShardSpec"}
_DISPATCH_FUNCTIONS = {
    "run_sharded",
    "shard_partial",
    "_scatter_layer",
    "_shard_slice_matmul",
}


def _decorator_names(node: ast.ClassDef | ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


@register_checker
class ShardChecker(Checker):
    name = "shard-spec"
    rules = ("shard-spec",)
    description = (
        "ShardSpec classes must be @cross_process and sharded "
        "dispatch/gather paths must be @hot_path"
    )

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name in _SHARD_CLASSES:
                if "cross_process" not in _decorator_names(node):
                    diags.append(
                        ctx.diag(
                            "shard-spec",
                            node.lineno,
                            f"class {node.name} is a shard table that crosses "
                            "the process boundary (pool specs, plan artifacts) "
                            "but is not decorated @cross_process",
                        )
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in _DISPATCH_FUNCTIONS:
                    if "hot_path" not in _decorator_names(node):
                        diags.append(
                            ctx.diag(
                                "shard-spec",
                                node.lineno,
                                f"{node.name}() is on the sharded dispatch/"
                                "gather path (runs inside every sharded "
                                "forward) but is not fenced @hot_path",
                            )
                        )
        return diags
