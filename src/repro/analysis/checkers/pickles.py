"""``cross-process``: classes decorated ``@cross_process`` (shipped over
the worker pipe as pickles) must transitively contain only
picklable-by-construction field types.

This is the only two-pass checker: pass 1 (``collect``) records, per
file, every class's annotated fields plus whether it defines the
``__getstate__``/``__setstate__`` pair or is itself ``@cross_process``;
pass 2 (``finalize``) resolves field annotations against the global class
index.  A field type is accepted when it is:

- a primitive (``int``/``float``/``str``/``bool``/``bytes``/``None``);
- a container of accepted types (``tuple``/``list``/``dict``/``set``/
  ``frozenset``/``Optional``/``Union``/``X | Y``, including
  ``tuple[int, ...]``);
- a numpy ``ndarray`` (pickled by value);
- a class found in the index that defines both state dunders, or is a
  dataclass whose fields all recursively pass (cycle-safe).

Anything unresolvable — an arbitrary object type, a callable, an open
handle type — is flagged at the field's line, because a pickle failure
over the worker pipe surfaces as a hung request, not a clean error.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Diagnostic, FileContext, register_checker

_PRIMITIVES = {
    "int",
    "float",
    "str",
    "bool",
    "bytes",
    "bytearray",
    "complex",
    "None",
    "NoneType",
}
_CONTAINERS = {
    "tuple",
    "list",
    "dict",
    "set",
    "frozenset",
    "Tuple",
    "List",
    "Dict",
    "Set",
    "FrozenSet",
    "Optional",
    "Union",
    "Sequence",
    "Mapping",
}
_EXTERNAL_OK = {"ndarray"}  # np.ndarray pickles by value


def _decorator_names(node: ast.ClassDef) -> set[str]:
    names = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


@register_checker
class CrossProcessChecker(Checker):
    name = "cross-process"
    rules = ("cross-process",)
    description = (
        "@cross_process dataclasses must transitively hold only "
        "picklable-by-construction field types"
    )

    def collect(self, ctx: FileContext) -> dict:
        classes: dict[str, dict] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorators = _decorator_names(node)
            methods = {
                m.name
                for m in node.body
                if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            fields = []
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.append(
                        {
                            "name": stmt.target.id,
                            "line": stmt.lineno,
                            "annotation": ast.unparse(stmt.annotation),
                            "suppressed": ctx.is_suppressed(
                                "cross-process", stmt.lineno
                            ),
                        }
                    )
            classes[node.name] = {
                "line": node.lineno,
                "cross_process": "cross_process" in decorators,
                "is_dataclass": "dataclass" in decorators,
                "has_state_dunders": {"__getstate__", "__setstate__"} <= methods,
                "suppressed": ctx.is_suppressed("cross-process", node.lineno),
                "fields": fields,
            }
        return {"classes": classes}

    def finalize(self, facts: dict[str, dict]) -> list[Diagnostic]:
        index: dict[str, dict] = {}
        owner: dict[str, str] = {}
        for path, file_facts in facts.items():
            for name, info in (file_facts or {}).get("classes", {}).items():
                index[name] = info
                owner[name] = path
        diags: list[Diagnostic] = []
        for name, info in index.items():
            if not info["cross_process"] or info["suppressed"]:
                continue
            for f in info["fields"]:
                if f["suppressed"]:
                    continue
                bad = self._reject_reason(f["annotation"], index, seen={name})
                if bad:
                    diags.append(
                        Diagnostic(
                            owner[name],
                            f["line"],
                            "cross-process",
                            name,
                            f"field {f['name']!r} of @cross_process class "
                            f"{name} has type {f['annotation']!r}: {bad}",
                        )
                    )
        return diags

    # ------------------------------------------------------------ #
    def _reject_reason(
        self, annotation: str, index: dict[str, dict], seen: set[str]
    ) -> str | None:
        try:
            expr = ast.parse(annotation.strip(), mode="eval").body
        except SyntaxError:
            return "annotation is not parseable"
        return self._reject_expr(expr, index, seen)

    def _reject_expr(
        self, expr: ast.expr, index: dict[str, dict], seen: set[str]
    ) -> str | None:
        if isinstance(expr, ast.Constant):
            if expr.value is None or isinstance(expr.value, type(Ellipsis)):
                return None
            if isinstance(expr.value, str):  # forward reference
                return self._reject_reason(expr.value, index, seen)
            return None
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
            return self._reject_expr(expr.left, index, seen) or self._reject_expr(
                expr.right, index, seen
            )
        if isinstance(expr, ast.Subscript):
            base = self._tail_name(expr.value)
            if base not in _CONTAINERS:
                return f"{base or ast.unparse(expr.value)} is not a known container"
            inner = expr.slice
            elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            for e in elts:
                bad = self._reject_expr(e, index, seen)
                if bad:
                    return bad
            return None
        name = self._tail_name(expr)
        if name is None:
            return "unsupported annotation form"
        if name in _PRIMITIVES or name in _CONTAINERS or name in _EXTERNAL_OK:
            return None
        if name == "Any":
            return "typing.Any is not picklable by construction"
        info = index.get(name)
        if info is None:
            return "not a primitive and not a class the linter can resolve"
        if name in seen:
            return None  # recursive type; the cycle itself is picklable
        if info["has_state_dunders"]:
            return None  # class manages its own pickle contract
        if info["is_dataclass"] or info["cross_process"]:
            for f in info["fields"]:
                bad = self._reject_reason(f["annotation"], index, seen | {name})
                if bad:
                    return f"via {name}.{f['name']}: {bad}"
            return None
        return f"class {name} neither defines __getstate__/__setstate__ nor is a dataclass"

    @staticmethod
    def _tail_name(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            return expr.attr
        return None
