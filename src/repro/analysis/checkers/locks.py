"""``guarded-field``: fields annotated ``# guarded-by: <lock>`` may only
be touched inside ``with self.<lock>:`` in the same class.

The declaration site is the assignment in (usually) ``__init__``; the
checker then walks every other method tracking the lexical stack of
``with self.<name>:`` blocks and flags any load or store of a guarded
``self.<field>`` made while the declared lock is not held.  Constructors
(``__init__``/``__new__``/``__post_init__``) are exempt — the object is
not yet published to other threads there.  Benign racy reads
(single-writer flags, snapshot properties) are documented with a
``# lint: disable=guarded-field — reason`` pragma rather than silently
tolerated.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Diagnostic, FileContext, register_checker

_CTOR_EXEMPT = {"__init__", "__new__", "__post_init__"}


def _lock_name(expr: ast.expr) -> str | None:
    """``with self._lock:`` / ``with self._cond:`` -> the attribute name."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


@register_checker
class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    rules = ("guarded-field",)
    description = (
        "fields declared '# guarded-by: <lock>' may only be accessed "
        "inside 'with self.<lock>:' in the same class"
    )

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for cls in ast.walk(ctx.tree):
            if isinstance(cls, ast.ClassDef):
                diags.extend(self._check_class(ctx, cls))
        return diags

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> list[Diagnostic]:
        guarded: dict[str, str] = {}  # field -> lock attribute name
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                lock = ctx.guarded_by_on(node.lineno, node.end_lineno)
                if lock is None:
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for t in targets:
                    if (
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                    ):
                        guarded[t.attr] = lock
        if not guarded:
            return []

        diags: list[Diagnostic] = []
        for meth in cls.body:
            if not isinstance(meth, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if meth.name in _CTOR_EXEMPT:
                continue
            for stmt in meth.body:
                self._walk(ctx, guarded, stmt, frozenset(), diags)
        return diags

    def _walk(
        self,
        ctx: FileContext,
        guarded: dict[str, str],
        node: ast.AST,
        held: frozenset[str],
        diags: list[Diagnostic],
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = set(held)
            for item in node.items:
                # The lock expression itself is evaluated unlocked.
                self._walk(ctx, guarded, item.context_expr, held, diags)
                name = _lock_name(item.context_expr)
                if name is not None:
                    inner.add(name)
            for stmt in node.body:
                self._walk(ctx, guarded, stmt, frozenset(inner), diags)
            return
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in guarded
            ):
                lock = guarded[node.attr]
                if lock not in held:
                    line = node.lineno
                    if ctx.guarded_by_on(line) != lock and not ctx.is_suppressed(
                        "guarded-field", line
                    ):
                        verb = "written" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
                        diags.append(
                            ctx.diag(
                                "guarded-field",
                                line,
                                f"self.{node.attr} is {verb} without holding "
                                f"self.{lock} (declared '# guarded-by: {lock}')",
                            )
                        )
        for child in ast.iter_child_nodes(node):
            self._walk(ctx, guarded, child, held, diags)
