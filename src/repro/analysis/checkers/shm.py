"""``shm-lifecycle``: every acquired shared-memory segment must reach
cleanup (``close``/``unlink``) on all control-flow paths, or visibly hand
ownership to someone who will.

Trigger sites are calls to ``SharedMemory(create=True, ...)`` and
``share_plan(...)`` — the two ways this codebase mints a POSIX shm
segment that outlives the process if leaked (the failure class the
``/dev/shm``-diff chaos tests can only probe dynamically).  An
acquisition is considered safe when one of these holds:

- the call's result immediately *escapes* — returned, yielded, stored on
  ``self``, or passed as an argument to another call (ownership handoff,
  e.g. ``cls(shm, owner=True)``);
- the call is used as a context manager (``with SharedMemory(...)``);
- the result is bound to a local name and the enclosing scope has a
  ``finally`` block that calls ``<name>.close()`` or ``<name>.unlink()``,
  or the bound name itself later escapes as above.

Anything else — in particular the straight-line ``shm = SharedMemory(
create=True); ...; return data`` pattern with no ``finally`` — is
flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Diagnostic, FileContext, register_checker


def _call_target(call: ast.Call) -> str | None:
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        return fn.attr
    return None


def _is_trigger(call: ast.Call) -> bool:
    target = _call_target(call)
    if target == "share_plan":
        return True
    if target == "SharedMemory":
        for kw in call.keywords:
            if kw.arg == "create" and isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
    return False


def _first_name(target: ast.expr) -> str | None:
    """The local name an acquisition binds to (first element for tuples,
    matching ``store, spec = share_plan(plan)``)."""
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, (ast.Tuple, ast.List)) and target.elts:
        return _first_name(target.elts[0])
    return None


def _walk_scope(scope: ast.AST):
    """Walk ``scope`` without descending into nested function bodies
    (module-level pass must not re-report function-level acquisitions)."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _returns_object(value: ast.expr, name: str) -> bool:
    """True only when the object itself is returned (bare name, possibly
    inside a tuple/list) — ``return shm.name`` is *not* a handoff."""
    if isinstance(value, ast.Name):
        return value.id == name
    if isinstance(value, (ast.Tuple, ast.List)):
        return any(_returns_object(e, name) for e in value.elts)
    return False


def _name_escapes(scope: ast.AST, name: str, after_line: int) -> bool:
    for node in _walk_scope(scope):
        if getattr(node, "lineno", 0) < after_line:
            continue
        if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
            if _returns_object(node.value, name):
                return True
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
            if node.value.id == name and any(
                isinstance(t, ast.Attribute) for t in node.targets
            ):
                return True
        if isinstance(node, ast.Call):
            for a in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(a, ast.Name) and a.id == name:
                    return True
    return False


def _cleaned_in_finally(scope: ast.AST, name: str) -> bool:
    for node in _walk_scope(scope):
        if isinstance(node, ast.Try) and node.finalbody:
            for inner in node.finalbody:
                for call in ast.walk(inner):
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr in ("close", "unlink")
                        and isinstance(call.func.value, ast.Name)
                        and call.func.value.id == name
                    ):
                        return True
    return False


@register_checker
class ShmLifecycleChecker(Checker):
    name = "shm-lifecycle"
    rules = ("shm-lifecycle",)
    description = (
        "SharedMemory(create=True) / share_plan() acquisitions must reach "
        "close()+unlink() on all paths or hand ownership off"
    )

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node

        diags: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _is_trigger(node)):
                continue
            scope: ast.AST = node
            while scope in parents and not isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
            ):
                scope = parents[scope]
            if self._is_safe(scope, parents, node):
                continue
            diags.append(
                ctx.diag(
                    "shm-lifecycle",
                    node.lineno,
                    f"{_call_target(node)}() acquires a shared-memory segment "
                    "with no close()/unlink() in a finally block and no "
                    "ownership handoff (leaks /dev/shm on error paths)",
                )
            )
        return diags

    def _is_safe(
        self, scope: ast.AST, parents: dict[ast.AST, ast.AST], call: ast.Call
    ) -> bool:
        parent = parents.get(call)
        while isinstance(parent, (ast.Tuple, ast.List, ast.Starred, ast.Await)):
            parent = parents.get(parent)
        if isinstance(parent, (ast.Return, ast.Yield)):
            return True  # handed to the caller
        if isinstance(parent, (ast.Call, ast.keyword)):
            return True  # passed straight into another call
        if isinstance(parent, ast.withitem):
            return True  # context manager closes it
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets if isinstance(parent, ast.Assign) else [parent.target]
            )
            if any(isinstance(t, ast.Attribute) for t in targets):
                return True  # stored on an object; its lifecycle owns it
            name = _first_name(targets[0])
            if name is not None:
                if _cleaned_in_finally(scope, name):
                    return True
                if _name_escapes(scope, name, parent.lineno):
                    return True
        return False
