"""Ratchet baseline: known findings, fingerprinted so they survive line
drift but die when the offending code changes.

A fingerprint hashes (rule, path, qualname, normalized source line) — not
the line *number* — so unrelated edits above a baselined finding do not
invalidate it, while any edit to the finding's own line does.  The
baseline file is JSON, reviewed like code; every entry must carry a
written justification.  ``--strict`` additionally fails on *stale*
entries (fingerprints no longer produced), which is the ratchet: the
baseline can only shrink.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import Diagnostic

__all__ = ["BaselineEntry", "Baseline", "fingerprint"]

_WS = re.compile(r"\s+")


def fingerprint(diag: Diagnostic, line_text: str) -> str:
    normalized = _WS.sub(" ", line_text.strip())
    payload = f"{diag.rule}|{diag.path}|{diag.qualname}|{normalized}"
    return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    justification: str


class Baseline:
    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        self.entries: dict[str, BaselineEntry] = {
            e.fingerprint: e for e in (entries or [])
        }

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        if data.get("version") != 1:
            raise ValueError(f"unsupported baseline version in {path}")
        return cls(
            [
                BaselineEntry(
                    e["fingerprint"], e["rule"], e["path"], e.get("justification", "")
                )
                for e in data.get("entries", [])
            ]
        )

    def save(self, path: str | Path) -> None:
        data = {
            "version": 1,
            "entries": [
                {
                    "fingerprint": e.fingerprint,
                    "rule": e.rule,
                    "path": e.path,
                    "justification": e.justification,
                }
                for e in sorted(self.entries.values(), key=lambda e: (e.path, e.rule))
            ],
        }
        Path(path).write_text(json.dumps(data, indent=2) + "\n")

    def __contains__(self, fp: str) -> bool:
        return fp in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def stale(self, seen_fingerprints: set[str]) -> list[BaselineEntry]:
        return [e for fp, e in sorted(self.entries.items()) if fp not in seen_fingerprints]
