"""``repro.analysis`` — the stdlib-``ast`` invariant linter behind
``python -m repro.lint``.

Public surface:

- :func:`repro.analysis.engine.lint_paths` / ``lint_source`` — run the
  checkers over files or an in-memory snippet;
- :func:`repro.analysis.annotations.hot_path` / ``cross_process`` — the
  zero-cost runtime markers the checkers key on;
- :mod:`repro.analysis.checkers` — the five built-in rules (see
  README.md in this directory for the rule catalog).
"""

from repro.analysis.annotations import cross_process, hot_path
from repro.analysis.baseline import Baseline, BaselineEntry, fingerprint
from repro.analysis.core import Checker, Diagnostic, all_checkers, all_rules
from repro.analysis.engine import LintResult, lint_paths, lint_source

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Checker",
    "Diagnostic",
    "LintResult",
    "all_checkers",
    "all_rules",
    "cross_process",
    "fingerprint",
    "hot_path",
    "lint_paths",
    "lint_source",
]
