"""Real-system substitute: 2:4 semi-structured kernels + GPU latency model."""

from .engine import EnginePlan, build_engine, engine_speedup
from .kernels import (
    PATTERN_2_4,
    compress_2to4,
    decompress_2to4,
    is_2to4_legal,
    prune_2to4,
    sparse_matmul_2to4,
)
from .perf_model import RTX3080, GpuParams, gemm_time_us, layer_speedup

__all__ = [
    "PATTERN_2_4",
    "prune_2to4",
    "compress_2to4",
    "decompress_2to4",
    "sparse_matmul_2to4",
    "is_2to4_legal",
    "GpuParams",
    "RTX3080",
    "gemm_time_us",
    "layer_speedup",
    "EnginePlan",
    "build_engine",
    "engine_speedup",
]
