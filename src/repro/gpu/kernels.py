"""2:4 semi-structured kernels (the sparse-tensor-core functional model).

Functional equivalents of cuSPARSELt's 2:4 path: compress a 2:4-legal
weight matrix to values + 2-bit indices and multiply directly from the
compressed form.  Verified bit-exact against dense matmul in the tests —
this is the kernel-semantics half of the real-system substitution
(DESIGN.md); timing lives in :mod:`repro.gpu.perf_model`.
"""

from __future__ import annotations

import numpy as np

from repro.core.patterns import NMPattern, is_pattern_legal, pattern_view
from repro.core.sparse_ops import CompressedNM, nm_compress, nm_decompress, nm_matmul

__all__ = [
    "PATTERN_2_4",
    "prune_2to4",
    "compress_2to4",
    "decompress_2to4",
    "sparse_matmul_2to4",
    "is_2to4_legal",
]

PATTERN_2_4 = NMPattern(2, 4)


def prune_2to4(w: np.ndarray) -> np.ndarray:
    """Magnitude-prune rows of ``w`` to 2:4 (what ASP / TASD-W 2:4 produces)."""
    if w.shape[-1] % 4 != 0:
        raise ValueError(f"reduction dim {w.shape[-1]} not divisible by 4")
    return pattern_view(w, PATTERN_2_4, axis=-1)


def is_2to4_legal(w: np.ndarray) -> bool:
    """True when every 4-block of ``w`` holds at most 2 non-zeros."""
    return is_pattern_legal(w, PATTERN_2_4, axis=-1)


def compress_2to4(w: np.ndarray) -> CompressedNM:
    """Compress a 2:4-legal matrix (values + 2-bit metadata, half footprint)."""
    return nm_compress(w, PATTERN_2_4)


def decompress_2to4(c: CompressedNM) -> np.ndarray:
    """Expand compressed 2:4 storage back to dense."""
    return nm_decompress(c)


def sparse_matmul_2to4(c: CompressedNM, x: np.ndarray) -> np.ndarray:
    """Sparse GEMM from compressed 2:4 weights: ``decompress(c) @ x``.

    Gathers the two needed rows of ``x`` per 4-block via the metadata —
    half the dense MACs, exactly the sparse-tensor-core dataflow.
    """
    if c.pattern != PATTERN_2_4:
        raise ValueError(f"expected 2:4 compressed input, got {c.pattern}")
    return nm_matmul(c, x)
