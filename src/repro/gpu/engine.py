"""TensorRT-like engine: per-layer kernel selection and end-to-end timing.

Builds an execution plan for a network (a list of full-size layer shapes):
layers whose weights were made 2:4 by TASD-W run the sparse tensor-core
kernel, the rest run dense — then sums modelled latencies.  This is the
Section 5.5 pipeline with the TensorRT runtime replaced by the latency
model of :mod:`repro.gpu.perf_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.shapes import LayerShape

from .perf_model import GpuParams, RTX3080, gemm_time_us

__all__ = ["EnginePlan", "build_engine", "engine_speedup"]


@dataclass
class EnginePlan:
    """An executable plan: per-layer kernel choice and latency."""

    batch: int
    layer_names: list[str] = field(default_factory=list)
    kernels: list[str] = field(default_factory=list)  # "dense" | "sparse24"
    layer_times_us: list[float] = field(default_factory=list)

    @property
    def total_us(self) -> float:
        return sum(self.layer_times_us)

    @property
    def num_sparse(self) -> int:
        return sum(1 for k in self.kernels if k == "sparse24")


def build_engine(
    layers: list[LayerShape],
    sparse_layers: set[str] | frozenset[str] = frozenset(),
    batch: int = 32,
    gpu: GpuParams = RTX3080,
) -> EnginePlan:
    """Time every layer with its selected kernel.

    GEMM orientation per layer: weights (out x red) multiply the im2col'd
    activation matrix (red x spatial*batch) — M = out_features, K =
    reduction, N = spatial x batch.
    """
    plan = EnginePlan(batch=batch)
    for layer in layers:
        sparse = layer.name in sparse_layers
        m, k, n = layer.out_features, layer.reduction, layer.spatial * batch
        plan.layer_names.append(layer.name)
        plan.kernels.append("sparse24" if sparse else "dense")
        plan.layer_times_us.append(
            gemm_time_us(
                m, k, n, sparse=sparse, gpu=gpu,
                x_traffic_factor=1.0 / max(1, layer.kernel_area),
            )
        )
    return plan


def engine_speedup(
    layers: list[LayerShape],
    sparse_layers: set[str] | frozenset[str],
    batch: int = 32,
    gpu: GpuParams = RTX3080,
) -> float:
    """End-to-end dense/TASD latency ratio (Fig. 16's right axis is this - 1)."""
    dense = build_engine(layers, frozenset(), batch, gpu)
    tasd = build_engine(layers, frozenset(sparse_layers), batch, gpu)
    return dense.total_us / tasd.total_us
