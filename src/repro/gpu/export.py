"""Model export: the "export to ONNX, build a TensorRT engine" step (§5.5).

Serialises a trained NumPy model into an *engine spec* — per-layer GEMM
shapes plus which layers carry 2:4-legal weights — the exact information
the TensorRT-like engine needs to pick kernels.  Round-trips through JSON
so specs can be saved next to checkpoints, completing the paper's
deployment pipeline (TASDER → export → engine build → measure).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.gpu.kernels import is_2to4_legal
from repro.nn.module import Module
from repro.tasder.quality import collect_gemm_shapes
from repro.workloads.shapes import LayerShape

from .engine import EnginePlan, build_engine
from .perf_model import GpuParams, RTX3080

__all__ = ["EngineSpec", "export_model", "save_spec", "load_spec", "build_engine_from_spec"]


@dataclass(frozen=True)
class EngineSpec:
    """Everything the engine builder needs, decoupled from the model."""

    model_name: str
    layers: tuple[LayerShape, ...]
    sparse_layers: frozenset[str]

    def to_json(self) -> str:
        return json.dumps(
            {
                "model_name": self.model_name,
                "layers": [asdict(l) for l in self.layers],
                "sparse_layers": sorted(self.sparse_layers),
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "EngineSpec":
        blob = json.loads(text)
        return cls(
            model_name=blob["model_name"],
            layers=tuple(LayerShape(**l) for l in blob["layers"]),
            sparse_layers=frozenset(blob["sparse_layers"]),
        )


def export_model(
    model: Module, sample_input: np.ndarray, model_name: str = "model"
) -> EngineSpec:
    """Export a model's GEMM graph and 2:4 eligibility.

    A layer is marked sparse when its *effective* weight (the TASD-W view
    installed by TASDER, falling back to the trained weight) satisfies 2:4
    along the reduction axis — i.e. when the sparse tensor core can run it
    losslessly.  Ragged reduction dims are exported as dense.
    """
    from repro.pruning.targets import gemm_layers

    shapes = collect_gemm_shapes(model, sample_input)
    layers: list[LayerShape] = []
    sparse: set[str] = set()
    for name, layer in gemm_layers(model):
        if name not in shapes:
            continue
        gs = shapes[name]
        kernel_area = getattr(layer, "kernel_size", 1)
        layers.append(
            LayerShape(
                name=name,
                spatial=gs.m,
                reduction=gs.k,
                out_features=gs.n,
                kind="conv" if hasattr(layer, "kernel_size") else "fc",
                kernel_area=int(kernel_area) ** 2 if hasattr(layer, "kernel_size") else 1,
            )
        )
        w = layer.effective_weight if layer.effective_weight is not None else layer.weight_matrix()
        if w.shape[-1] % 4 == 0 and is_2to4_legal(w):
            sparse.add(name)
    return EngineSpec(model_name=model_name, layers=tuple(layers), sparse_layers=frozenset(sparse))


def save_spec(spec: EngineSpec, path: str | Path) -> None:
    Path(path).write_text(spec.to_json())


def load_spec(path: str | Path) -> EngineSpec:
    return EngineSpec.from_json(Path(path).read_text())


def build_engine_from_spec(
    spec: EngineSpec, batch: int = 32, gpu: GpuParams = RTX3080
) -> EnginePlan:
    """Build the timed execution plan straight from an exported spec."""
    return build_engine(list(spec.layers), spec.sparse_layers, batch=batch, gpu=gpu)
