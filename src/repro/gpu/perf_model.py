"""Ampere-like GEMM latency model (the RTX 3080 timing substitute).

Roofline-style: a GEMM is compute-bound at the tensor-core peak or
bandwidth-bound at DRAM, plus a fixed per-kernel launch cost.  The sparse
2:4 path doubles peak MAC throughput (NVIDIA's STC claim) but runs at a
lower achieved efficiency and only on the weight operand — reproducing the
empirical cuSPARSELt behaviour that small or skinny GEMMs see little or no
gain while large MLP-style GEMMs approach ~1.7x.

Constants approximate an RTX 3080 at FP16: 119 TFLOPS dense tensor peak
(59.5 T MAC/s), 760 GB/s DRAM.  Absolute microseconds are not the claim;
the dense-vs-sparse *ratio* per layer shape is.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuParams", "RTX3080", "gemm_time_us", "layer_speedup"]


@dataclass(frozen=True)
class GpuParams:
    """Throughput/latency parameters of the modelled GPU."""

    name: str = "RTX 3080 (modelled)"
    dense_mac_per_us: float = 59.5e6  # 59.5 T MAC/s -> MACs per microsecond
    sparse_speedup_peak: float = 2.0  # 2:4 tensor core peak ratio
    dense_efficiency: float = 0.80  # achieved fraction of peak, large GEMMs
    sparse_efficiency: float = 0.62  # cuSPARSELt achieves less of its peak
    dram_bytes_per_us: float = 760e3  # 760 GB/s
    launch_overhead_us: float = 4.0
    bytes_per_value: int = 2  # FP16


RTX3080 = GpuParams()


def _utilization(m: int, k: int, n: int) -> float:
    """Derate small/skinny GEMMs: tiles of 128x128x32 must fill 68 SMs."""
    tiles = max(1, (m // 128) or 1) * max(1, (n // 128) or 1)
    fill = min(1.0, tiles / 68.0)
    depth = min(1.0, k / 512.0)
    return max(0.15, fill * (0.5 + 0.5 * depth))


def gemm_time_us(
    m: int,
    k: int,
    n: int,
    sparse: bool = False,
    gpu: GpuParams = RTX3080,
    x_traffic_factor: float = 1.0,
) -> float:
    """Latency of one GEMM ``C[m,n] = W[m,k] @ X[k,n]`` in microseconds.

    ``sparse=True`` uses the 2:4 path: half the weight bytes, doubled peak,
    lower efficiency.  ``x_traffic_factor`` corrects the activation-operand
    DRAM traffic for convolutions executed as implicit GEMM: the logical
    input tensor is read roughly once, not ``kernel_area`` times as a
    materialised im2col would imply (pass ``1/kernel_area``).
    """
    util = _utilization(m, k, n)
    macs = float(m) * k * n
    if sparse:
        peak = gpu.dense_mac_per_us * gpu.sparse_speedup_peak
        compute = macs / (peak * gpu.sparse_efficiency * util)
        w_bytes = m * k * gpu.bytes_per_value * 0.5625  # values + 2-bit metadata
    else:
        compute = macs / (gpu.dense_mac_per_us * gpu.dense_efficiency * util)
        w_bytes = m * k * gpu.bytes_per_value
    traffic = w_bytes + (k * n * x_traffic_factor + m * n) * gpu.bytes_per_value
    memory = traffic / gpu.dram_bytes_per_us
    return max(compute, memory) + gpu.launch_overhead_us


def layer_speedup(m: int, k: int, n: int, gpu: GpuParams = RTX3080) -> float:
    """Dense/sparse time ratio for one layer (>1 means 2:4 helps)."""
    return gemm_time_us(m, k, n, sparse=False, gpu=gpu) / gemm_time_us(
        m, k, n, sparse=True, gpu=gpu
    )
