"""Compile-time backend autotuner: micro-benchmark kernels per operand.

Which GEMM backend wins depends on the layer's shape, series order, and
how much of the gather tensor fits in cache — not something a static
heuristic gets right across layers.  So the plan compiler measures: for
each compiled layer it times every candidate backend on the operand
itself against a representative right-hand side, and records the winner
in the :class:`~repro.runtime.plan.LayerPlan`.  The cost is a handful of
small GEMMs per layer, paid once at compile time (exactly where SparseRT
pays its specialisation cost).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .backends import DEFAULT_BACKEND, backend_names, exact_backend_names, get_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import CompiledOperand
    from .plan import ExecutionPlan

__all__ = ["AutotuneResult", "autotune_operand", "retune_plan"]


@dataclass(frozen=True)
class AutotuneResult:
    """Outcome of one operand's backend sweep."""

    backend: str  # winner
    timings: dict[str, float] = field(default_factory=dict)  # median seconds per call
    sample_cols: int = 0

    @property
    def speedup_vs_reference(self) -> float:
        """Winner's speedup over the reference backend (1.0 if unmeasured).

        "Unmeasured" means a timing is *absent* from the sweep — a
        legitimately measured 0.0 s median (timer resolution on tiny
        layers) is a real measurement, not a missing one, so it must not
        collapse the ratio to 1.0.  A zero-time winner against a non-zero
        reference is unboundedly fast (``inf``); two zero medians are
        indistinguishable (1.0).
        """
        ref = self.timings.get(DEFAULT_BACKEND)
        won = self.timings.get(self.backend)
        if ref is None or won is None:
            return 1.0  # reference or winner never timed in this sweep
        if won == 0.0:
            return 1.0 if ref == 0.0 else float("inf")
        return ref / won

    def __str__(self) -> str:
        ranked = sorted(self.timings.items(), key=lambda kv: kv[1])
        body = ", ".join(f"{name} {t * 1e6:.0f}us" for name, t in ranked)
        return f"autotune[{self.sample_cols} cols]: {body}"


def autotune_operand(
    operand: "CompiledOperand",
    sample_cols: int = 32,
    repeats: int = 3,
    backends: Sequence[str] | None = None,
    exact_only: bool = False,
    seed: int = 0,
) -> AutotuneResult:
    """Pick the fastest backend for ``operand`` on a representative shape.

    ``sample_cols`` stands in for the batch dimension the layer will see
    at serving time (output columns of the transposed GEMM); the winner is
    shape-sensitive, so callers serving very large batches should raise
    it.  ``exact_only`` restricts the sweep to bit-identical backends for
    deployments that must preserve the reference arithmetic.  Each
    candidate is warmed up once (building its prepared state, which is
    memoised on the operand and therefore *not* billed to steady-state
    serving) and timed over ``repeats`` calls; the median decides.  Ties
    resolve toward registration order, i.e. toward the reference.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if sample_cols <= 0:
        raise ValueError(f"sample_cols must be positive, got {sample_cols}")
    candidates = tuple(backends) if backends is not None else (
        exact_backend_names() if exact_only else backend_names()
    )
    if not candidates:
        raise ValueError("no candidate backends to autotune over")
    rng = np.random.default_rng(seed)
    # Sample in the dtype the operand will actually serve: a float32 model
    # timed against a float64 right-hand side would measure upcast
    # arithmetic the serving path never runs.
    dtype = np.result_type(*(t.values for t in operand.terms))
    b = rng.normal(size=(operand.padded_shape[1], sample_cols)).astype(dtype, copy=False)
    timings: dict[str, float] = {}
    for name in candidates:
        get_backend(name)  # fail fast on unknown names
        operand.matmul(b, backend=name)  # warm-up; builds memoised state
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            operand.matmul(b, backend=name)
            samples.append(time.perf_counter() - t0)
        timings[name] = sorted(samples)[len(samples) // 2]
    best = min(candidates, key=lambda name: timings[name])
    # Keep only the winner's prepared state resident: losing candidates'
    # state (dense-emulation's decompressed matrix, fused tables, ...) can
    # dwarf the compressed operand itself, and it rebuilds lazily if a
    # plan ever dispatches to that backend anyway.
    for name in list(operand.backend_states):
        if name != best:
            operand.backend_states.pop(name, None)
    return AutotuneResult(backend=best, timings=timings, sample_cols=sample_cols)


def retune_plan(
    plan: "ExecutionPlan",
    observed_cols: dict[str, int],
    default_cols: int = 32,
    repeats: int = 3,
    backends: Sequence[str] | None = None,
    exact_only: bool = False,
) -> dict[str, str]:
    """Re-tune a compiled plan on the GEMM shapes a serving run observed.

    ``observed_cols`` is the per-layer dominant column width a profiling
    run recorded (:meth:`ExecutorStats.observed_cols`); each compiled
    layer is re-swept on its own observed width (falling back to
    ``default_cols`` for layers the profile never touched) and the plan's
    backend choice and autotune record are updated in place.  Returns the
    resulting ``backend_choices()`` — re-tuning an already-installed plan
    takes effect on the next forward, since ``LayerPlan.gemm`` reads the
    backend per call.
    """
    for name, layer_plan in plan.layers.items():
        if layer_plan.mode != "compiled":
            continue
        sweep = autotune_operand(
            layer_plan.operand,
            sample_cols=observed_cols.get(name, default_cols),
            repeats=repeats,
            backends=backends,
            exact_only=exact_only,
        )
        layer_plan.backend = sweep.backend
        layer_plan.autotune = sweep
    return plan.backend_choices()
