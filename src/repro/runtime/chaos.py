"""Fault injection for the serving runtime: break workers on purpose.

A serving system's recovery paths are exactly the ones normal traffic
never exercises, so this module makes faults *reproducible*: the same
injectors drive the chaos test suites (``tests/runtime/test_runtime_chaos``),
the CI chaos-smoke job (``benchmarks/chaos_smoke.py``), and any manual
"kill a worker and watch ``/metrics``" session.

Two complementary mechanisms:

- :class:`ChaosSpec` — a picklable fault program *installed inside* pool
  worker processes (``ProcessWorkerPool(chaos=...)``).  Workers then
  crash on their Nth request, hang, run slow, refuse to start, or die on
  a marked poison input — deterministic faults at exact points in the
  request lifecycle.
- :class:`ChaosMonkey` — an *external* killer for a running
  :class:`~repro.runtime.pool.ProcessWorkerPool`: ``kill -9`` a live
  worker (mid-request or idle), once or on a timer.  This is the
  "machine reality" fault — the OOM killer, a segfault, an operator
  fat-finger — that the supervisor's respawn path must absorb.

Neither mechanism touches the non-chaos hot path: a pool without a
``chaos=`` spec runs the exact same worker loop, and the monkey only
sends signals the kernel could send anyway.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.annotations import cross_process

__all__ = [
    "CHAOS_EXIT_CODE",
    "ChaosSpec",
    "ChaosMonkey",
    "poison_batch",
    "is_poisoned",
    "skewed_plan",
]

# Workers killed by a ChaosSpec exit with this code, so a post-mortem can
# tell an injected crash from a genuine one.
CHAOS_EXIT_CODE = 137


@cross_process
@dataclass(frozen=True)
class ChaosSpec:
    """A deterministic fault program for one pool worker process.

    Every field defaults to "no fault"; combine them freely.  The spec is
    applied independently inside each worker (each counts its *own*
    requests), so ``crash_on_nth=3`` with two workers kills whichever
    worker happens to serve its third request first.

    - ``die_on_start`` — exit before the ready handshake (broken install).
    - ``hang_on_start`` — sleep this many seconds before the handshake
      (exercises ``start_timeout`` expiry and its child cleanup).
    - ``crash_on_nth`` — ``os._exit`` *mid-request* on this worker's Nth
      ``run`` (1-based): the parent sees the pipe die with the request
      in flight, exactly like a segfault.
    - ``hang_on_nth`` / ``hang_seconds`` — the Nth request blocks for
      ``hang_seconds`` before running (a wedged worker; pair with the
      pool's ``request_timeout`` to detect it).
    - ``slow_seconds`` — every request sleeps this long first (a
      degraded-but-alive worker).
    - ``poison_value`` — any request whose first element equals this
      value kills the worker mid-request: a *poison input* that sinks
      every worker it touches, which is what the engine's batch
      splitting must isolate.  Use :func:`poison_batch` to mark inputs.
    - ``die_on_swap`` — ``os._exit`` the moment a hot plan-swap command
      arrives (before touching the new segment): a worker SIGKILLed
      mid-rollout, which the swap must absorb — completing or rolling
      back cleanly without stranding a request or leaking a segment.
      ``die_on_nth_swap`` limits it to that swap ordinal (1-based,
      per worker), so later swaps (and respawned workers re-attaching)
      proceed normally.
    """

    die_on_start: bool = False
    hang_on_start: float = 0.0
    crash_on_nth: int | None = None
    hang_on_nth: int | None = None
    hang_seconds: float = 30.0
    slow_seconds: float = 0.0
    poison_value: float = float("-1.7976931348623157e308")  # sentinel marker
    die_on_swap: bool = False
    die_on_nth_swap: int | None = None

    # ------------------------------------------------------------------ #
    # Worker-side hooks (called from _pool_worker_main; must never raise
    # except by design).
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        if self.hang_on_start > 0.0:
            time.sleep(self.hang_on_start)
        if self.die_on_start:
            os._exit(CHAOS_EXIT_CODE)

    def on_request(self, nth: int, x) -> None:
        """Apply per-request faults; ``nth`` is 1-based within this worker."""
        if is_poisoned(x, self.poison_value):
            os._exit(CHAOS_EXIT_CODE)
        if self.crash_on_nth is not None and nth >= self.crash_on_nth:
            os._exit(CHAOS_EXIT_CODE)
        if self.hang_on_nth is not None and nth == self.hang_on_nth:
            time.sleep(self.hang_seconds)
        if self.slow_seconds > 0.0:
            time.sleep(self.slow_seconds)

    def on_swap(self, nth: int) -> None:
        """Apply swap-time faults; ``nth`` is 1-based within this worker."""
        if self.die_on_swap and (self.die_on_nth_swap is None or nth == self.die_on_nth_swap):
            os._exit(CHAOS_EXIT_CODE)


def skewed_plan(plan, scale: float = 2.0):
    """A deep-copied *corrupt* plan: same weights on paper, wrong arithmetic.

    The copy carries the source plan's weight digests (so it passes a
    swap's identity gate, exactly like a subtly-corrupted artifact would)
    but its first compiled layer's term values are scaled by ``scale`` —
    every forward through it diverges from the source plan far beyond any
    allclose tolerance.  This is the poisoned artifact a swap **canary**
    exists to reject; pair it with ``ServingEngine.swap_plan`` and expect
    ``SwapRejected``.

    The source plan (and its shared operand cache) is never touched: the
    deepcopy duplicates term storage before skewing it.
    """
    import copy

    from .cache import OperandCache

    if scale == 1.0:
        raise ValueError("scale=1.0 would leave the plan correct; pick any other factor")
    # The plan's OperandCache holds a threading.Lock (not deepcopy-able)
    # and its entries are shared with other plans; substitute a fresh,
    # empty cache for the copy instead of cloning it.
    bad = copy.deepcopy(plan, {id(plan.cache): OperandCache()})
    for layer_plan in bad.layers.values():
        if layer_plan.mode == "compiled" and layer_plan.operand is not None:
            op = layer_plan.operand
            values = op.terms[0].values
            values *= scale
            flat = op.flat_values[0]
            # deepcopy may have broken the reshape aliasing between term
            # values and the flattened kernel table; skew whichever copies
            # exist, exactly once each.
            if not np.shares_memory(flat, values):
                flat *= scale
            # Prepared backend state (fused tables, CSR arrays, dense
            # emulation) was derived from the un-skewed values: drop it so
            # every backend recomputes from the corrupt storage.
            op.backend_states.clear()
            return bad
        if layer_plan.dense_weight is not None:
            layer_plan.dense_weight *= scale
            return bad
    raise ValueError("plan has no layer whose arithmetic can be skewed")


def poison_batch(x, value: float = ChaosSpec.poison_value):
    """Mark ``x`` (copied) so chaos-enabled workers crash on serving it."""
    out = np.asarray(x).copy()
    out.flat[0] = value
    return out


def is_poisoned(x, value: float = ChaosSpec.poison_value) -> bool:
    """True if any sample of ``x`` carries the poison marker.

    Checked per sample (each row's leading element), not just ``flat[0]``:
    the serving engine concatenates requests into micro-batches, and a
    poison request must stay lethal wherever it lands in the batch.
    """
    arr = np.asarray(x)
    if arr.size == 0:
        return False
    lead = arr.reshape(arr.shape[0], -1)[:, 0] if arr.ndim > 1 else arr
    return bool(np.any(lead == value))


class ChaosMonkey:
    """Kill live workers of a :class:`ProcessWorkerPool` from the outside.

    ``kill_one()`` SIGKILLs one live worker — idle or mid-request, the
    monkey doesn't care, which is the point.  ``start(interval)`` runs a
    killer thread doing that on a timer (the chaos-smoke load test);
    ``stop()`` halts it.  All state the monkey reads comes from the
    pool's public ``worker_pids()``, so it stays honest about what an
    external fault can see.
    """

    def __init__(self, pool) -> None:
        self.pool = pool
        self.kills = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    def kill_one(self, sig: int = signal.SIGKILL) -> int | None:
        """SIGKILL one live worker; returns its pid (None if none alive)."""
        pids = self.pool.worker_pids()
        if not pids:
            return None
        victim = pids[self.kills % len(pids)]
        try:
            os.kill(victim, sig)
        except ProcessLookupError:  # raced its own death
            return None
        with self._lock:
            self.kills += 1
        return victim

    # ------------------------------------------------------------------ #
    def start(self, interval: float = 1.0) -> "ChaosMonkey":
        """Kill one worker every ``interval`` seconds until :meth:`stop`."""
        if self._thread is not None:
            # lint: disable=typed-raise — programmer-error guard (double
            # start), not a serving-path failure; no typed class fits
            raise RuntimeError("chaos monkey already running")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                self.kill_one()

        self._thread = threading.Thread(target=loop, name="chaos-monkey", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ChaosMonkey":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
