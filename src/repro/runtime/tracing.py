"""Per-request tracing: span timelines in a bounded ring buffer.

Every served request leaves a :class:`RequestTrace` — the timeline of its
life inside the serving engine, split into the spans that matter for
debugging tail latency:

- ``enqueue``    — submit → a worker pulled it off the request queue;
- ``batch_form`` — pulled → its micro-batch dispatched (window waiting);
- ``execute``    — dispatch → the pool returned the outputs;
- ``reply``      — outputs → this request's future resolved.

Traces land in a :class:`TraceBuffer`, a thread-safe ring buffer with a
hard capacity bound: a long-running server keeps the most recent N
requests and drops the oldest, so tracing memory never grows with uptime.
``ServingEngine.traces()`` snapshots it, and the ``/statusz`` endpoint
renders :meth:`TraceBuffer.table` — the "what has the server been doing
lately" view.

Timestamps are ``time.perf_counter()`` values (monotonic, same clock the
engine's latency stats use), so span durations are exact but absolute
times are process-relative.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

__all__ = ["SPAN_NAMES", "Span", "RequestTrace", "TraceBuffer"]

SPAN_NAMES = ("enqueue", "batch_form", "execute", "reply")


@dataclass(frozen=True)
class Span:
    """One named interval inside a request's lifetime."""

    name: str
    start: float  # perf_counter timestamp
    duration: float  # seconds

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class RequestTrace:
    """The span timeline of one served (or failed) request."""

    request_id: int
    batch_size: int
    samples: int
    spans: tuple[Span, ...]
    error: str | None = None
    attempts: int = 1  # dispatch attempts; > 1 means crash-recovery retries

    @property
    def latency(self) -> float:
        return sum(s.duration for s in self.spans)

    @property
    def ok(self) -> bool:
        return self.error is None

    def span(self, name: str) -> Span | None:
        for s in self.spans:
            if s.name == name:
                return s
        return None

    @classmethod
    def from_timestamps(
        cls,
        request_id: int,
        submitted_at: float,
        collected_at: float,
        dispatched_at: float,
        done_at: float,
        resolved_at: float,
        batch_size: int,
        samples: int,
        error: str | None = None,
        attempts: int = 1,
    ) -> "RequestTrace":
        """Build the standard span set from the engine's five timestamps.

        Timestamps are clamped monotonic (each stage starts no earlier
        than the previous one ended), so a request that skipped a stage —
        e.g. served synchronously during shutdown, where collection is
        immediate — yields zero-length spans, never negative ones.
        """
        collected = max(submitted_at, collected_at)
        dispatched = max(collected, dispatched_at)
        done = max(dispatched, done_at)
        resolved = max(done, resolved_at)
        spans = (
            Span("enqueue", submitted_at, collected - submitted_at),
            Span("batch_form", collected, dispatched - collected),
            Span("execute", dispatched, done - dispatched),
            Span("reply", done, resolved - done),
        )
        return cls(
            request_id=request_id,
            batch_size=batch_size,
            samples=samples,
            spans=spans,
            error=error,
            attempts=attempts,
        )


class TraceBuffer:
    """Thread-safe ring buffer of the most recent request traces.

    ``capacity`` is a hard bound: recording trace ``capacity + 1`` drops
    the oldest.  ``recorded`` counts everything ever recorded, so
    ``dropped`` exposes how much history the bound has discarded — a
    server-side signal that the buffer is undersized for the scrape
    interval.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"trace buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buf: deque[RequestTrace] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0

    def record(self, trace: RequestTrace) -> None:
        with self._lock:
            self._buf.append(trace)
            self._recorded += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._buf)

    @property
    def recorded(self) -> int:
        """Traces ever recorded (including ones the ring has dropped)."""
        return self._recorded

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._recorded - len(self._buf)

    def snapshot(self) -> list[RequestTrace]:
        """Oldest-to-newest copy of the retained traces."""
        with self._lock:
            return list(self._buf)

    def clear(self) -> None:
        with self._lock:
            self._buf.clear()

    # ------------------------------------------------------------------ #
    def table(self, limit: int = 25) -> str:
        """Recent-request table (newest first) — the ``/statusz`` body."""
        traces = self.snapshot()[-limit:][::-1]
        header = (
            f"{'request':>8s} {'batch':>5s} {'samples':>7s} "
            f"{'enqueue_ms':>10s} {'form_ms':>8s} {'execute_ms':>10s} "
            f"{'reply_ms':>8s} {'total_ms':>9s}  status"
        )
        lines = [
            f"recent requests: showing {len(traces)} of {len(self)} retained "
            f"({self.recorded} recorded, {self.dropped} dropped by the "
            f"{self.capacity}-entry ring)",
            header,
            "-" * len(header),
        ]
        for t in traces:
            ms = {s.name: s.duration * 1e3 for s in t.spans}
            status = "ok" if t.ok else t.error
            if t.attempts > 1:  # crash-recovery retries are worth seeing
                status = f"{status} (x{t.attempts})"
            lines.append(
                f"{t.request_id:>8d} {t.batch_size:>5d} {t.samples:>7d} "
                f"{ms.get('enqueue', 0.0):>10.2f} {ms.get('batch_form', 0.0):>8.2f} "
                f"{ms.get('execute', 0.0):>10.2f} {ms.get('reply', 0.0):>8.2f} "
                f"{t.latency * 1e3:>9.2f}  {status}"
            )
        return "\n".join(lines) + "\n"
