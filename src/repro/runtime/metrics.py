"""Runtime telemetry spine: metric primitives, registry, and live export.

The runtime's layers already count everything that matters — per-layer
MACs and wall time (:class:`~repro.runtime.counters.LayerCounters`), cache
hits/misses/evictions, per-request latencies — but until now the only way
to see them was a blocking ``stats().table()`` dump after ``stop()``.
This module turns those counters into *live* telemetry:

- :class:`Counter` / :class:`Gauge` / :class:`Histogram` — thread-safe
  metric primitives.  Histograms use **fixed** log-spaced latency buckets
  (:data:`LATENCY_BUCKETS`), so histograms recorded by different workers
  (threads *or* processes) merge exactly: bucket counts are integers over
  identical bounds, and merging is elementwise addition with no rebinning
  error.  That is what lets :class:`~repro.runtime.pool.ProcessWorkerPool`
  workers ship their per-layer histograms with every reply and the parent
  render one coherent view.
- :class:`MetricsRegistry` — a named, labeled family store with a
  ``snapshot()`` plain-dict view (JSON-serializable) and Prometheus
  text-format rendering (:func:`render_prometheus`).
- :func:`merge_snapshots` — combine snapshots from several sources
  (the engine's own registry, scrape-time views of executor stats, worker
  liveness) into one scrape.
- :class:`MetricsServer` — a stdlib ``ThreadingHTTPServer`` exporter
  serving ``/metrics`` (Prometheus text), ``/metrics.json`` (the
  snapshot), ``/healthz`` (pool liveness), and ``/statusz`` (recent
  request traces).  No new dependencies.

Nothing here imports the rest of the runtime, so every layer (counters,
plan, cache, serve) can import this module freely.
"""

from __future__ import annotations

import bisect
import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = [
    "LATENCY_BUCKETS",
    "BATCH_SIZE_BUCKETS",
    "OCCUPANCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "export_executor_stats",
    "merge_snapshots",
    "render_prometheus",
]

# Fixed log-spaced latency bounds: 10 µs → 100 s, four buckets per decade.
# Every latency histogram in the runtime shares these exact bounds, which is
# the invariant that makes cross-worker (and cross-process) merges exact.
LATENCY_BUCKETS = tuple(10.0 ** (e / 4.0) for e in range(-20, 9))

# Micro-batch sizes are small integers; powers-of-two-ish bounds resolve them.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0, 128.0)

# Batch-window occupancy is a fraction of ``max_batch`` in (0, 1].
OCCUPANCY_BUCKETS = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """A monotonically increasing value (requests served, cache hits, ...)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase; got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that can go up and down (queue depth, worker liveness, ...)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bucketed distribution with *fixed* bounds, so merges are exact.

    ``counts[i]`` holds observations with ``value <= buckets[i]`` (and
    greater than the previous bound); ``counts[-1]`` is the overflow bucket
    (``+Inf``).  Two histograms over the same bounds merge by elementwise
    addition — an integer operation with no rebinning error — which is how
    per-worker histograms (shipped across the process-pool pipe inside
    :class:`~repro.runtime.counters.LayerCounters`) combine into one exact
    cross-process view.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "_lock")

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histograms need at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase, got {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    # Locks don't pickle; the process pool ships histogram state across its
    # pipe inside LayerCounters snapshots, so drop the lock and rebuild it.
    def __getstate__(self) -> dict:
        return {
            "buckets": self.buckets,
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def __setstate__(self, state: dict) -> None:
        self.buckets = tuple(state["buckets"])
        self.counts = list(state["counts"])
        self.sum = state["sum"]
        self.count = state["count"]
        self._lock = threading.Lock()

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.buckets == other.buckets
            and self.counts == other.counts
            and self.sum == other.sum
            and self.count == other.count
        )

    def observe(self, value: float) -> None:
        i = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[i] += 1
            self.sum += value
            self.count += 1

    def merge_from(self, other: "Histogram") -> None:
        """Add ``other``'s observations into this histogram (exact)."""
        if other.buckets != self.buckets:
            raise ValueError(
                "cannot merge histograms with different bucket bounds: "
                f"{len(self.buckets)} vs {len(other.buckets)} bounds"
            )
        with self._lock:
            for i, c in enumerate(other.counts):
                self.counts[i] += c
            self.sum += other.sum
            self.count += other.count

    def merged_with(self, other: "Histogram") -> "Histogram":
        out = Histogram(self.buckets)
        out.merge_from(self)
        out.merge_from(other)
        return out

    def snapshot(self) -> "Histogram":
        """An independent copy, safe to hand out while recording continues."""
        out = Histogram(self.buckets)
        with self._lock:
            out.counts = list(self.counts)
            out.sum = self.sum
            out.count = self.count
        return out

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.buckets) + 1)
            self.sum = 0.0
            self.count = 0

    def percentile(self, q: float) -> float:
        """Latency at percentile ``q`` (0..100), interpolated within buckets.

        0.0 on an empty histogram (never NaN).  Observations past the last
        bound report the last bound — the histogram cannot resolve further.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, -(-int(q * self.count) // 100))  # ceil(q/100 * count), >= 1
        cum = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            below, cum = cum, cum + c
            if cum >= rank:
                if i == len(self.buckets):  # overflow bucket
                    return self.buckets[-1]
                lo = self.buckets[i - 1] if i > 0 else 0.0
                return lo + (self.buckets[i] - lo) * (rank - below) / c
        return self.buckets[-1]  # pragma: no cover - counts always reach count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with zero or more label dimensions.

    ``labels(**kv)`` returns the child primitive for one label combination;
    a family declared with no labels proxies the child API directly
    (``inc`` / ``set`` / ``observe`` / ``value``), so unlabeled metrics
    read naturally at call sites.
    """

    def __init__(
        self,
        kind: str,
        name: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ) -> None:
        if kind not in _CHILD_TYPES:
            raise ValueError(f"unknown metric kind {kind!r}; options: {sorted(_CHILD_TYPES)}")
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self.kind = kind
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._buckets = tuple(buckets)
        self._children: dict[tuple[str, ...], object] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets)
        return _CHILD_TYPES[self.kind]()

    def labels(self, **labels: str):
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def series(self) -> list[tuple[dict[str, str], object]]:
        """(labels, child) pairs — children live, snapshot before rendering."""
        with self._lock:
            items = list(self._children.items())
        return [(dict(zip(self.label_names, key)), child) for key, child in items]

    # Label-less convenience: the family *is* its one unlabeled child.
    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value


class MetricsRegistry:
    """Thread-safe store of metric families, snapshottable and renderable.

    Registration is idempotent: asking for an existing name returns the
    existing family (so hot paths can look families up cheaply), but
    re-registering under a different kind or label set is an error — two
    code paths disagreeing about a metric's shape is always a bug.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def _register(self, kind: str, name: str, help: str, labels, buckets=LATENCY_BUCKETS) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.label_names}; cannot re-register "
                        f"as {kind} with labels {tuple(labels)}"
                    )
                return family
            family = MetricFamily(kind, name, help, tuple(labels), buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labels=()) -> MetricFamily:
        return self._register("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", labels=()) -> MetricFamily:
        return self._register("gauge", name, help, labels)

    def histogram(
        self, name: str, help: str = "", labels=(), buckets: tuple[float, ...] = LATENCY_BUCKETS
    ) -> MetricFamily:
        return self._register("histogram", name, help, labels, buckets)

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Plain-dict (JSON-serializable) view of every family and series."""
        out: dict = {}
        for family in self.families():
            series = []
            for labels, child in family.series():
                if family.kind == "histogram":
                    h = child.snapshot()
                    series.append(
                        {
                            "labels": labels,
                            "le": list(h.buckets),
                            "counts": list(h.counts),
                            "sum": h.sum,
                            "count": h.count,
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": series,
            }
        return out

    def render(self) -> str:
        return render_prometheus(self.snapshot())


# ---------------------------------------------------------------------- #
# Snapshot-level operations: merging and Prometheus rendering
# ---------------------------------------------------------------------- #
def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def merge_snapshots(*snapshots: dict) -> dict:
    """Combine registry snapshots from several sources into one scrape.

    Counters and histograms with the same name + labels sum (histograms
    require identical bucket bounds — exact merge, no rebinning); gauges
    take the last writer's value.  Distinct label sets concatenate.
    """
    out: dict = {}
    for snap in snapshots:
        for name, family in snap.items():
            merged = out.get(name)
            if merged is None:
                out[name] = {
                    "type": family["type"],
                    "help": family["help"],
                    "labels": list(family["labels"]),
                    "series": [dict(s) for s in family["series"]],
                }
                continue
            if merged["type"] != family["type"]:
                raise ValueError(
                    f"cannot merge metric {name!r}: kind {merged['type']} vs {family['type']}"
                )
            if not merged["help"] and family["help"]:
                merged["help"] = family["help"]
            by_labels = {_label_key(s["labels"]): s for s in merged["series"]}
            for s in family["series"]:
                incumbent = by_labels.get(_label_key(s["labels"]))
                if incumbent is None:
                    s = dict(s)
                    merged["series"].append(s)
                    by_labels[_label_key(s["labels"])] = s
                elif family["type"] == "counter":
                    incumbent["value"] += s["value"]
                elif family["type"] == "gauge":
                    incumbent["value"] = s["value"]
                else:  # histogram
                    if incumbent["le"] != s["le"]:
                        raise ValueError(
                            f"cannot merge histogram {name!r}: bucket bounds differ"
                        )
                    incumbent["counts"] = [
                        a + b for a, b in zip(incumbent["counts"], s["counts"])
                    ]
                    incumbent["sum"] += s["sum"]
                    incumbent["count"] += s["count"]
    return out


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: dict, extra: dict | None = None) -> str:
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in items.items())
    return "{" + body + "}"


def _format_value(v: float) -> str:
    return repr(float(v)) if isinstance(v, float) and not v.is_integer() else str(int(v))


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, family in snapshot.items():
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        for s in family["series"]:
            if family["type"] == "histogram":
                cum = 0
                for bound, c in zip(s["le"], s["counts"]):
                    cum += c
                    le = _format_labels(s["labels"], {"le": f"{bound:.6g}"})
                    lines.append(f"{name}_bucket{le} {cum}")
                inf = _format_labels(s["labels"], {"le": "+Inf"})
                lines.append(f"{name}_bucket{inf} {s['count']}")
                lines.append(f"{name}_sum{_format_labels(s['labels'])} {repr(float(s['sum']))}")
                lines.append(f"{name}_count{_format_labels(s['labels'])} {s['count']}")
            else:
                lines.append(
                    f"{name}{_format_labels(s['labels'])} {_format_value(s['value'])}"
                )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------- #
# Scrape-time export of executor stats into a registry
# ---------------------------------------------------------------------- #
def export_executor_stats(registry: MetricsRegistry, stats, backends: dict | None = None) -> None:
    """Populate ``registry`` from an ``ExecutorStats``-shaped snapshot.

    Duck-typed (``stats.layers`` / ``stats.cache`` / batch totals) so this
    module never imports the counters layer.  ``backends`` maps layer name
    to the kernel-backend label (``ExecutionPlan.backend_choices()``);
    unlisted layers are labeled with their execution mode stand-in
    ``"dense"``.  Per-layer GEMM histograms merge in exactly — the layer
    counters record them over :data:`LATENCY_BUCKETS`.
    """
    backends = backends or {}
    calls = registry.counter("tasd_layer_calls_total", "GEMM calls per layer", labels=("layer",))
    smacs = registry.counter(
        "tasd_layer_structured_macs_total", "MACs actually executed per layer", labels=("layer",)
    )
    dmacs = registry.counter(
        "tasd_layer_dense_macs_total", "MACs a dense GEMM would run per layer", labels=("layer",)
    )
    seconds = registry.counter(
        "tasd_layer_gemm_seconds_total", "Seconds inside each layer's GEMM", labels=("layer",)
    )
    hist = registry.histogram(
        "tasd_layer_gemm_latency_seconds",
        "Per-call GEMM latency per layer and kernel backend",
        labels=("layer", "backend"),
    )
    for name, c in stats.layers.items():
        calls.labels(layer=name).inc(c.calls)
        smacs.labels(layer=name).inc(c.structured_macs)
        dmacs.labels(layer=name).inc(c.dense_macs)
        seconds.labels(layer=name).inc(c.wall_time)
        hist.labels(layer=name, backend=backends.get(name, "dense")).merge_from(c.gemm_seconds)
    cache = stats.cache
    registry.counter("tasd_cache_hits_total", "Operand-cache hits").inc(cache.hits)
    registry.counter("tasd_cache_misses_total", "Operand-cache misses").inc(cache.misses)
    registry.counter("tasd_cache_evictions_total", "Operand-cache evictions").inc(cache.evictions)
    registry.counter("tasd_executor_batches_total", "Micro-batches executed").inc(stats.batches)
    registry.counter("tasd_executor_samples_total", "Samples executed").inc(stats.samples)
    registry.counter(
        "tasd_executor_wall_seconds_total", "Seconds of model execution (compute volume)"
    ).inc(stats.wall_time)


# ---------------------------------------------------------------------- #
# HTTP exporter
# ---------------------------------------------------------------------- #
class MetricsServer:
    """Serve live telemetry over HTTP from a background thread.

    Built on the stdlib ``ThreadingHTTPServer`` — no dependencies — and
    generic over three callables so any engine (or test) can expose
    itself:

    - ``snapshot_fn() -> dict`` backs ``/metrics`` (Prometheus text) and
      ``/metrics.json`` (the raw snapshot);
    - ``health_fn() -> (bool, dict)`` backs ``/healthz`` (200 when
      healthy, 503 otherwise, detail as JSON).  Degradation is conveyed
      200-with-status: a degraded-but-serving engine returns ``ok`` with
      ``{"status": "degraded"}`` in the detail, reserving 503 for
      ``"dead"`` — stopped, or collapsed with nothing to serve through;
    - ``status_fn() -> str`` backs ``/statusz`` (the recent-request trace
      table).

    ``port=0`` binds an ephemeral port; read the chosen one from
    ``server.port``.  Callable errors surface as HTTP 500 with the
    exception text, never as a hung scrape.
    """

    def __init__(
        self,
        snapshot_fn,
        health_fn=None,
        status_fn=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # keep scrapes off stderr
                pass

            def _reply(self, status: int, content_type: str, body: str) -> None:
                payload = body.encode()
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self) -> None:  # noqa: N802 - http.server contract
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        self._reply(
                            200,
                            "text/plain; version=0.0.4; charset=utf-8",
                            render_prometheus(outer._snapshot_fn()),
                        )
                    elif path == "/metrics.json":
                        self._reply(200, "application/json", json.dumps(outer._snapshot_fn()))
                    elif path == "/healthz":
                        ok, detail = True, {}
                        if outer._health_fn is not None:
                            ok, detail = outer._health_fn()
                        body = json.dumps({"ok": bool(ok), **detail})
                        self._reply(200 if ok else 503, "application/json", body)
                    elif path == "/statusz":
                        body = outer._status_fn() if outer._status_fn else "no status source\n"
                        self._reply(200, "text/plain; charset=utf-8", body)
                    else:
                        self._reply(404, "text/plain", f"unknown path {path}\n")
                # lint: disable=broad-except — a broken snapshot/health
                # callable must surface as a 500, never kill the handler
                # thread (scrapes would hang forever)
                except Exception as exc:
                    try:
                        self._reply(500, "text/plain", f"{type(exc).__name__}: {exc}\n")
                    # lint: disable=broad-except — the client disconnected
                    # mid-error-reply; nothing left to tell it
                    except Exception:  # pragma: no cover - client went away
                        pass

        self._snapshot_fn = snapshot_fn
        self._health_fn = health_fn
        self._status_fn = status_fn
        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="metrics-exporter", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
