"""Back-compat shim: ``ReplicaExecutor`` is now the thread worker pool.

The replica-parallel executor introduced here generalised into the
pluggable worker-pool substrate of :mod:`repro.runtime.pool`: the thread
implementation (:class:`~repro.runtime.pool.ThreadWorkerPool`) is exactly
the old behaviour — one model replica per worker thread, weights aliased,
plan shared, per-replica counters merged — and a process implementation
(:class:`~repro.runtime.pool.ProcessWorkerPool`) scales past the GIL with
shared-memory operands.  ``ReplicaExecutor`` remains as the established
name for the thread pool, keeping its ``replicas=`` vocabulary.

Thread replicas share the parent process, so the process pool's
supervision machinery (health pings, respawn, circuit breaker) does not
apply here: a replica cannot die independently of the server.  The
serving engine's request-level recovery — retries, deadlines, admission
control — works unchanged on top of this pool.
"""

from __future__ import annotations

from repro.nn.module import Module

from .plan import ExecutionPlan
from .pool import ThreadWorkerPool

__all__ = ["ReplicaExecutor"]


class ReplicaExecutor(ThreadWorkerPool):
    """Thread worker pool under its original name and ``replicas=`` spelling.

    Drop-in for :class:`PlanExecutor` wherever only ``install`` / ``run`` /
    ``stats`` are used (the serving engine's contract)::

        plan = compile_plan(model, transform)
        with ReplicaExecutor(model, plan, replicas=4) as ex:
            with ServingEngine(ex, workers=4) as engine:
                ...
    """

    def __init__(self, model: Module, plan: ExecutionPlan, replicas: int = 2) -> None:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        super().__init__(model, plan, workers=replicas)

    @property
    def replicas(self) -> int:
        return self.workers
