"""Replica-parallel executor: one model replica per serving worker.

The single-model :class:`~repro.runtime.executor.PlanExecutor` must hold a
lock across every forward — layers cache forward state on ``self``, so one
model instance cannot run concurrent batches — which serialises all of the
serving engine's workers.  This executor removes the lock by giving each
worker its own *replica* of the model while sharing everything immutable:

- parameter storage is aliased back to the source model (replicas add
  per-layer Python objects and forward caches, not weight copies);
- the compiled :class:`~repro.runtime.plan.ExecutionPlan` is shared —
  every replica serves from the same :class:`CompiledOperand` terms,
  gather tables, prepared backend state, and operand cache;
- only the per-layer perf counters are private per replica (cloned via
  :meth:`ExecutionPlan.clone_layer_plans`), so the hot path never races;
  :meth:`stats` merges them back into one view.

Replicas are checked out of a pool for the duration of one forward, so up
to ``replicas`` batches execute concurrently with no shared mutable state
between them.  Throughput then scales with workers as far as the machine's
cores (and NumPy's GIL-released regions) allow, instead of serialising on
an executor lock.
"""

from __future__ import annotations

import copy
import dataclasses
import queue
import threading
import time

import numpy as np

from repro.nn.module import Module

from .counters import ExecutorStats, LayerCounters
from .plan import ExecutionPlan, LayerPlan

__all__ = ["ReplicaExecutor"]


class ReplicaExecutor:
    """Execute batches against one compiled plan across N model replicas.

    Drop-in for :class:`PlanExecutor` wherever only ``install`` / ``run`` /
    ``stats`` are used (the serving engine's contract)::

        plan = compile_plan(model, transform)
        with ReplicaExecutor(model, plan, replicas=4) as ex:
            with ServingEngine(ex, workers=4) as engine:
                ...

    The source ``model`` itself is never touched: replicas are built from
    it (weights aliased, not copied) and the plan is installed on the
    replicas only, so the caller's model keeps its uncompiled forward.
    """

    def __init__(self, model: Module, plan: ExecutionPlan, replicas: int = 2) -> None:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.model = model
        self.plan = plan
        self.replicas = replicas
        self._pool: "queue.Queue[Module]" = queue.Queue()
        self._replica_plans: list[dict[str, LayerPlan]] = []
        self._installed = False
        self._state_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._batches = 0
        self._samples = 0
        self._wall_time = 0.0

    # ------------------------------------------------------------------ #
    def _build_replica(self) -> tuple[Module, dict[str, LayerPlan]]:
        # Weights (and eval-time buffers like running BatchNorm statistics)
        # are immutable at inference: seeding the deepcopy memo with their
        # arrays makes every replica alias the source model's tensors, so a
        # replica costs layer objects and forward caches — never weights.
        memo: dict[int, object] = {}
        for p in self.model.parameters():
            memo[id(p.data)] = p.data
            # Replicas are inference-only, so sharing gradient storage is
            # safe and avoids duplicating weight-sized buffers per replica.
            memo[id(p.grad)] = p.grad
        for _, buf in self.model.named_buffers():
            memo[id(buf)] = buf
        replica = copy.deepcopy(self.model, memo)
        layer_plans = self.plan.clone_layer_plans()
        self.plan.install(replica, layer_plans)
        replica.eval()
        return replica, layer_plans

    def install(self) -> "ReplicaExecutor":
        with self._state_lock:
            if not self._installed:
                for _ in range(self.replicas):
                    replica, layer_plans = self._build_replica()
                    self._pool.put(replica)
                    self._replica_plans.append(layer_plans)
                self._installed = True
        return self

    def close(self) -> None:
        """Discard the replica pool (the source model was never modified).

        Waits for in-flight forwards, then drops the replicas.  Their
        layer-plan clones are kept so :meth:`stats` keeps reporting the
        accumulated counters after close — the same post-close behaviour
        as :class:`PlanExecutor`.  A later :meth:`run`/:meth:`install`
        builds a fresh replica generation whose counters merge on top.
        """
        with self._state_lock:
            if not self._installed:
                return
            # Wait for in-flight forwards: every replica must be back home.
            for _ in range(self.replicas):
                self._pool.get()
            self._installed = False

    def __enter__(self) -> "ReplicaExecutor":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def run(self, x: np.ndarray) -> np.ndarray:
        """One timed forward on whichever replica is free first.

        Blocks until a replica is available; no lock is held while the
        forward runs, so up to ``replicas`` calls proceed concurrently.
        """
        x = np.asarray(x)
        # install() then checkout, retrying on a timeout: a close() racing
        # this call can drain the pool after our install() check, and a
        # plain blocking get() would then hang forever.  On retry the
        # install() is what refills the pool (lazy reinstall-after-close).
        while True:
            self.install()
            try:
                replica = self._pool.get(timeout=0.05)
                break
            except queue.Empty:
                continue
        try:
            t0 = time.perf_counter()
            y = replica(x)
            elapsed = time.perf_counter() - t0
        finally:
            self._pool.put(replica)
        with self._stats_lock:
            self._batches += 1
            self._samples += int(x.shape[0])
            self._wall_time += elapsed
        return y

    def run_many(self, batches) -> list[np.ndarray]:
        """Run a sequence of batches, returning their outputs in order."""
        return [self.run(x) for x in batches]

    # ------------------------------------------------------------------ #
    def stats(self) -> ExecutorStats:
        """Counters merged across all replicas plus whole-forward timing.

        ``wall_time`` sums per-forward time across replicas, so with
        concurrent workers it can exceed elapsed wall-clock — it measures
        compute volume, like CPU time.  The snapshot is taken without
        stopping in-flight forwards; concurrently-running batches may be
        partially reflected.
        """
        with self._stats_lock:
            batches, samples, wall = self._batches, self._samples, self._wall_time
        with self._state_lock:
            replica_plans = list(self._replica_plans)
        layers: dict[str, LayerCounters] = {}
        for name in self.plan.layers:
            merged = LayerCounters()
            for layer_plans in replica_plans:
                merged = merged.merged_with(layer_plans[name].counters)
            layers[name] = merged
        return ExecutorStats(
            batches=batches,
            samples=samples,
            wall_time=wall,
            layers=layers,
            cache=dataclasses.replace(self.plan.cache.counters),
        )

    def reset_stats(self) -> None:
        with self._stats_lock:
            self._batches = self._samples = 0
            self._wall_time = 0.0
        with self._state_lock:
            replica_plans = list(self._replica_plans)
        for layer_plans in replica_plans:
            for plan in layer_plans.values():
                plan.counters.reset()
        self.plan.cache.counters.reset()
