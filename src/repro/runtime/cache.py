"""Content-addressed cache of decomposed / compressed operands.

The TASD decomposition of a tensor is a pure function of (tensor bytes,
series configuration, axis) — so its results can be cached by content
digest.  Static weights hit the cache on every forward after plan build;
dynamic activations hit it whenever the same tensor recurs (retried
requests, calibration replays, deduplicated micro-batches).

Entries are LRU-evicted under a capacity bound and hits return the *same*
object that was stored, so compiled plans can share operands by identity.

For *cross-process* sharing, :class:`SharedOperandStore` packs the arrays
behind a set of compiled operands (``CompressedNM`` term ``values`` /
``indices``, gather tables, dense weights) into one
``multiprocessing.shared_memory`` segment: worker processes attach by
segment name and rebuild zero-copy views, so N workers hold one copy of
the compiled plan's operand storage — the process-pool analogue of S2TA
keeping compressed operands resident across PEs.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.analysis.annotations import cross_process
from repro.core.series import TASDConfig
from repro.core.sparse_ops import (
    CompressedNM,
    nm_compress,
    nm_gather_tables,
)
from repro.tensor.blocks import pad_to_multiple

from .backends import DEFAULT_BACKEND, GemmBackend, get_backend
from .counters import CacheCounters

__all__ = [
    "tensor_digest",
    "CompiledOperand",
    "OperandCache",
    "SharedArrayRef",
    "SharedOperandStore",
]


def tensor_digest(a: np.ndarray) -> str:
    """Content digest of an array: dtype + shape + raw bytes (BLAKE2b).

    BLAKE2b is measurably faster than SHA-1/SHA-2 over large buffers, and
    this runs over the *full* tensor bytes on every activation-cache view —
    the digest is the activation path's fixed toll.  ``digest_size=20``
    keeps the hex length (and any persisted keys) identical to the old
    SHA-1 digests while changing the key space, so stale cross-version
    cache hits are impossible.
    """
    a = np.ascontiguousarray(a)
    h = hashlib.blake2b(digest_size=20)
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class CompiledOperand:
    """A matrix pre-decomposed and pre-compressed for structured execution.

    Holds the :class:`CompressedNM` term storage (what the accelerator's
    scratchpads would keep resident, per S2TA) plus flattened gather tables
    so :meth:`matmul` replays exactly the arithmetic of
    :func:`repro.core.sparse_ops.nm_matmul` without re-deriving indices.
    """

    config: TASDConfig
    original_shape: tuple[int, int]
    padded_shape: tuple[int, int]
    terms: tuple[CompressedNM, ...]
    # Per-term flattened kernels: values (rows, n_blocks*n) and the matching
    # row indices into the right-hand operand.
    flat_values: tuple[np.ndarray, ...] = field(repr=False)
    flat_rows: tuple[np.ndarray, ...] = field(repr=False)
    # Memoised per-backend prepared state (fused tables, CSR arrays, ...).
    # Mutated under the GIL only; a racing first call at worst prepares
    # twice and keeps one result — never corrupts.
    backend_states: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def order(self) -> int:
        return len(self.terms)

    @property
    def total_nnz(self) -> int:
        """Non-zeros held across all compressed terms."""
        return sum(t.nnz for t in self.terms)

    @property
    def slots(self) -> int:
        """Compressed value slots (the MACs hardware runs per output column)."""
        return sum(t.values.size for t in self.terms)

    @property
    def compressed_bits(self) -> float:
        return sum(t.compressed_bits for t in self.terms)

    def backend_state(self, backend: GemmBackend):
        """Memoised :meth:`GemmBackend.prepare` result for this operand."""
        state = self.backend_states.get(backend.name)
        if state is None and backend.name not in self.backend_states:
            state = backend.prepare(self)
            self.backend_states[backend.name] = state
        return state

    def matmul(self, b: np.ndarray, backend: str = DEFAULT_BACKEND) -> np.ndarray:
        """``decompress(self) @ b`` through the named kernel backend.

        ``b`` must already span the padded reduction dimension.  The default
        (reference) backend accumulates terms exactly like
        :func:`repro.core.sparse_ops.tasd_matmul`, so its results are
        bit-identical to the per-call path — as are all backends whose
        ``exact`` flag is set.  The accumulator dtype follows
        ``np.result_type`` across *all* terms' values and ``b``, so a
        mixed-dtype series never accumulates in a too-narrow dtype.
        """
        b = np.asarray(b)
        rows, k = self.padded_shape
        if b.shape[0] != k:
            raise ValueError(f"inner dimensions mismatch: {self.padded_shape} @ {b.shape}")
        be = get_backend(backend)
        return be.matmul(self, self.backend_state(be), b)


def _compile_operand(matrix: np.ndarray, config: TASDConfig) -> CompiledOperand:
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"compiled operands are 2-D matrices, got shape {matrix.shape}")
    if config.is_dense:
        raise ValueError("dense configurations have no compressed form")
    padded = pad_to_multiple(matrix, config.block_lcm, axis=-1)
    dec = config.apply(padded, axis=-1)
    terms = tuple(nm_compress(t.tensor, t.pattern) for t in dec.terms)
    tables = [nm_gather_tables(c) for c in terms]
    flat_values = [vals for vals, _ in tables]
    flat_rows = [rows for _, rows in tables]
    return CompiledOperand(
        config=config,
        original_shape=tuple(matrix.shape),
        padded_shape=tuple(padded.shape),
        terms=terms,
        flat_values=tuple(flat_values),
        flat_rows=tuple(flat_rows),
    )


class OperandCache:
    """Thread-safe LRU cache of compiled operands and decomposed views.

    Keys are (kind, content digest, configuration, axis) — content-addressed,
    so identical tensors share one entry regardless of where they came from.
    ``capacity`` bounds the number of resident entries; the least recently
    used entry is evicted first.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.counters = CacheCounters()
        self._store: OrderedDict[tuple, object] = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def info(self) -> dict:
        """Occupancy + counter snapshot (the telemetry exporter's view)."""
        with self._lock:
            resident = len(self._store)
        return {
            "capacity": self.capacity,
            "resident": resident,
            "hits": self.counters.hits,
            "misses": self.counters.misses,
            "evictions": self.counters.evictions,
            "hit_rate": self.counters.hit_rate,
        }

    # lint: disable=guarded-field — _lock is held by every caller
    # (_get_or_build and adopt take it around the insert)
    def _insert(self, key: tuple, value: object) -> None:
        """Store ``key`` and evict LRU entries past capacity.  Lock held by caller."""
        self._store[key] = value
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.counters.evictions += 1

    def _get_or_build(self, key: tuple, build) -> object:
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.counters.hits += 1
                return self._store[key]
        # Build outside the lock: decomposition is the expensive part and
        # concurrent builders at worst duplicate work, never corrupt state.
        value = build()
        with self._lock:
            if key in self._store:  # racing builder won; keep its object
                self._store.move_to_end(key)
                self.counters.misses += 1
                return self._store[key]
            self.counters.misses += 1
            self._insert(key, value)
        return value

    # ------------------------------------------------------------------ #
    def compress(
        self, matrix: np.ndarray, config: TASDConfig, digest: str | None = None
    ) -> CompiledOperand:
        """Compiled (decomposed + compressed) form of a 2-D matrix.

        ``digest`` lets a caller that already hashed ``matrix`` (the plan
        compiler records it per layer) skip the second full-tensor pass; it
        must be ``tensor_digest(matrix)`` or the content addressing breaks.
        """
        key = ("compress", digest if digest is not None else tensor_digest(matrix), str(config))
        return self._get_or_build(key, lambda: _compile_operand(matrix, config))

    def adopt(self, digest: str, config: TASDConfig, operand: CompiledOperand) -> CompiledOperand:
        """Register a precompiled operand under its source weight's digest.

        The plan-persistence path (:mod:`repro.runtime.planio`) rebuilds
        operands from disk and re-registers them here, so later
        ``compress`` calls on the same weight hit instead of re-deriving.
        Counted as neither hit nor miss — nothing was looked up or built.
        If the key is already resident, the incumbent wins (plans sharing
        this cache keep sharing one object by identity).
        """
        key = ("compress", digest, str(config))
        with self._lock:
            incumbent = self._store.get(key)
            if incumbent is not None:
                self._store.move_to_end(key)
                return incumbent
            self._insert(key, operand)
        return operand

    def digest_of(self, operand: CompiledOperand) -> str | None:
        """Reverse lookup: the source-weight digest a resident operand is keyed by.

        Identity-based — returns ``None`` when the operand was never stored
        here or has been evicted.  This is how plan persistence recovers a
        compiled layer's original weight digest without keeping the dense
        weight around.
        """
        with self._lock:
            for key, value in self._store.items():
                if value is operand and key[0] == "compress":
                    return key[1]
        return None

    def view(self, x: np.ndarray, config: TASDConfig, axis: int = -1) -> np.ndarray:
        """Cached TASD series view of ``x`` (the dynamic-activation path)."""
        if config.is_dense:
            return np.asarray(x)
        from repro.tasder.transform import decompose_activation

        key = ("view", tensor_digest(x), str(config), int(axis) % np.asarray(x).ndim)
        return self._get_or_build(key, lambda: decompose_activation(x, config, axis))


# ---------------------------------------------------------------------- #
# Cross-process operand sharing
# ---------------------------------------------------------------------- #
_SHM_ALIGN = 64  # cache-line alignment for every array placed in a segment


@cross_process
@dataclass(frozen=True)
class SharedArrayRef:
    """Where one array lives inside a shared segment — picklable, tiny."""

    offset: int
    dtype: str  # numpy dtype string, e.g. "<f8"
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        n = np.dtype(self.dtype).itemsize
        for dim in self.shape:
            n *= dim
        return n


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    ``SharedMemory(name=...)`` registers the segment with the attaching
    process's resource tracker, which *unlinks it* when that process exits
    — destroying the creator's segment under every other worker.  Python
    3.13 grew ``track=False`` for exactly this; on 3.11 the supported
    escape hatch is to unregister after attach, leaving cleanup to the
    creating process (which owns the only ``unlink``).
    """
    shm = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    # lint: disable=broad-except — tracker internals differ across
    # platforms/Python versions; a failed unregister only risks an early
    # unlink warning, never correctness
    except Exception:  # pragma: no cover - tracker variants across platforms
        pass
    return shm


class SharedOperandStore:
    """A bundle of numpy arrays in one shared-memory segment.

    The parent serializes the arrays once (:meth:`create` returns the
    store plus a picklable ``{key: SharedArrayRef}`` map); each worker
    process attaches by segment ``name`` and resolves refs to zero-copy
    read-only views (:meth:`get`).  Views borrow the segment's buffer, so
    the store must stay open for as long as any view is live — workers
    hold it for their lifetime, and only the creating process calls
    :meth:`unlink`.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls, arrays: dict[str, np.ndarray]
    ) -> tuple["SharedOperandStore", dict[str, SharedArrayRef]]:
        """Pack ``arrays`` into a fresh segment; returns (store, refs).

        Raises ``OSError`` where POSIX shared memory is unavailable —
        callers that can degrade (``share_plan``) fall back to carrying
        the arrays inline.
        """
        refs: dict[str, SharedArrayRef] = {}
        offset = 0
        for key, a in arrays.items():
            a = np.asarray(a)
            refs[key] = SharedArrayRef(offset=offset, dtype=a.dtype.str, shape=tuple(a.shape))
            offset += -(-a.nbytes // _SHM_ALIGN) * _SHM_ALIGN
        shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        store = cls(shm, owner=True)
        for key, a in arrays.items():
            ref = refs[key]
            view = np.ndarray(
                ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf, offset=ref.offset
            )
            # ndarray assignment handles non-contiguous sources, so the one
            # copy into the segment is the only copy made.
            view[...] = a
        return store, refs

    @classmethod
    def attach(cls, name: str) -> "SharedOperandStore":
        """Open an existing segment by name (worker side, never unlinks)."""
        return cls(_attach_segment(name), owner=False)

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self._shm.name

    def get(self, ref: SharedArrayRef) -> np.ndarray:
        """Zero-copy read-only view of one array inside the segment."""
        if self._closed:
            raise ValueError("shared operand store is closed")
        view = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=self._shm.buf, offset=ref.offset
        )
        # Operands are immutable by contract; a writable cross-process view
        # would let one worker silently corrupt every other worker's GEMMs.
        view.flags.writeable = False
        return view

    def close(self) -> None:
        """Detach this process's mapping (views die with it)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        self.close()
        if self._owner:
            self._owner = False
            # ``SharedMemory.unlink`` unregisters from the resource tracker;
            # under ``fork`` the children *shared* the parent's tracker, so
            # their attach-time unregistration already removed the entry and
            # the tracker would log a KeyError.  Re-registering first keeps
            # the tracker's books balanced on every start method.
            try:
                resource_tracker.register(self._shm._name, "shared_memory")
            # lint: disable=broad-except — best-effort book-balancing for
            # the resource tracker; the unlink below still runs either way
            except Exception:  # pragma: no cover - tracker variants
                pass
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedOperandStore":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink() if self._owner else self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.unlink() if self._owner else self.close()
        # lint: disable=broad-except — __del__ runs during interpreter
        # teardown where raising is forbidden and modules may be half-gone
        except Exception:
            pass
