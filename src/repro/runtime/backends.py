"""Pluggable kernel backends for the structured-GEMM hot path.

Every compiled forward funnels its GEMMs through one seam —
``CompiledOperand.matmul`` — and this module makes that seam pluggable: a
registry of interchangeable :class:`GemmBackend` implementations of the
``CompressedNM``-operand matmul, each trading memory traffic against
vectorisation differently (SparseRT's lesson: the win is in specialising
the kernel to the operand ahead of time).

Backends come in two numerical tiers:

- ``exact`` backends are **bit-identical** to the reference kernel (the
  per-term einsum of :func:`repro.core.sparse_ops.nm_matmul_from_tables`
  accumulated in term order).  They only restructure *memory* movement,
  never the per-element floating-point evaluation order.
- inexact backends (``scatter-csr``, ``dense-emulation``) reassociate the
  reduction and agree with the reference to rounding error (``allclose``).

The registry is the single extension point for future native kernels: a
``repro.gpu`` 2:4 backend registers here and every compiled plan can
dispatch to it per layer.

Bit-exactness notes (verified empirically against this NumPy build, and
fenced by ``tests/runtime/test_runtime_backends.py``):

- Zero-padding a term's gather tables (value 0 at row 0) does not change
  the einsum's per-element accumulation, so ``fused-gather`` can stack
  ragged per-term tables into one rectangular tensor and contract the
  whole series in a single einsum while keeping reference bits.
- Tiling the contraction over output *rows* preserves bits (each output
  element's reduction is untouched); tiling over output *columns* does
  not — NumPy's einsum picks a different inner accumulation strategy for
  narrow contiguous trailing dimensions.  ``blocked-gather`` therefore
  tiles rows, which bounds the gather tensor exactly as well
  (``tile_rows * slots * N`` elements resident instead of
  ``rows * slots * N``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.sparse_ops import nm_decompress, nm_matmul_from_tables

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache imports us)
    from .cache import CompiledOperand

__all__ = [
    "DEFAULT_BACKEND",
    "GemmBackend",
    "EinsumGatherBackend",
    "FusedGatherBackend",
    "BlockedGatherBackend",
    "ScatterCSRBackend",
    "DenseEmulationBackend",
    "register_backend",
    "get_backend",
    "backend_names",
    "exact_backend_names",
]

DEFAULT_BACKEND = "einsum-gather"


class GemmBackend:
    """One strategy for ``decompress(operand) @ b`` over compressed terms.

    ``prepare`` derives whatever per-operand state the kernel needs
    (fused tables, CSR arrays, a decompressed matrix, ...) exactly once;
    the operand memoises it, so serving replicas share prepared state the
    same way they share the compressed terms.  ``matmul`` must treat both
    the operand and the prepared state as immutable — backends are shared
    across threads.
    """

    #: registry key, e.g. ``"einsum-gather"``
    name: str = ""
    #: True when outputs are bit-identical to the reference kernel
    exact: bool = False
    #: True when computing a row slice of the operand reproduces the
    #: corresponding rows of the full result bit-for-bit (each output
    #: row's reduction independent of its neighbours).  This is what lets
    #: intra-layer sharding split a layer across workers without changing
    #: a single bit; dense BLAS kernels are *not* row-slice stable (their
    #: internal blocking changes with the matrix shape), so the flag is
    #: opt-in.
    shard_safe: bool = False

    def prepare(self, operand: "CompiledOperand") -> Any:
        """One-time per-operand compilation; return value is memoised."""
        return None

    def matmul(self, operand: "CompiledOperand", state: Any, b: np.ndarray) -> np.ndarray:
        """Contract ``operand @ b`` with ``b`` spanning the padded reduction."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    @staticmethod
    def _out_dtype(operand: "CompiledOperand", b: np.ndarray) -> np.dtype:
        """Accumulator dtype across *all* terms' values and ``b``."""
        return np.result_type(*(t.values for t in operand.terms), b)


class EinsumGatherBackend(GemmBackend):
    """Reference kernel: per-term gather + einsum, accumulated in term order.

    This is the arithmetic every exact backend must reproduce bit-for-bit
    and the per-call ``tasd_matmul`` path is verified against.  It
    materialises a ``(rows, slots, N)`` gather tensor per term per call —
    the memory-traffic-bound worst case the other backends attack.
    """

    name = DEFAULT_BACKEND
    exact = True
    shard_safe = True

    def matmul(self, operand: "CompiledOperand", state: Any, b: np.ndarray) -> np.ndarray:
        rows = operand.padded_shape[0]
        out = np.zeros((rows, b.shape[1]), dtype=self._out_dtype(operand, b))
        for vals, rows_idx in zip(operand.flat_values, operand.flat_rows):
            out += nm_matmul_from_tables(vals, rows_idx, b)
        return out


@dataclass(frozen=True)
class _FusedTables:
    """All terms' gather tables stacked into one rectangular pair."""

    values: np.ndarray  # (rows, terms, max_slots)
    rows: np.ndarray  # (rows, terms, max_slots), intp


class FusedGatherBackend(GemmBackend):
    """Whole-series contraction: one gather, one einsum, no per-term loop.

    At prepare time every term's ``(rows, slots_t)`` tables are zero-padded
    to the widest term and stacked into ``(rows, terms, max_slots)``
    tensors (padding slots hold value 0 pointing at row 0 — arithmetically
    and *bitwise* neutral).  ``matmul`` then runs the entire TASD series as
    a single ``rts,rtsn->trn`` einsum; the only remaining Python work is
    accumulating the per-term partials in term order, which is exactly what
    keeps the result bit-identical to the reference (rounding must happen
    at term boundaries, like the reference's ``out += term`` loop).

    Single-column right-hand sides fall back to the reference loop: with
    ``N == 1`` the contraction collapses to a dot product, for which
    NumPy's einsum switches to a reduction whose rounding depends on the
    slot count — so the zero-padded tables would no longer be bitwise
    neutral (and fusion buys nothing on a GEMV anyway).
    """

    name = "fused-gather"
    exact = True
    shard_safe = True

    def prepare(self, operand: "CompiledOperand") -> _FusedTables:
        rows = operand.padded_shape[0]
        n_terms = len(operand.terms)
        max_slots = max(v.shape[1] for v in operand.flat_values)
        dtype = np.result_type(*(t.values for t in operand.terms))
        values = np.zeros((rows, n_terms, max_slots), dtype=dtype)
        rows_idx = np.zeros((rows, n_terms, max_slots), dtype=np.intp)
        for t, (vals, ridx) in enumerate(zip(operand.flat_values, operand.flat_rows)):
            values[:, t, : vals.shape[1]] = vals
            rows_idx[:, t, : ridx.shape[1]] = ridx
        return _FusedTables(values=values, rows=rows_idx)

    def matmul(self, operand: "CompiledOperand", state: _FusedTables, b: np.ndarray) -> np.ndarray:
        if b.shape[1] == 1:  # dot-product regime: see class docstring
            return _REFERENCE.matmul(operand, None, b)
        partials = np.einsum("rts,rtsn->trn", state.values, b[state.rows])
        out = np.zeros(partials.shape[1:], dtype=self._out_dtype(operand, b))
        for term_partial in partials:
            out += term_partial
        return out


class BlockedGatherBackend(GemmBackend):
    """Row-tiled gather: bounds the gather tensor to cache-resident size.

    The reference kernel's ``(rows, slots, N)`` intermediate can spill far
    past cache for wide layers; this backend runs the identical per-term
    einsum over row tiles sized so the gather stays within ``budget_bytes``
    (``tile_rows * slots * N`` resident elements).  Rows are the tiling
    axis because each output element's reduction is then untouched — see
    the module docstring for why column tiles would break bit-exactness.
    """

    name = "blocked-gather"
    exact = True
    shard_safe = True  # row tiling is already this kernel's own strategy

    def __init__(self, block_rows: int | None = None, budget_bytes: int = 1 << 22) -> None:
        if block_rows is not None and block_rows <= 0:
            raise ValueError(f"block_rows must be positive, got {block_rows}")
        if budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        self.block_rows = block_rows
        self.budget_bytes = budget_bytes

    def _tile(self, operand: "CompiledOperand", n_cols: int, itemsize: int) -> int:
        if self.block_rows is not None:
            return self.block_rows
        max_slots = max(v.shape[1] for v in operand.flat_values)
        per_row = max(1, max_slots * max(1, n_cols) * itemsize)
        return max(1, self.budget_bytes // per_row)

    def matmul(self, operand: "CompiledOperand", state: Any, b: np.ndarray) -> np.ndarray:
        rows = operand.padded_shape[0]
        dtype = self._out_dtype(operand, b)
        tile = min(rows, self._tile(operand, b.shape[1], dtype.itemsize))
        if tile >= rows:  # fits in budget: exactly the reference call
            return _REFERENCE.matmul(operand, None, b)
        out = np.empty((rows, b.shape[1]), dtype=dtype)
        for r0 in range(0, rows, tile):
            r1 = min(rows, r0 + tile)
            acc = np.zeros((r1 - r0, b.shape[1]), dtype=dtype)
            for vals, rows_idx in zip(operand.flat_values, operand.flat_rows):
                acc += nm_matmul_from_tables(vals[r0:r1], rows_idx[r0:r1], b)
            out[r0:r1] = acc
        return out


@dataclass(frozen=True)
class _TermCSR:
    """One term's compressed slots as flat CSR-style arrays (padding dropped)."""

    data: np.ndarray  # (nnz,) non-zero slot values, row-major, k-ascending
    cols: np.ndarray  # (nnz,) row of b each value multiplies
    nonempty: np.ndarray  # (n_nonempty,) output rows with any entries
    starts: np.ndarray  # (n_nonempty,) segment starts into data/cols


class ScatterCSRBackend(GemmBackend):
    """Row-segment reduction over flat CSR arrays — no 3-D intermediate.

    Prepare converts each compressed term into flat ``(data, cols)`` arrays
    with the zero padding slots dropped, so the contraction touches only
    true non-zeros: a ``(nnz, N)`` product followed by one
    ``np.add.reduceat`` segment sum per term.  The segmented reduction
    reassociates the per-row sums, so this backend is *allclose* to the
    reference, not bit-identical (it is not gather-based).
    """

    name = "scatter-csr"
    exact = False
    # Each output row is one reduceat segment over its own values, so a
    # row-sliced operand reproduces its rows of the full result bitwise.
    shard_safe = True

    def prepare(self, operand: "CompiledOperand") -> tuple[_TermCSR, ...]:
        terms = []
        for vals, rows_idx in zip(operand.flat_values, operand.flat_rows):
            mask = vals != 0
            counts = mask.sum(axis=1)
            nonempty = np.flatnonzero(counts)
            indptr = np.concatenate(([0], np.cumsum(counts)))
            terms.append(
                _TermCSR(
                    data=vals[mask],
                    cols=rows_idx[mask],
                    nonempty=nonempty,
                    starts=indptr[nonempty],
                )
            )
        return tuple(terms)

    def matmul(
        self, operand: "CompiledOperand", state: tuple[_TermCSR, ...], b: np.ndarray
    ) -> np.ndarray:
        rows = operand.padded_shape[0]
        out = np.zeros((rows, b.shape[1]), dtype=self._out_dtype(operand, b))
        for term in state:
            if term.data.size == 0:
                continue
            prod = term.data[:, None] * b[term.cols]
            out[term.nonempty] += np.add.reduceat(prod, term.starts, axis=0)
        return out


class DenseEmulationBackend(GemmBackend):
    """One-time decompress + BLAS ``@`` — the roofline ceiling.

    Reconstructs the series view ``Σ decompress(term)`` once at prepare
    time and serves every call as a dense matmul.  Same memory cost as the
    dense weight, zero structured-sparsity savings in the arithmetic —
    but BLAS throughput, which is the bar any structured kernel on this
    functional model has to be judged against.
    """

    name = "dense-emulation"
    exact = False
    shard_safe = False  # BLAS blocking depends on the matrix shape

    def prepare(self, operand: "CompiledOperand") -> np.ndarray:
        dense = nm_decompress(operand.terms[0]).astype(
            np.result_type(*(t.values for t in operand.terms)), copy=False
        )
        for term in operand.terms[1:]:
            dense = dense + nm_decompress(term)
        return dense

    def matmul(self, operand: "CompiledOperand", state: np.ndarray, b: np.ndarray) -> np.ndarray:
        return state @ b


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
_REGISTRY: dict[str, GemmBackend] = {}


def register_backend(backend: GemmBackend, overwrite: bool = False) -> GemmBackend:
    """Add a backend instance to the registry under ``backend.name``."""
    if not backend.name:
        raise ValueError("backend must define a non-empty name")
    if backend.name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> GemmBackend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown GEMM backend {name!r}; registered: {backend_names()}"
        ) from None


def backend_names() -> tuple[str, ...]:
    """All registered backend names, reference first (registration order)."""
    return tuple(_REGISTRY)


def exact_backend_names() -> tuple[str, ...]:
    """Backends guaranteed bit-identical to the reference kernel."""
    return tuple(name for name, be in _REGISTRY.items() if be.exact)


_REFERENCE = EinsumGatherBackend()

register_backend(_REFERENCE)
register_backend(FusedGatherBackend())
register_backend(BlockedGatherBackend())
register_backend(ScatterCSRBackend())
register_backend(DenseEmulationBackend())
