"""Worker pools: the pluggable execution substrate behind the serving engine.

The serving engine used to be hardwired to *thread* replicas
(:class:`~repro.runtime.replica.ReplicaExecutor`): each worker thread ran
forwards on its own model replica, but every non-BLAS part of a forward
still serialised on the GIL.  This module extracts the seam —
:class:`WorkerPool`, the install/run/stats contract the engine actually
drives — and provides two substrates behind it:

- :class:`ThreadWorkerPool` — one model replica per worker thread.
  Weights and the compiled plan are shared by reference; only the GIL
  bounds scaling.  This is exactly the old ``ReplicaExecutor`` behaviour.
- :class:`ProcessWorkerPool` — one worker *process* per worker.  The
  parent exports the compiled plan once through
  :func:`~repro.runtime.planio.share_plan` (operand arrays in a
  shared-memory segment); each child attaches zero-copy, installs the
  plan on its own unpickled model, and serves forwards with no GIL in
  common.  This is the scaling unlock past thread replicas: decomposition
  and compression cost is paid once (SparseRT's AOT specialisation), the
  compressed operands are held once (S2TA keeps them resident across
  PEs), and N cores run N forwards.

:class:`~repro.runtime.executor.PlanExecutor` satisfies the same contract
(a single lock-serialised worker) and is registered as a virtual subclass,
so everything the engine accepts is a :class:`WorkerPool` — pick with
:func:`make_pool` (CLI: ``serve --pool {thread,process} --workers N``).

Both pools merge per-worker layer counters into one :meth:`stats` view and
produce **bit-identical** outputs: thread replicas alias the same arrays,
and process workers run the same kernels over byte-equal shared operands.

The process pool is *supervised*: a background supervisor thread detects
dead workers (pipe errors on a request, plus a periodic health-check ping
of idle workers) and respawns replacements from the already-shared plan
segment, with capped exponential backoff and a crash-loop circuit breaker
(too many respawns inside a sliding window stops respawning and marks the
pool :attr:`~ProcessWorkerPool.degraded`).  A worker death mid-request
raises the *retryable* :class:`WorkerCrashError` — the serving engine
re-dispatches the batch on a surviving or respawned worker — and a pool
that can no longer serve raises :class:`PoolDegradedError`, the engine's
signal to fall back to in-process execution.
"""

from __future__ import annotations

import abc
import collections
import copy
import dataclasses
import itertools
import multiprocessing
import multiprocessing.connection
import pickle
import queue
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.analysis.annotations import hot_path
from repro.nn.module import Module

from .backends import get_backend
from .counters import ExecutorStats, LayerCounters, WorkerStat
from .executor import PlanExecutor
from .plan import ExecutionPlan, LayerPlan
from .shard import (
    ShardDecision,
    ShardSpec,
    choose_shard_plan,
    median_time,
    shard_backend,
    shard_partial,
    slice_operand,
)

__all__ = [
    "POOL_KINDS",
    "RemoteTraceback",
    "WorkerCrashError",
    "PoolDegradedError",
    "PlanSwapError",
    "WorkerPool",
    "ThreadWorkerPool",
    "ProcessWorkerPool",
    "make_pool",
]


class RemoteTraceback(Exception):
    """Carrier for a worker-side traceback, chained as ``__cause__``.

    A child process's stack does not survive pickling an exception across
    the pipe; the worker formats it and the parent chains it under the
    re-raised exception, so serving failures keep the frame that actually
    raised (the same trick ``multiprocessing.pool`` uses).
    """

    def __init__(self, tb: str) -> None:
        super().__init__(tb)
        self.tb = tb

    def __str__(self) -> str:
        return "\n" + self.tb


class WorkerCrashError(RuntimeError):
    """A pool worker died (or wedged) with a request in flight.

    Retryable: the input never produced an output, so re-dispatching the
    same batch on another worker yields the result the dead worker owed —
    bit-identical, since every worker serves byte-equal operands.
    """


class PoolDegradedError(RuntimeError):
    """The pool cannot serve: every worker is gone and respawn is off or
    the crash-loop circuit breaker is open.  The serving engine treats
    this as the signal to degrade to in-process execution."""


class PlanSwapError(RuntimeError):
    """A hot plan-swap could not commit and was rolled back.

    Raised by the pool-level :meth:`WorkerPool.swap_plan` when a worker
    rejects the new plan spec (attach/install failure) or the canary
    worker dies before delivering a verdict.  The pool is left serving
    the *old* plan; the new segment is unlinked.  The serving engine
    wraps this (and canary verdicts) in the user-facing
    :class:`~repro.runtime.serve.SwapRejected`.
    """


class WorkerPool(abc.ABC):
    """The execution seam between the serving engine and the substrate.

    The contract the engine drives (and every pool honours):

    - :meth:`install` / :meth:`close` — bring workers up / tear them down;
      both idempotent, ``close`` waits for in-flight forwards and keeps
      accumulated counters readable;
    - :meth:`run` — one forward on whichever worker frees first, safe to
      call from many threads concurrently (lazily installs, including
      after a ``close``);
    - :meth:`stats` / :meth:`reset_stats` — per-layer counters merged
      across workers, plus whole-forward batch/sample/wall totals.

    Implementations must keep :meth:`run` lock-free across the forward
    itself so up to ``workers`` forwards proceed concurrently.
    """

    model: Module
    plan: ExecutionPlan
    workers: int

    @abc.abstractmethod
    def install(self) -> "WorkerPool":
        """Bring the worker pool up (idempotent)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Tear the pool down, waiting for in-flight forwards (idempotent)."""

    @abc.abstractmethod
    def run(self, x: np.ndarray) -> np.ndarray:
        """One timed forward on whichever worker is free first."""

    def run_many(self, batches) -> list[np.ndarray]:
        """Run a sequence of batches, returning their outputs in order."""
        return [self.run(x) for x in batches]

    @hot_path
    def run_sharded(self, x: np.ndarray, observer=None) -> np.ndarray:
        """One forward with its large layers scattered across workers.

        Substrates with a scatter/gather path override this; the default
        is a plain :meth:`run` so callers can request sharding without
        caring whether the pool supports it (correct, just not faster).
        ``observer``, when given, is called with each shard's wall-clock
        seconds (the serving engine's per-shard latency histogram).
        """
        del observer  # no shards to observe on the default path
        return self.run(x)

    def auto_shard(self, max_shards: int | None = None, **kwargs) -> dict:
        """Micro-benchmark and install per-layer shard counts.

        Returns per-layer :class:`~repro.runtime.shard.ShardDecision`
        objects; substrates without a scatter path return ``{}`` and stay
        unsharded.
        """
        del max_shards, kwargs
        return {}

    @abc.abstractmethod
    def stats(self) -> ExecutorStats:
        """Counters merged across all workers plus whole-forward timing."""

    @abc.abstractmethod
    def reset_stats(self) -> None:
        """Zero every counter this pool reports."""

    def worker_stats(self) -> list[WorkerStat]:
        """Per-worker liveness + served-forward counts (telemetry gauges).

        Retired workers (previous generations, mid-request deaths) stay
        listed with ``alive=False`` so a scrape can alert on them; the
        default is an empty list for substrates with no worker identity.
        """
        return []

    def utilization(self) -> float:
        """Fraction of workers busy right now, in [0, 1] (autoscaler signal).

        Substrates with no worker identity report 0.0.
        """
        return 0.0

    def scale_to(self, n: int) -> int:
        """Resize the pool to ``n`` workers; returns the delta applied.

        Optional: fixed-size substrates raise ``NotImplementedError`` and
        the autoscaler leaves them alone.
        """
        raise NotImplementedError(f"{type(self).__name__} cannot be resized")

    def swap_plan(self, new_plan: ExecutionPlan, canary=None) -> int:
        """Roll every worker onto ``new_plan``; returns workers swapped.

        ``canary``, when given, is called as ``canary(run_fn)`` after the
        first worker holds the new plan and before any other worker is
        touched; ``run_fn(x)`` executes a batch on that worker.  The
        canary raising *anything* rejects the swap: the pool rolls back
        to the old plan and the exception propagates to the caller.
        """
        raise NotImplementedError(f"{type(self).__name__} cannot hot-swap plans")

    def __enter__(self) -> "WorkerPool":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.close()


# A PlanExecutor is the degenerate one-worker pool (its internal lock
# serialises forwards); registering it keeps `isinstance(x, WorkerPool)`
# true for everything the serving engine accepts.
WorkerPool.register(PlanExecutor)


def _replicate_model(model: Module) -> Module:
    """Deep-copy a model while aliasing every weight/grad/buffer array.

    Weights (and eval-time buffers like running BatchNorm statistics) are
    immutable at inference: seeding the deepcopy memo with their arrays
    makes the replica alias the source model's tensors, so a replica
    costs layer objects and forward caches — never weights.
    """
    memo: dict[int, object] = {}
    for p in model.parameters():
        memo[id(p.data)] = p.data
        # Replicas are inference-only, so sharing gradient storage is
        # safe and avoids duplicating weight-sized buffers per replica.
        memo[id(p.grad)] = p.grad
    for _, buf in model.named_buffers():
        memo[id(buf)] = buf
    replica = copy.deepcopy(model, memo)
    replica.eval()
    return replica


# ---------------------------------------------------------------------- #
# Scatter/gather sharding: shared driver machinery for both pools
# ---------------------------------------------------------------------- #
class _ShardingMixin:
    """Scatter/gather plumbing shared by the thread and process pools.

    :meth:`run_sharded` runs one forward on a *driver* replica whose
    shard-tabled layers dispatch through the pool's ``_scatter_layer``
    hook (see :attr:`LayerPlan.dispatcher`): the layer's GEMM fans out as
    K shard tasks over the pool's workers and the partial outputs are
    concatenated back in row order.  Everything else in the forward runs
    locally on the driver, so only the layers whose tables say sharding
    pays ever cross a worker boundary.

    Shard tables come from the plan itself (``compile_plan(...,
    shards=K)`` / :func:`~repro.runtime.shard.plan_shards`) or from
    :meth:`configure_sharding` (the serving engine installs
    :meth:`auto_shard`'s measured decisions there).
    """

    def _init_sharding(self) -> None:
        # RLock, deliberately: run_sharded holds it across the driver
        # forward, and _scatter_layer (plus the observer read) re-enters
        # from inside that forward.
        self._driver_lock = threading.RLock()
        self._shard_specs: dict[str, ShardSpec] | None = None  # guarded-by: _driver_lock
        self._shard_driver: Module | None = None  # guarded-by: _driver_lock
        self._shard_observer = None  # guarded-by: _driver_lock
        # Layer-plan clones of every driver generation, retained so stats()
        # keeps sharded forwards' counters across swaps (same contract as
        # the thread pool's retained replica plans).
        self._shard_driver_plans: list[dict[str, LayerPlan]] = []  # guarded-by: _driver_lock
        self._sharded_forwards = 0  # guarded-by: _stats_lock
        self._shard_retries = 0  # guarded-by: _stats_lock

    # ------------------------------------------------------------------ #
    def configure_sharding(self, specs: dict[str, ShardSpec] | None) -> None:
        """Install per-layer shard tables for :meth:`run_sharded`.

        ``None`` means "use the plan's own tables" (the default); an
        explicit dict — possibly empty — overrides them (the serving
        engine installs :meth:`auto_shard` decisions here).  The driver
        replica is rebuilt lazily on the next sharded forward.
        """
        with self._driver_lock:
            self._shard_specs = None if specs is None else dict(specs)
            self._shard_driver = None

    def _shard_tables(self) -> dict[str, ShardSpec]:
        """Effective shard tables: the configured override, else every
        plan layer carrying a multi-shard table on a slice-safe backend."""
        with self._driver_lock:
            specs = self._shard_specs
        if specs is not None:
            return dict(specs)
        tables: dict[str, ShardSpec] = {}
        for name, lp in self.plan.layers.items():
            if (
                lp.shards is not None
                and lp.shards.num_shards > 1
                and lp.operand is not None
                and get_backend(lp.backend).shard_safe
            ):
                tables[name] = lp.shards
        return tables

    def _ensure_shard_driver(self) -> Module:
        """Build (lazily) the driver replica whose shard-tabled layers
        dispatch through :meth:`_scatter_layer`."""
        with self._driver_lock:
            if self._shard_driver is not None:
                return self._shard_driver
            tables = self._shard_tables()
            replica = _replicate_model(self.model)
            layer_plans = self.plan.clone_layer_plans()
            for name, spec in tables.items():
                lp = layer_plans.get(name)
                if lp is None or lp.operand is None:
                    continue
                layer_plans[name] = dataclasses.replace(
                    lp, shards=spec, dispatcher=self._scatter_layer
                )
            self.plan.install(replica, layer_plans)
            self._shard_driver = replica
            self._shard_driver_plans.append(layer_plans)
            return replica

    def _reset_shard_driver(self) -> None:
        """Drop the driver replica (plan swapped / pool reconfigured).

        Never call while holding ``_state_lock`` — run_sharded acquires
        ``_driver_lock`` before (re)entering install's state lock, so the
        opposite nesting would be an ABBA deadlock.
        """
        with self._driver_lock:
            self._shard_driver = None

    # ------------------------------------------------------------------ #
    @hot_path
    def run_sharded(self, x: np.ndarray, observer=None) -> np.ndarray:
        """One timed forward with shard-tabled layers scattered over the
        pool's workers; falls back to :meth:`run` when no layer has a
        table.  ``observer`` is called with each shard's wall seconds.

        Sharded forwards serialise on the driver (one in flight at a
        time): this is the latency mode for one big request, not a
        throughput mode — concurrent small batches keep using
        :meth:`run`.
        """
        x = np.asarray(x)
        self.install()
        if not self._shard_tables():
            return self.run(x)
        driver = self._ensure_shard_driver()
        t0 = time.perf_counter()
        with self._driver_lock:
            self._shard_observer = observer
            try:
                y = driver(x)
            finally:
                self._shard_observer = None
        elapsed = time.perf_counter() - t0
        with self._stats_lock:
            self._batches += 1
            self._samples += int(x.shape[0])
            self._wall_time += elapsed
            self._sharded_forwards += 1
        return y

    # ------------------------------------------------------------------ #
    @property
    def sharded_forwards(self) -> int:
        """Forwards served through the scatter/gather path (telemetry)."""
        with self._stats_lock:
            return self._sharded_forwards

    @property
    def shard_retries(self) -> int:
        """Shard tasks re-dispatched after a worker death (telemetry)."""
        with self._stats_lock:
            return self._shard_retries

    def _measure_shard_overhead(self, sample_cols: int = 8, repeats: int = 3) -> float:
        """Measured per-shard fan-out cost in seconds (0.0 by default)."""
        del sample_cols, repeats
        return 0.0

    def auto_shard(
        self,
        max_shards: int | None = None,
        sample_cols: int = 8,
        repeats: int = 3,
        min_speedup: float = 1.05,
    ) -> dict[str, ShardDecision]:
        """Choose per-layer shard counts from micro-benchmarks and install them.

        The fan-out overhead is *measured* on this pool's actual dispatch
        path (a full-layer shard round-trip minus the local GEMM), then
        charged per shard in :func:`~repro.runtime.shard.choose_layer_shards`
        — tiny layers stay unsharded because the numbers say so.  Returns
        the per-layer decisions; layers whose decision has ``spec=None``
        keep running unsharded.
        """
        self.install()
        if max_shards is None:
            max_shards = self.workers
        overhead = self._measure_shard_overhead(sample_cols=sample_cols, repeats=repeats)
        decisions = choose_shard_plan(
            self.plan,
            max_shards,
            overhead_s=overhead,
            sample_cols=sample_cols,
            repeats=repeats,
            min_speedup=min_speedup,
        )
        self.configure_sharding(
            {name: d.spec for name, d in decisions.items() if d.spec is not None}
        )
        return decisions


# ---------------------------------------------------------------------- #
# Thread pool: one model replica per worker thread
# ---------------------------------------------------------------------- #
class ThreadWorkerPool(_ShardingMixin, WorkerPool):
    """Execute batches against one compiled plan across N model replicas.

    The single-model :class:`PlanExecutor` must hold a lock across every
    forward — layers cache forward state on ``self``, so one model
    instance cannot run concurrent batches — which serialises all of the
    serving engine's workers.  This pool removes the lock by giving each
    worker its own *replica* of the model while sharing everything
    immutable:

    - parameter storage is aliased back to the source model (replicas add
      per-layer Python objects and forward caches, not weight copies);
    - the compiled :class:`ExecutionPlan` is shared — every replica serves
      from the same :class:`CompiledOperand` terms, gather tables,
      prepared backend state, and operand cache;
    - only the per-layer perf counters are private per replica (cloned via
      :meth:`ExecutionPlan.clone_layer_plans`), so the hot path never
      races; :meth:`stats` merges them back into one view.

    Replicas are checked out of a pool for the duration of one forward, so
    up to ``workers`` batches execute concurrently with no shared mutable
    state between them.  Throughput then scales with workers as far as the
    machine's cores *and the GIL* allow — NumPy releases it inside BLAS,
    but every Python-level part of a forward still serialises.  For
    scaling past that, use :class:`ProcessWorkerPool`.

    The source ``model`` itself is never touched: replicas are built from
    it (weights aliased, not copied) and the plan is installed on the
    replicas only, so the caller's model keeps its uncompiled forward.
    """

    def __init__(self, model: Module, plan: ExecutionPlan, workers: int = 2) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.model = model
        self.plan = plan
        self.workers = workers
        self._pool: "queue.Queue[Module]" = queue.Queue()
        self._replica_plans: list[dict[str, LayerPlan]] = []  # guarded-by: _state_lock
        self._installed = False  # guarded-by: _state_lock
        self._state_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._batches = 0  # guarded-by: _stats_lock
        self._samples = 0  # guarded-by: _stats_lock
        self._wall_time = 0.0  # guarded-by: _stats_lock
        # Worker identity for telemetry: uid per replica, unique across
        # generations; request counts survive close() like the counters do.
        self._uids = itertools.count()
        self._replica_uid: dict[int, int] = {}  # guarded-by: _stats_lock
        self._worker_requests: dict[int, int] = {}  # guarded-by: _stats_lock
        self._current_uids: set[int] = set()  # guarded-by: _stats_lock
        self._init_sharding()
        self._shard_executor: ThreadPoolExecutor | None = None  # guarded-by: _driver_lock
        # Memoised zero-copy operand row slices keyed (layer, start, stop).
        # Populated from shard-executor threads without a lock: entries are
        # pure functions of the key, so a racing double-build is benign.
        self._shard_slices: dict = {}

    # ------------------------------------------------------------------ #
    def _build_replica(
        self, plan: ExecutionPlan | None = None
    ) -> tuple[Module, dict[str, LayerPlan]]:
        plan = plan if plan is not None else self.plan
        replica = _replicate_model(self.model)
        layer_plans = plan.clone_layer_plans()
        plan.install(replica, layer_plans)
        return replica, layer_plans

    # lint: disable=guarded-field — every caller (install/scale_to/swap_plan)
    # already holds _state_lock around the _replica_plans append
    def _enroll_replica(self, replica: Module, layer_plans: dict[str, LayerPlan]) -> None:
        """Register one built replica: uid, telemetry, the checkout pool."""
        uid = next(self._uids)
        with self._stats_lock:
            self._replica_uid[id(replica)] = uid
            self._worker_requests.setdefault(uid, 0)
            self._current_uids.add(uid)
        self._pool.put(replica)
        self._replica_plans.append(layer_plans)

    def install(self) -> "ThreadWorkerPool":
        with self._state_lock:
            if not self._installed:
                for _ in range(self.workers):
                    replica, layer_plans = self._build_replica()
                    self._enroll_replica(replica, layer_plans)
                self._installed = True
        return self

    def close(self) -> None:
        """Discard the replica pool (the source model was never modified).

        Waits for in-flight forwards, then drops the replicas.  Their
        layer-plan clones are kept so :meth:`stats` keeps reporting the
        accumulated counters after close — the same post-close behaviour
        as :class:`PlanExecutor`.  A later :meth:`run`/:meth:`install`
        builds a fresh replica generation whose counters merge on top.
        """
        # Shard teardown strictly before the state lock: run_sharded nests
        # _driver_lock -> _state_lock, so the opposite order would deadlock.
        with self._driver_lock:
            executor = self._shard_executor
            self._shard_executor = None
            self._shard_driver = None
            self._shard_slices.clear()
        if executor is not None:
            executor.shutdown(wait=True)
        with self._state_lock:
            if not self._installed:
                return
            # Wait for in-flight forwards: every replica must be back home.
            for _ in range(self.workers):
                replica = self._pool.get()
                with self._stats_lock:
                    # Drop the id mapping: the replica is about to be GC'd
                    # and a later generation's replica could reuse its id().
                    self._replica_uid.pop(id(replica), None)
            with self._stats_lock:
                self._current_uids.clear()
            self._installed = False

    # ------------------------------------------------------------------ #
    @hot_path
    def run(self, x: np.ndarray) -> np.ndarray:
        """One timed forward on whichever replica is free first.

        Blocks until a replica is available; no lock is held while the
        forward runs, so up to ``workers`` calls proceed concurrently.
        """
        x = np.asarray(x)
        # install() then checkout with one blocking wait per liveness
        # re-check: a close() racing this call can drain the pool after our
        # install() check, and a plain blocking get() would then hang
        # forever.  On wakeup the install() is what refills the pool (lazy
        # reinstall-after-close); a generous timeout keeps the idle path
        # from busy-spinning through install()'s state lock.
        while True:
            self.install()
            try:
                replica = self._pool.get(timeout=0.5)
                break
            except queue.Empty:
                continue
        try:
            t0 = time.perf_counter()
            y = replica(x)
            elapsed = time.perf_counter() - t0
        finally:
            self._pool.put(replica)
        with self._stats_lock:
            # uid looked up under the lock: a concurrent close() popping the
            # mapping mid-read would otherwise race this .get().
            uid = self._replica_uid.get(id(replica))
            self._batches += 1
            self._samples += int(x.shape[0])
            self._wall_time += elapsed
            if uid is not None:
                self._worker_requests[uid] = self._worker_requests.get(uid, 0) + 1
        return y

    # ------------------------------------------------------------------ #
    # Scatter/gather sharding (thread substrate)
    # ------------------------------------------------------------------ #
    def _ensure_shard_executor(self) -> ThreadPoolExecutor:
        # Separate from the replica pool on purpose: shard tasks are slices
        # of one forward and must not compete with whole-forward checkouts
        # for the same workers (a K-way fan-out deadlocking on its own pool).
        with self._driver_lock:
            if self._shard_executor is None:
                self._shard_executor = ThreadPoolExecutor(
                    max_workers=max(2, self.workers), thread_name_prefix="tasd-shard"
                )
            return self._shard_executor

    @hot_path
    def _shard_slice_matmul(
        self, lp: LayerPlan, start: int, stop: int, xt: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """One shard task: rows ``[start, stop)`` of ``lp``'s GEMM."""
        key = (lp.name, int(start), int(stop))
        sliced = self._shard_slices.get(key)
        if sliced is None:
            sliced = slice_operand(lp.operand, start, stop)
            self._shard_slices[key] = sliced
        t0 = time.perf_counter()
        part = sliced.matmul(xt, backend=shard_backend(lp.backend))
        return part, time.perf_counter() - t0

    @hot_path
    def _scatter_layer(self, lp: LayerPlan, xt: np.ndarray) -> np.ndarray:
        """Driver dispatch hook: fan one layer's GEMM out as shard tasks.

        NumPy releases the GIL inside the kernels, so the slices genuinely
        overlap; outputs concatenate in row order, bit-identical to the
        unsharded GEMM (every shard backend is row-slice bit-safe).
        """
        spec = lp.shards
        pool = self._ensure_shard_executor()
        futures = [
            pool.submit(self._shard_slice_matmul, lp, start, stop, xt)
            for start, stop in spec.ranges
        ]
        with self._driver_lock:
            observer = self._shard_observer
        parts = []
        for fut in futures:
            part, elapsed = fut.result()
            parts.append(part)
            if observer is not None:
                observer(elapsed)
        return np.concatenate(parts, axis=0)

    def _measure_shard_overhead(self, sample_cols: int = 8, repeats: int = 3) -> float:
        """Per-shard fan-out cost: one executor submit/result round-trip."""
        del sample_cols  # thread fan-out cost is payload-size independent
        pool = self._ensure_shard_executor()
        return median_time(lambda: pool.submit(int).result(), repeats=repeats)

    # ------------------------------------------------------------------ #
    def stats(self) -> ExecutorStats:
        """Counters merged across all replicas plus whole-forward timing.

        ``wall_time`` sums per-forward time across replicas, so with
        concurrent workers it can exceed elapsed wall-clock — it measures
        compute volume, like CPU time.  The snapshot is taken without
        stopping in-flight forwards; concurrently-running batches may be
        partially reflected.
        """
        with self._stats_lock:
            batches, samples, wall = self._batches, self._samples, self._wall_time
        with self._state_lock:
            replica_plans = list(self._replica_plans)
        with self._driver_lock:
            replica_plans.extend(self._shard_driver_plans)
        layers: dict[str, LayerCounters] = {}
        for name in self.plan.layers:
            merged = LayerCounters()
            for layer_plans in replica_plans:
                merged = merged.merged_with(layer_plans[name].counters)
            layers[name] = merged
        return ExecutorStats(
            batches=batches,
            samples=samples,
            wall_time=wall,
            layers=layers,
            cache=dataclasses.replace(self.plan.cache.counters),
        )

    def worker_stats(self) -> list[WorkerStat]:
        with self._state_lock:
            installed = self._installed
        with self._stats_lock:
            current = set(self._current_uids)
            return [
                WorkerStat(uid=uid, alive=installed and uid in current, requests=n)
                for uid, n in sorted(self._worker_requests.items())
            ]

    # ------------------------------------------------------------------ #
    # Zero-downtime operations: hot plan-swap and elastic resize
    # ------------------------------------------------------------------ #
    def utilization(self) -> float:
        """Fraction of replicas checked out right now (autoscaler signal)."""
        with self._state_lock:
            if not self._installed:
                return 0.0
            total = self.workers
        busy = total - self._pool.qsize()
        return max(0.0, min(1.0, busy / max(total, 1)))

    def scale_to(self, n: int) -> int:
        """Resize to ``n`` replicas; returns the delta applied.

        Scale-ups build fresh replicas (weights aliased, plan shared);
        scale-downs wait for busy replicas to come home, then drop them.
        Dropped replicas' layer-plan clones stay behind so :meth:`stats`
        keeps their accumulated counters.
        """
        if n <= 0:
            raise ValueError(f"workers must be positive, got {n}")
        with self._state_lock:
            delta = n - self.workers
            if not self._installed:
                self.workers = n
                return delta
            for _ in range(max(0, delta)):
                replica, layer_plans = self._build_replica()
                self._enroll_replica(replica, layer_plans)
            for _ in range(max(0, -delta)):
                replica = self._pool.get()  # waits for in-flight forwards
                with self._stats_lock:
                    uid = self._replica_uid.pop(id(replica), None)
                    if uid is not None:
                        self._current_uids.discard(uid)
            self.workers = n
            return delta

    def swap_plan(self, new_plan: ExecutionPlan, canary=None) -> int:
        """Replace the serving plan across every replica.

        A probe replica is built on ``new_plan`` first and — when
        ``canary`` is given — validated *before* any serving replica is
        touched, so a rejected plan never serves a request.  On success
        the pool quiesces (waits for in-flight forwards), retires the old
        replicas, and enrolls a fresh generation on the new plan, with
        the probe replica recycled as the first worker.  Old replicas'
        counters stay merged into :meth:`stats`.
        """
        self.install()
        with self._state_lock:
            probe, probe_plans = self._build_replica(new_plan)
            if canary is not None:
                canary(lambda x: probe(np.asarray(x)))  # raising rejects the swap
            old = [self._pool.get() for _ in range(self.workers)]
            with self._stats_lock:
                for replica in old:
                    self._replica_uid.pop(id(replica), None)
                self._current_uids.clear()
            self.plan = new_plan
            self._enroll_replica(probe, probe_plans)
            for _ in range(self.workers - 1):
                replica, layer_plans = self._build_replica()
                self._enroll_replica(replica, layer_plans)
            swapped = self.workers
        # Outside the state lock (lock-order discipline, see close()): the
        # driver and the operand slices belong to the plan just replaced.
        with self._driver_lock:
            self._shard_driver = None
            self._shard_slices.clear()
        return swapped

    def reset_stats(self) -> None:
        with self._stats_lock:
            self._batches = self._samples = 0
            self._wall_time = 0.0
            self._worker_requests = {uid: 0 for uid in self._worker_requests}
        with self._state_lock:
            replica_plans = list(self._replica_plans)
        with self._driver_lock:
            replica_plans.extend(self._shard_driver_plans)
        for layer_plans in replica_plans:
            for plan in layer_plans.values():
                plan.counters.reset()
        self.plan.cache.counters.reset()


# ---------------------------------------------------------------------- #
# Process pool: one worker process per worker, shared-memory operands
# ---------------------------------------------------------------------- #
@hot_path
def _pool_worker_main(conn, model_payload: bytes, spec: dict, chaos=None) -> None:
    """Entry point of one pool worker process.

    Rebuilds the model from its pickle, attaches the shared plan spec
    (zero-copy operand views into the parent's segment), installs the
    plan, and serves ``("run", batch)`` requests over the pipe until told
    to stop.  Every ``run`` reply carries the worker's cumulative
    per-layer counters so the parent can merge :meth:`stats` without an
    extra round-trip.  ``("ping", None)`` answers ``("ok", None)`` — the
    supervisor's idle health check.  ``("swap", spec)`` hot-swaps the
    worker onto a *new* shared plan spec (attach second segment, install,
    detach old segment), and ``("probe", batch)`` runs one untracked
    canary forward — the two halves of the zero-downtime plan rollout.

    ``chaos`` (a :class:`~repro.runtime.chaos.ChaosSpec`) injects
    deterministic faults — crash/hang/slow at exact request counts — for
    the fault-tolerance tests and the chaos-smoke job; without it this
    loop is fault-free.
    """
    from .cache import OperandCache
    from .planio import attach_plan

    if chaos is not None:
        chaos.on_start()
    store = None
    try:
        model = pickle.loads(model_payload)
        plan, store = attach_plan(spec, cache=OperandCache())
        plan.install(model)
        model.eval()
    # lint: disable=broad-except — any install failure is shipped to the
    # parent as a ("fail", reason) message; the worker must not die silently
    except Exception as exc:
        try:
            conn.send(("fail", f"{type(exc).__name__}: {exc}"))
        finally:
            if store is not None:
                store.close()
            conn.close()
        return
    served = 0
    swaps = 0
    # Memoised zero-copy operand row slices for "run_shard" — views into
    # the attached segment keyed (layer, start, stop); dropped on swap.
    shard_slices: dict = {}
    try:
        conn.send(("ready", None))
        while True:
            try:
                cmd, payload = conn.recv()
            except EOFError:  # parent vanished: exit quietly
                break
            if cmd == "run":
                try:
                    served += 1
                    if chaos is not None:
                        chaos.on_request(served, payload)
                    t0 = time.perf_counter()
                    y = model(payload)
                    elapsed = time.perf_counter() - t0
                    counters = {
                        name: lp.counters.snapshot() for name, lp in plan.layers.items()
                    }
                    conn.send(("ok", (y, elapsed, counters)))
                # lint: disable=broad-except — every request failure is
                # shipped to the parent as ("err", exc, tb); the serving loop
                # must survive any single bad request
                except Exception as exc:
                    tb = traceback.format_exc()
                    try:
                        conn.send(("err", (exc, tb)))
                    # lint: disable=broad-except — unpicklable exception
                    # object: degrade to a string-carrying RuntimeError
                    except Exception:
                        conn.send(("err", (RuntimeError(f"{type(exc).__name__}: {exc}"), tb)))
            elif cmd == "run_shard":
                # One shard of a sharded forward: output rows [start, stop)
                # of one compiled layer's GEMM, computed on a zero-copy row
                # slice of the shared operand.  No chaos injection and no
                # served-count bump — a shard is a slice of the driver's
                # forward, not a request of its own.
                try:
                    name, xt, start, stop = payload
                    t0 = time.perf_counter()
                    part = shard_partial(plan, name, xt, start, stop, shard_slices)
                    conn.send(("ok", (part, time.perf_counter() - t0)))
                # lint: disable=broad-except — shard failures are shipped to
                # the parent as ("err", exc, tb) like any request failure
                except Exception as exc:
                    tb = traceback.format_exc()
                    try:
                        conn.send(("err", (exc, tb)))
                    # lint: disable=broad-except — unpicklable exception
                    # object: degrade to a string-carrying RuntimeError
                    except Exception:
                        conn.send(("err", (RuntimeError(f"{type(exc).__name__}: {exc}"), tb)))
            elif cmd == "probe":
                # Canary forward: same kernels as "run", but no chaos
                # injection, no served-count bump, no counter shipping —
                # a swap's validation traffic must not perturb
                # fault-injection schedules or serving telemetry.
                try:
                    conn.send(("ok", model(payload)))
                # lint: disable=broad-except — canary failures are shipped to
                # the parent, which turns them into a typed SwapRejected
                except Exception as exc:
                    tb = traceback.format_exc()
                    conn.send(("err", (RuntimeError(f"{type(exc).__name__}: {exc}"), tb)))
            elif cmd == "swap":
                # Hot plan-swap: attach the new spec (second segment),
                # install it over the old plan, then detach the old
                # segment.  On any failure the old plan is reinstalled and
                # keeps serving — the parent decides whether to roll back
                # the fleet.
                swaps += 1
                if chaos is not None:
                    chaos.on_swap(swaps)
                try:
                    new_plan, new_store = attach_plan(payload, cache=OperandCache())
                    new_plan.install(model)
                # lint: disable=broad-except — attach/install failures are
                # shipped to the parent, which rolls the fleet back typed
                except Exception as exc:
                    tb = traceback.format_exc()
                    plan.install(model)  # a partial install must not serve
                    conn.send(("err", (RuntimeError(f"{type(exc).__name__}: {exc}"), tb)))
                else:
                    old_plan, old_store = plan, store
                    plan, store = new_plan, new_store
                    # Drop the old plan's operand views *before* detaching
                    # the old segment (same discipline as shutdown below).
                    # Shard slices are views too — and their (layer, range)
                    # keys would collide with the new plan's operands.
                    shard_slices.clear()
                    del new_plan, old_plan
                    if old_store is not None:
                        old_store.close()
                    conn.send(("ok", None))
            elif cmd == "ping":
                conn.send(("ok", None))
            elif cmd == "reset":
                plan.reset_counters()
                conn.send(("ok", None))
            elif cmd == "stop":
                conn.send(("ok", None))
                break
    finally:
        # The plan's arrays are views into the segment: drop them before
        # detaching, or the munmap would pull the buffer out from under
        # live ndarray objects.
        plan.uninstall(model)
        del plan
        if store is not None:
            store.close()
        conn.close()


class _WorkerTimeout(Exception):
    """Internal marker: a worker missed its request-reply deadline."""


@dataclasses.dataclass
class _ProcWorker:
    uid: int  # unique across pool generations (stats keys)
    process: object  # multiprocessing.Process (context-specific class)
    conn: object  # parent end of the pipe


class ProcessWorkerPool(_ShardingMixin, WorkerPool):
    """Execute batches across N worker *processes* sharing one compiled plan.

    The parent pays plan compilation once, exports it once
    (:func:`~repro.runtime.planio.share_plan` packs every operand array
    into one shared-memory segment), and pickles the model once.  Each
    worker process attaches the segment zero-copy — N workers hold one
    copy of the compressed operands — and runs forwards with no GIL in
    common, so throughput scales with cores even for the Python-level
    parts of a forward that thread replicas serialise.

    Outputs are bit-identical to the thread pool (and to
    :class:`PlanExecutor`): workers run the same kernels over byte-equal
    operand storage, and request arrays round-trip the pipe losslessly.

    ``mp_context`` picks the start method: the default prefers ``fork``
    (fast start, shares the parent's page cache) where available and falls
    back to ``spawn``.  Choose ``spawn`` explicitly when forking a
    multi-threaded parent is a concern — workers rebuild everything from
    the pickled model + shared spec either way, so behaviour is identical.

    **Supervision.**  With ``respawn=True`` (the default) a supervisor
    thread watches the pool: a worker that dies — detected by a pipe
    error on a request, by missing a reply within ``request_timeout``,
    or by failing the periodic idle health-check ping — is retired and a
    replacement is respawned from the *already-shared* plan segment and
    pickled model (no recompression, no re-export).  Respawns back off
    exponentially (``respawn_backoff`` doubling up to ``backoff_cap``)
    while deaths keep coming, and a crash-loop circuit breaker stops
    respawning entirely after ``max_respawns`` respawns inside a sliding
    ``respawn_window`` seconds — the pool is then :attr:`degraded` and
    :meth:`run` raises :class:`PoolDegradedError` instead of hammering
    a poisoned configuration.  A request in flight on a dying worker
    raises :class:`WorkerCrashError` (retryable; the serving engine
    re-dispatches).  With ``respawn=False`` a dead worker is retired
    permanently — the pre-supervision behaviour — and a fully-dead pool
    raises :class:`PoolDegradedError`.
    """

    def __init__(
        self,
        model: Module,
        plan: ExecutionPlan,
        workers: int = 2,
        mp_context: str | None = None,
        start_timeout: float = 120.0,
        respawn: bool = True,
        max_respawns: int = 6,
        respawn_window: float = 30.0,
        respawn_backoff: float = 0.05,
        backoff_cap: float = 5.0,
        health_interval: float = 0.5,
        request_timeout: float | None = None,
        chaos=None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_respawns <= 0:
            raise ValueError(f"max_respawns must be positive, got {max_respawns}")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError(f"request_timeout must be positive, got {request_timeout}")
        methods = multiprocessing.get_all_start_methods()
        if mp_context is None:
            mp_context = "fork" if "fork" in methods else "spawn"
        if mp_context not in methods:
            raise ValueError(
                f"start method {mp_context!r} unavailable on this platform; "
                f"options: {methods}"
            )
        self.model = model
        self.plan = plan
        self.workers = workers
        self.mp_context = mp_context
        self.respawn = respawn
        self.max_respawns = max_respawns
        self.respawn_window = respawn_window
        self.respawn_backoff = respawn_backoff
        self.backoff_cap = backoff_cap
        self.health_interval = health_interval
        self.request_timeout = request_timeout
        self.chaos = chaos
        self._ctx = multiprocessing.get_context(mp_context)
        self._start_timeout = start_timeout
        self._free: "queue.Queue[_ProcWorker]" = queue.Queue()
        self._store = None
        self._spec: dict | None = None  # shared-plan spec, reused by respawns
        self._payload: bytes | None = None  # pickled model, reused by respawns
        self._installed = False  # guarded-by: _state_lock
        self._state_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        # Zero-downtime operations: one swap/scale at a time, and the
        # supervisor stands down while one owns the worker fleet (a
        # respawn mid-roll would come up on an ambiguous plan spec).
        self._ops_lock = threading.Lock()
        self._ops_pause = threading.Event()
        # Workers that will eventually return to the free queue.
        self._live = 0  # guarded-by: _stats_lock
        self._uids = itertools.count()
        self._batches = 0  # guarded-by: _stats_lock
        self._samples = 0  # guarded-by: _stats_lock
        self._wall_time = 0.0  # guarded-by: _stats_lock
        # Latest cumulative per-layer counters per worker uid.  Kept across
        # close() so stats survive it (old generations merge with new ones,
        # exactly like the thread pool's retained replica plans).
        self._counter_snapshots: dict[int, dict[str, LayerCounters]] = {}  # guarded-by: _stats_lock
        # Telemetry: liveness + served-forward count per worker uid.  Kept
        # across close() too, so a scrape can still see retired workers.
        self._worker_alive: dict[int, bool] = {}  # guarded-by: _stats_lock
        self._worker_requests: dict[int, int] = {}  # guarded-by: _stats_lock
        # Live workers of the current generation, uid -> handle (busy ones
        # included — they are checked out of the free queue but not gone).
        self._procs: dict[int, _ProcWorker] = {}  # guarded-by: _stats_lock
        # Supervision state.  respawns/deaths are cumulative (telemetry
        # counters); _respawn_times, _backoff, and _next_respawn_at are
        # touched only by the supervisor thread (single-writer, no lock) —
        # install() resets them strictly before the supervisor starts.
        self._supervisor: threading.Thread | None = None
        self._closing = threading.Event()  # also stops the supervisor
        self._wake = threading.Event()  # a death wants prompt supervision
        self._respawn_times: collections.deque[float] = collections.deque()
        self._breaker_open = False  # guarded-by: _stats_lock
        self._backoff = respawn_backoff
        self._next_respawn_at = 0.0  # monotonic time the backoff gate opens
        self.respawns = 0
        self.deaths = 0
        self._init_sharding()

    # ------------------------------------------------------------------ #
    def _start_worker(self) -> _ProcWorker:
        """Fork/spawn one worker and complete its ready handshake.

        Reuses the already-shared plan segment (``self._spec``) and the
        already-pickled model, so a respawn costs one process start — not
        a re-export of the compiled plan.
        """
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, self._payload, self._spec, self.chaos),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # child's end lives in the child only
        worker = _ProcWorker(next(self._uids), proc, parent_conn)
        try:
            if not worker.conn.poll(self._start_timeout):
                raise RuntimeError(
                    f"pool worker pid {proc.pid} did not report "
                    f"ready within {self._start_timeout}s"
                )
            try:
                tag, detail = worker.conn.recv()
            except EOFError:
                raise RuntimeError(
                    f"pool worker pid {proc.pid} died during startup"
                ) from None
            if tag != "ready":
                raise RuntimeError(f"pool worker failed to start: {detail}")
        except Exception:
            # Never leak the child: a failed start reaps it before raising.
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
            worker.conn.close()
            raise
        return worker

    def _enroll(self, worker: _ProcWorker) -> None:
        """Register a started worker: stats, liveness, the free queue."""
        with self._stats_lock:
            self._live += 1
            self._worker_alive[worker.uid] = True
            self._worker_requests.setdefault(worker.uid, 0)
            self._procs[worker.uid] = worker
        self._free.put(worker)

    def install(self) -> "ProcessWorkerPool":
        with self._state_lock:
            if self._installed:
                return self
            from .planio import share_plan

            store, spec = share_plan(self.plan)
            self._store = store
            self._spec = spec
            if self._payload is None:
                self._payload = pickle.dumps(self.model, protocol=pickle.HIGHEST_PROTOCOL)
            started: list[_ProcWorker] = []
            try:
                for _ in range(self.workers):
                    started.append(self._start_worker())
            except Exception:
                for worker in started:
                    if worker.process.is_alive():
                        worker.process.terminate()
                    worker.process.join(timeout=5.0)
                    worker.conn.close()
                if store is not None:
                    store.unlink()
                self._store = None
                raise
            for worker in started:
                self._enroll(worker)
            # Fresh generation, fresh breaker: the crash history of a closed
            # generation should not pre-trip the new one.
            self._respawn_times.clear()
            with self._stats_lock:
                self._breaker_open = False
            self._backoff = self.respawn_backoff
            self._next_respawn_at = 0.0
            self._installed = True
            self._closing.clear()
            self._wake.clear()
            if self.respawn or self.health_interval > 0:
                self._supervisor = threading.Thread(
                    target=self._supervise, name="pool-supervisor", daemon=True
                )
                self._supervisor.start()
        return self

    # ------------------------------------------------------------------ #
    # Supervision: death bookkeeping, health checks, respawn
    # ------------------------------------------------------------------ #
    def _retire(self, worker: _ProcWorker) -> None:
        """Take a dead/wedged worker out of service and reap its process.

        Idempotent per worker (guarded by the liveness map): the request
        path and the supervisor can both conclude a worker is gone.
        """
        with self._stats_lock:
            if not self._worker_alive.get(worker.uid, False):
                return  # already retired by the other detector
            self._worker_alive[worker.uid] = False
            self._live -= 1
            self.deaths += 1
            self._procs.pop(worker.uid, None)
        worker.conn.close()
        if worker.process.is_alive():
            worker.process.terminate()
        # Reap it: a retired worker never reaches close()'s join, and a
        # long-lived server accumulating zombies exhausts the process table.
        worker.process.join(timeout=5.0)
        self._wake.set()  # the supervisor should notice the deficit now

    @property
    def degraded(self) -> bool:
        """True when the pool cannot return to service on its own: the
        crash-loop breaker is open, or every worker is dead with respawn
        disabled.  The serving engine's cue to fall back in-process."""
        with self._stats_lock:
            if self._breaker_open:
                return True
            # lint: disable=guarded-field — racy read of _installed is
            # benign here: close() flips it only after the fleet stops
            return self._live == 0 and self._installed and not self.respawn

    def worker_pids(self) -> list[int]:
        """PIDs of currently-live workers, idle *and* busy (chaos fodder)."""
        with self._stats_lock:
            return [w.process.pid for w in self._procs.values()]

    def _breaker_check(self, now: float) -> bool:
        """Record one respawn attempt; True if the breaker just tripped."""
        self._respawn_times.append(now)
        while self._respawn_times and now - self._respawn_times[0] > self.respawn_window:
            self._respawn_times.popleft()
        if len(self._respawn_times) > self.max_respawns:
            with self._stats_lock:
                self._breaker_open = True
            return True
        return False

    def _health_check(self) -> None:
        """Ping idle workers; retire any that died quietly or wedged.

        Only workers sitting in the free queue are pinged — a busy worker
        is being watched by the run() that checked it out.  An idle worker
        answers a ping in microseconds, so a short deadline is fair.
        """
        idle: list[_ProcWorker] = []
        while True:
            try:
                idle.append(self._free.get_nowait())
            except queue.Empty:
                break
        for worker in idle:
            healthy = False
            try:
                worker.conn.send(("ping", None))
                if worker.conn.poll(2.0):
                    tag, _ = worker.conn.recv()
                    healthy = tag == "ok"
            except (BrokenPipeError, EOFError, OSError):
                healthy = False
            if healthy:
                self._free.put(worker)
            else:
                self._retire(worker)

    def _respawn_deficit(self) -> None:
        """Bring the pool back toward its configured size, gated by the
        exponential backoff and the crash-loop circuit breaker."""
        now = time.monotonic()
        with self._stats_lock:
            breaker_open = self._breaker_open
        if breaker_open or now < self._next_respawn_at:
            return
        with self._stats_lock:
            deficit = self.workers - self._live
        if deficit <= 0:
            # Full strength: relax the backoff so the next incident starts
            # from the fast end again.
            self._backoff = self.respawn_backoff
            return
        for _ in range(deficit):
            now = time.monotonic()
            if self._breaker_check(now):
                return
            try:
                worker = self._start_worker()
            # lint: disable=broad-except — a failed respawn (whatever the
            # cause) is a crash-loop signal: back off harder and try again
            # at the next supervision tick
            except Exception:
                self._backoff = min(self._backoff * 2.0, self.backoff_cap)
                self._next_respawn_at = time.monotonic() + self._backoff
                return
            self._enroll(worker)
            with self._stats_lock:
                self.respawns += 1
            self._backoff = min(self._backoff * 2.0, self.backoff_cap)
            self._next_respawn_at = time.monotonic() + self._backoff

    def _supervise(self) -> None:
        """Supervisor thread: health-check idle workers, respawn the dead.

        Runs until close() signals ``_closing``; a death in the request
        path sets ``_wake`` so the deficit is noticed without waiting out
        the full interval.
        """
        interval = self.health_interval if self.health_interval > 0 else 0.5
        while not self._closing.is_set():
            woken = self._wake.wait(interval)
            if self._closing.is_set():
                return
            if woken:
                self._wake.clear()
            if self._ops_pause.is_set():
                continue  # a swap/scale owns the fleet right now
            if self.health_interval > 0 and not woken:
                self._health_check()
            if self.respawn:
                self._respawn_deficit()

    def close(self) -> None:
        """Stop every worker process and destroy the shared segment.

        Waits for in-flight forwards (workers come home before stopping),
        keeps accumulated counters readable afterwards, and a later
        :meth:`run`/:meth:`install` brings up a fresh worker generation
        whose counters merge on top — the same post-close contract as the
        thread pool.
        """
        # Stop the supervisor before taking the state lock: it must not
        # respawn (or hold workers out for pings) while teardown collects
        # the live set, and joining it under the lock could deadlock.
        self._closing.set()
        self._wake.set()
        supervisor = self._supervisor
        if supervisor is not None:
            supervisor.join(timeout=10.0)
            self._supervisor = None
        with self._state_lock:
            if not self._installed:
                return
            collected: list[_ProcWorker] = []
            while True:
                with self._stats_lock:
                    live = self._live
                if len(collected) >= live:
                    break
                try:
                    collected.append(self._free.get(timeout=0.05))
                except queue.Empty:
                    continue  # an in-flight run() will return its worker
            for worker in collected:
                try:
                    worker.conn.send(("stop", None))
                except (BrokenPipeError, OSError):  # already dead
                    pass
            for worker in collected:
                try:
                    if worker.conn.poll(5.0):
                        worker.conn.recv()  # the stop ack
                except (EOFError, OSError):
                    pass
                worker.conn.close()
            for worker in collected:
                worker.process.join(timeout=10.0)
                if worker.process.is_alive():  # pragma: no cover - stuck worker
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
            if self._store is not None:
                self._store.unlink()
                self._store = None
            with self._stats_lock:
                self._live = 0
                for worker in collected:
                    self._worker_alive[worker.uid] = False
                self._procs.clear()
            self._installed = False

    # ------------------------------------------------------------------ #
    def _checkout_worker(self) -> _ProcWorker:
        """Block until a live worker frees up (degraded-aware).

        One blocking wait per liveness re-check: a dead pool wakes this up
        via the timeout, a respawn wakes it via put().
        """
        while True:
            self.install()
            if self.degraded:
                # The supervisor has given up (or was never allowed to
                # start): waiting on the free queue would hang forever.
                raise PoolDegradedError(
                    "all process-pool workers have died and the pool cannot "
                    "respawn (respawn disabled or circuit breaker open); "
                    "close() and re-run, or serve through a fallback executor"
                )
            try:
                return self._free.get(timeout=0.5)
            except queue.Empty:
                continue  # re-check degraded/installed only on wakeup

    # ------------------------------------------------------------------ #
    # Scatter/gather sharding (process substrate)
    # ------------------------------------------------------------------ #
    def _send_shard(
        self, worker: _ProcWorker, name: str, rng: tuple[int, int], xt: np.ndarray
    ) -> bool:
        """Dispatch one shard task; False (worker retired) on a dead pipe."""
        start, stop = rng
        try:
            worker.conn.send(("run_shard", (name, xt, start, stop)))
            return True
        except (BrokenPipeError, OSError):
            self._retire(worker)
            return False

    def _reclaim_shard_workers(self, busy: dict) -> None:
        """Bring mid-shard workers back to a known pipe state before a raise.

        A worker returned to the free queue with an unread shard reply in
        its pipe would pair that stale reply with the *next* request — so
        each busy worker either drains its reply within a grace period and
        goes home, or is retired.
        """
        grace = self.request_timeout if self.request_timeout is not None else 5.0
        for worker, _idx, _sent in busy.values():
            try:
                if worker.conn.poll(grace):
                    worker.conn.recv()  # drain the stale shard reply
                    self._free.put(worker)
                else:
                    self._retire(worker)
            except (EOFError, OSError):
                self._retire(worker)

    @hot_path
    def _scatter_layer(self, lp: LayerPlan, xt: np.ndarray) -> np.ndarray:
        """Driver dispatch hook: fan one layer's GEMM out across workers.

        Each shard task ships only the input activations and a row range —
        workers slice the *already-attached* shm operands zero-copy, so no
        operand bytes move.  A shard whose worker dies (pipe error or a
        missed ``request_timeout``) is retired exactly like a crashed
        batch and the shard is re-dispatched on a surviving or respawned
        worker; partial outputs concatenate in row order.
        """
        spec = lp.shards
        name = spec.layer
        k = spec.num_shards
        pending = collections.deque(range(k))
        parts: list = [None] * k
        busy: dict = {}  # conn -> (worker, shard index, sent-at monotonic)
        crashes = 0
        # Enough retry budget to survive a rolling crash per shard twice
        # over, small enough that a poisoned layer fails fast.
        crash_cap = max(2, 2 * k)
        with self._driver_lock:
            observer = self._shard_observer
        try:
            while pending or busy:
                if crashes > crash_cap:
                    raise WorkerCrashError(
                        f"sharded forward of layer {name!r} lost {crashes} "
                        "workers; giving up"
                    )
                # Fan out: block for the first worker when nothing is in
                # flight (degraded-aware, like run()), take extras only if
                # they are free right now — shards must never queue behind
                # each other waiting for more workers than exist.
                while pending:
                    if busy:
                        try:
                            worker = self._free.get_nowait()
                        except queue.Empty:
                            break
                    else:
                        worker = self._checkout_worker()
                    idx = pending.popleft()
                    if self._send_shard(worker, name, spec.ranges[idx], xt):
                        busy[worker.conn] = (worker, idx, time.monotonic())
                    else:
                        pending.appendleft(idx)
                        crashes += 1
                        with self._stats_lock:
                            self._shard_retries += 1
                        break  # back to the cap check / blocking checkout
                if not busy:
                    continue
                ready = multiprocessing.connection.wait(list(busy), timeout=0.05)
                for conn in ready:
                    worker, idx, _sent = busy.pop(conn)
                    try:
                        tag, payload = conn.recv()
                    except (EOFError, OSError):
                        self._retire(worker)
                        pending.append(idx)
                        crashes += 1
                        with self._stats_lock:
                            self._shard_retries += 1
                        continue
                    if tag == "err":
                        # Worker healthy, request bad: not retryable.
                        self._free.put(worker)
                        exc, tb = payload if isinstance(payload, tuple) else (payload, None)
                        if tb is not None:
                            exc.__cause__ = RemoteTraceback(tb)
                        raise exc
                    part, elapsed = payload
                    parts[idx] = part
                    if observer is not None:
                        observer(elapsed)
                    self._free.put(worker)  # the top-up loop re-grabs it
                if self.request_timeout is not None:
                    now = time.monotonic()
                    for conn, (worker, idx, sent) in list(busy.items()):
                        if now - sent > self.request_timeout:
                            # Wedged worker: its eventual reply can never be
                            # trusted to pair with the right shard again.
                            del busy[conn]
                            self._retire(worker)
                            pending.append(idx)
                            crashes += 1
                            with self._stats_lock:
                                self._shard_retries += 1
        except BaseException:
            self._reclaim_shard_workers(busy)
            raise
        return np.concatenate(parts, axis=0)

    def _measure_shard_overhead(self, sample_cols: int = 8, repeats: int = 3) -> float:
        """Per-shard fan-out cost: a full-layer shard round-trip over the
        pipe minus the same GEMM computed locally, clamped at zero."""
        candidates = [
            (name, lp)
            for name, lp in self.plan.layers.items()
            if lp.operand is not None and lp.operand.flat_values
        ]
        if not candidates:
            return 0.0
        # The smallest layer: its round-trip is dominated by the fixed
        # dispatch cost, so the subtraction isolates overhead with the
        # least compute noise.
        name, lp = min(candidates, key=lambda item: item[1].operand.padded_shape[0])
        operand = lp.operand
        rows = operand.padded_shape[0]
        rng = np.random.default_rng(0)
        xt = rng.standard_normal((operand.padded_shape[1], int(sample_cols))).astype(
            operand.flat_values[0].dtype
        )
        worker = self._checkout_worker()
        healthy = True

        def roundtrip() -> None:
            worker.conn.send(("run_shard", (name, xt, 0, rows)))
            tag, payload = worker.conn.recv()
            if tag != "ok":
                exc, _tb = payload if isinstance(payload, tuple) else (payload, None)
                raise exc

        try:
            remote = median_time(roundtrip, repeats=repeats)
        except (EOFError, BrokenPipeError, OSError):
            healthy = False
            self._retire(worker)
            return 0.0
        finally:
            if healthy:
                self._free.put(worker)
        local = median_time(
            lambda: operand.matmul(xt, backend=shard_backend(lp.backend)), repeats=repeats
        )
        return max(0.0, remote - local)

    # ------------------------------------------------------------------ #
    @hot_path
    def run(self, x: np.ndarray) -> np.ndarray:
        """One timed forward on whichever worker process frees first.

        Raises :class:`WorkerCrashError` (retryable) when the worker dies
        or misses ``request_timeout`` with this request in flight, and
        :class:`PoolDegradedError` when the pool as a whole cannot serve
        (breaker open, or all workers dead with respawn off).
        """
        x = np.asarray(x)
        worker = self._checkout_worker()
        pid = worker.process.pid
        healthy = False
        try:
            worker.conn.send(("run", x))
            if self.request_timeout is not None:
                if not worker.conn.poll(self.request_timeout):
                    # Wedged worker: no reply within the budget.  Kill it —
                    # its eventual reply (if any) can never be trusted to
                    # pair with the right request again.
                    # lint: disable=typed-raise — internal sentinel, caught
                    # three lines below; callers only ever see the typed
                    # WorkerCrashError it is converted into
                    raise _WorkerTimeout()
            tag, payload = worker.conn.recv()
            healthy = True
        except (EOFError, BrokenPipeError, OSError, _WorkerTimeout) as exc:
            self._retire(worker)
            reason = (
                f"missed its {self.request_timeout}s reply deadline"
                if isinstance(exc, _WorkerTimeout)
                else "died"
            )
            cause = None if isinstance(exc, _WorkerTimeout) else exc
            raise WorkerCrashError(
                f"process-pool worker pid {pid} {reason} mid-request"
            ) from cause
        finally:
            if healthy:
                self._free.put(worker)
        if tag == "err":
            exc, tb = payload if isinstance(payload, tuple) else (payload, None)
            if tb is not None:
                # Chain the child's formatted stack so the failure is
                # debuggable from the parent (satellite: remote tracebacks).
                exc.__cause__ = RemoteTraceback(tb)
            raise exc
        y, elapsed, counters = payload
        with self._stats_lock:
            self._batches += 1
            self._samples += int(x.shape[0])
            self._wall_time += elapsed
            self._counter_snapshots[worker.uid] = counters
            self._worker_requests[worker.uid] = self._worker_requests.get(worker.uid, 0) + 1
        return y

    # ------------------------------------------------------------------ #
    # Zero-downtime operations: hot plan-swap and elastic resize
    # ------------------------------------------------------------------ #
    def utilization(self) -> float:
        """Fraction of live workers busy right now (autoscaler signal)."""
        with self._stats_lock:
            live = self._live
        if live <= 0:
            return 0.0
        busy = live - self._free.qsize()
        return max(0.0, min(1.0, busy / live))

    def _probe(self, worker: _ProcWorker, x: np.ndarray) -> np.ndarray:
        """One forward on a specific held-out worker (canary traffic).

        Bypasses the free queue and the stats counters; a worker death
        here raises :class:`WorkerCrashError` after retiring it.
        """
        pid = worker.process.pid
        timeout = self.request_timeout if self.request_timeout else self._start_timeout
        try:
            worker.conn.send(("probe", np.asarray(x)))
            if not worker.conn.poll(timeout):
                raise _WorkerTimeout()
            tag, payload = worker.conn.recv()
        except (EOFError, BrokenPipeError, OSError, _WorkerTimeout) as exc:
            self._retire(worker)
            cause = None if isinstance(exc, _WorkerTimeout) else exc
            raise WorkerCrashError(
                f"process-pool worker pid {pid} died mid-canary"
            ) from cause
        if tag == "err":
            exc, tb = payload if isinstance(payload, tuple) else (payload, None)
            if tb is not None:
                exc.__cause__ = RemoteTraceback(tb)
            raise exc
        return payload

    def _swap_one(self, worker: _ProcWorker, spec: dict) -> None:
        """Swap one held-out worker onto ``spec``.

        Returns on an acknowledged swap.  Raises
        :class:`WorkerCrashError` (worker retired) when the worker died
        mid-swap, or :class:`PlanSwapError` (worker healthy, still on its
        previous plan — the caller owns returning it to the free queue)
        when the worker rejected the spec.
        """
        pid = worker.process.pid
        try:
            worker.conn.send(("swap", spec))
            if not worker.conn.poll(self._start_timeout):
                raise _WorkerTimeout()
            tag, payload = worker.conn.recv()
        except (EOFError, BrokenPipeError, OSError, _WorkerTimeout) as exc:
            self._retire(worker)
            cause = None if isinstance(exc, _WorkerTimeout) else exc
            raise WorkerCrashError(
                f"process-pool worker pid {pid} died mid-swap"
            ) from cause
        if tag == "err":
            exc, tb = payload if isinstance(payload, tuple) else (payload, None)
            err = PlanSwapError(
                f"process-pool worker pid {pid} failed to attach the new plan: {exc}"
            )
            if tb is not None:
                err.__cause__ = RemoteTraceback(tb)
            raise err

    def _checkout_for_swap(self, done: set[int]) -> _ProcWorker | None:
        """Check out one live worker whose uid is not in ``done``.

        Returns ``None`` once every live worker is in ``done`` (the roll
        is complete — workers retired mid-roll drop out of ``_procs`` and
        stop counting).  Already-handled workers drawn by accident go
        straight back to the free queue.
        """
        while True:
            if self._closing.is_set():
                raise PlanSwapError("pool is closing; plan swap abandoned")
            with self._stats_lock:
                pending = [u for u in self._procs if u not in done]
            if not pending:
                return None
            try:
                worker = self._free.get(timeout=0.5)
            except queue.Empty:
                continue  # pending workers are busy serving; wait them out
            with self._stats_lock:
                alive = self._worker_alive.get(worker.uid, False)
            if worker.uid in done or not alive:
                self._free.put(worker)
                # Cap the put/get spin while only handled workers are idle
                # and a pending one is mid-request.
                time.sleep(0.005)
                continue
            return worker

    def swap_plan(self, new_plan: ExecutionPlan, canary=None) -> int:
        """Roll every worker onto ``new_plan`` with zero downtime.

        The new plan is exported into a *second* shared segment; workers
        move over one at a time (the rest keep serving the old plan), so
        admission never pauses.  After the first worker holds the new
        plan, ``canary(run_fn)`` — when given — validates it with real
        forwards on that worker; the canary raising anything rolls every
        swapped worker back to the old plan, unlinks the new segment, and
        re-raises.  A worker *dying* mid-swap is a worker failure, not a
        plan failure: it is retired, the roll continues, and the
        supervisor respawns the replacement from whichever spec commits.
        The old segment is unlinked only after the last worker has
        detached from it.  Returns the number of workers swapped.
        """
        from .planio import share_plan

        self.install()
        with self._ops_lock:
            new_store, new_spec = share_plan(new_plan)
            old_spec, old_store = self._spec, self._store
            self._ops_pause.set()
            swapped: set[int] = set()
            try:
                canaried = canary is None
                while True:
                    worker = self._checkout_for_swap(swapped)
                    if worker is None:
                        break
                    try:
                        self._swap_one(worker, new_spec)
                    except WorkerCrashError:
                        if not canaried and not swapped:
                            # The would-be canary worker died before the
                            # plan was ever judged: reject rather than
                            # roll out an unvalidated plan.
                            raise PlanSwapError(
                                "worker died before the canary could "
                                "validate the new plan"
                            ) from None
                        continue
                    swapped.add(worker.uid)
                    if not canaried:
                        try:
                            canary(lambda x: self._probe(worker, x))
                        except WorkerCrashError:
                            swapped.discard(worker.uid)
                            raise PlanSwapError(
                                "canary worker died before validating "
                                "the new plan"
                            ) from None
                        except BaseException:
                            self._free.put(worker)
                            raise
                        canaried = True
                    self._free.put(worker)
            except BaseException:
                self._rollback_swapped(swapped, old_spec)
                if new_store is not None:
                    new_store.unlink()
                raise
            else:
                with self._state_lock:
                    self.plan = new_plan
                    self._spec = new_spec
                    self._store = new_store
                # The driver replica (if any) still serves the old plan's
                # clones; workers cleared their own shard slices in-swap.
                self._reset_shard_driver()
                if old_store is not None:
                    # Every worker detached inside its swap command; the
                    # old segment has no readers left.
                    old_store.unlink()
                return len(swapped)
            finally:
                self._ops_pause.clear()
                self._wake.set()  # let the supervisor top up any deficit

    def _rollback_swapped(self, swapped: set[int], old_spec: dict | None) -> None:
        """Best-effort return of already-swapped workers to the old plan.

        A worker that dies (or errors) rolling back is retired; the
        supervisor respawns it from the still-committed old spec.
        """
        remaining = set(swapped)
        while remaining and not self._closing.is_set():
            with self._stats_lock:
                remaining &= set(self._procs)
            if not remaining:
                return
            try:
                worker = self._free.get(timeout=0.5)
            except queue.Empty:
                continue
            if worker.uid not in remaining:
                self._free.put(worker)
                time.sleep(0.005)
                continue
            remaining.discard(worker.uid)
            try:
                self._swap_one(worker, old_spec)
            except WorkerCrashError:
                continue
            except PlanSwapError:
                # Could not restore the old plan either: retire it; a
                # respawn from the old spec replaces it.
                self._retire(worker)
                continue
            self._free.put(worker)

    def _retire_idle(self, worker: _ProcWorker) -> None:
        """Gracefully stop one idle worker (scale-down, not a death:
        ``deaths`` stays untouched and the breaker never sees it)."""
        with self._stats_lock:
            if not self._worker_alive.get(worker.uid, False):
                return
            self._worker_alive[worker.uid] = False
            self._live -= 1
            self._procs.pop(worker.uid, None)
        try:
            worker.conn.send(("stop", None))
            if worker.conn.poll(5.0):
                worker.conn.recv()  # the stop ack
        except (BrokenPipeError, EOFError, OSError):
            pass
        worker.conn.close()
        worker.process.join(timeout=10.0)
        if worker.process.is_alive():  # pragma: no cover - stuck worker
            worker.process.terminate()
            worker.process.join(timeout=5.0)

    def scale_to(self, n: int) -> int:
        """Resize the pool to ``n`` workers; returns the delta applied.

        Scale-ups start workers directly from the already-shared plan
        segment — *not* through the respawn path, so elastic growth never
        ages the crash-loop breaker's window.  Scale-downs retire idle
        workers gracefully, waiting for busy ones to finish their
        in-flight forward first.  On a pool that is not installed yet the
        target is recorded and applied by the next :meth:`install`.
        """
        if n <= 0:
            raise ValueError(f"workers must be positive, got {n}")
        with self._ops_lock:
            with self._state_lock:
                installed = self._installed
            if not installed:
                delta = n - self.workers
                self.workers = n
                return delta
            self._ops_pause.set()
            try:
                before = self.workers
                self.workers = n
                while not self._closing.is_set():
                    with self._stats_lock:
                        live = self._live
                    if live < n:
                        self._enroll(self._start_worker())
                    elif live > n:
                        try:
                            worker = self._free.get(timeout=0.5)
                        except queue.Empty:
                            continue  # busy workers come home eventually
                        self._retire_idle(worker)
                    else:
                        break
                return n - before
            finally:
                self._ops_pause.clear()
                self._wake.set()

    # ------------------------------------------------------------------ #
    def stats(self) -> ExecutorStats:
        """Counters merged across all worker processes plus forward timing.

        Each worker ships its cumulative per-layer counters with every
        ``run`` reply, so merging here needs no cross-process round-trip;
        like the thread pool, ``wall_time`` sums per-forward time across
        workers (compute volume, not elapsed wall-clock).
        """
        with self._stats_lock:
            batches, samples, wall = self._batches, self._samples, self._wall_time
            snapshots = list(self._counter_snapshots.values())
        with self._driver_lock:
            # Sharded forwards run on the parent-side driver replica; its
            # clones count like one more worker's snapshot.
            snapshots.extend(
                {name: lp.counters for name, lp in plans.items()}
                for plans in self._shard_driver_plans
            )
        layers: dict[str, LayerCounters] = {}
        for name in self.plan.layers:
            merged = LayerCounters()
            for snap in snapshots:
                if name in snap:
                    merged = merged.merged_with(snap[name])
            layers[name] = merged
        return ExecutorStats(
            batches=batches,
            samples=samples,
            wall_time=wall,
            layers=layers,
            cache=dataclasses.replace(self.plan.cache.counters),
        )

    def worker_stats(self) -> list[WorkerStat]:
        """Liveness + served counts per worker process, retired ones included.

        A worker that died mid-request (or was closed with its generation)
        stays listed with ``alive=False`` — the signal the ``/healthz``
        endpoint and the per-worker gauges alert on.
        """
        with self._stats_lock:
            return [
                WorkerStat(
                    uid=uid,
                    alive=self._worker_alive.get(uid, False),
                    requests=self._worker_requests.get(uid, 0),
                )
                for uid in sorted(self._worker_alive)
            ]

    def reset_stats(self) -> None:
        """Zero parent-side totals and every live worker's counters."""
        # Under the state lock: a reset draining the free queue concurrently
        # with a close() (which also collects every live worker) would leave
        # each holding workers the other waits for, forever.
        with self._state_lock:
            collected: list[_ProcWorker] = []
            if self._installed:
                # Check every live worker out so no forward is mid-flight
                # while its counters reset (the same quiesce close()
                # performs).
                while True:
                    with self._stats_lock:
                        live = self._live
                    if len(collected) >= live:
                        break
                    try:
                        collected.append(self._free.get(timeout=0.05))
                    except queue.Empty:
                        continue
            try:
                for worker in collected:
                    worker.conn.send(("reset", None))
                for worker in collected:
                    worker.conn.recv()
            finally:
                for worker in collected:
                    self._free.put(worker)
        with self._stats_lock:
            self._batches = self._samples = 0
            self._wall_time = 0.0
            self._counter_snapshots.clear()
            self._worker_requests = {uid: 0 for uid in self._worker_requests}
        with self._driver_lock:
            for plans in self._shard_driver_plans:
                for lp in plans.values():
                    lp.counters.reset()
        self.plan.cache.counters.reset()


# ---------------------------------------------------------------------- #
POOL_KINDS = ("thread", "process")


def make_pool(
    kind: str,
    model: Module,
    plan: ExecutionPlan,
    workers: int = 2,
    **kwargs,
) -> WorkerPool:
    """Build a worker pool by kind (the CLI's ``--pool`` seam).

    ``"thread"`` → :class:`ThreadWorkerPool`, ``"process"`` →
    :class:`ProcessWorkerPool`; extra keyword arguments pass through to
    the pool constructor (e.g. ``mp_context=`` for the process pool).
    """
    if kind == "thread":
        return ThreadWorkerPool(model, plan, workers=workers, **kwargs)
    if kind == "process":
        return ProcessWorkerPool(model, plan, workers=workers, **kwargs)
    raise ValueError(f"unknown pool kind {kind!r}; options: {POOL_KINDS}")
