"""Worker pools: the pluggable execution substrate behind the serving engine.

The serving engine used to be hardwired to *thread* replicas
(:class:`~repro.runtime.replica.ReplicaExecutor`): each worker thread ran
forwards on its own model replica, but every non-BLAS part of a forward
still serialised on the GIL.  This module extracts the seam —
:class:`WorkerPool`, the install/run/stats contract the engine actually
drives — and provides two substrates behind it:

- :class:`ThreadWorkerPool` — one model replica per worker thread.
  Weights and the compiled plan are shared by reference; only the GIL
  bounds scaling.  This is exactly the old ``ReplicaExecutor`` behaviour.
- :class:`ProcessWorkerPool` — one worker *process* per worker.  The
  parent exports the compiled plan once through
  :func:`~repro.runtime.planio.share_plan` (operand arrays in a
  shared-memory segment); each child attaches zero-copy, installs the
  plan on its own unpickled model, and serves forwards with no GIL in
  common.  This is the scaling unlock past thread replicas: decomposition
  and compression cost is paid once (SparseRT's AOT specialisation), the
  compressed operands are held once (S2TA keeps them resident across
  PEs), and N cores run N forwards.

:class:`~repro.runtime.executor.PlanExecutor` satisfies the same contract
(a single lock-serialised worker) and is registered as a virtual subclass,
so everything the engine accepts is a :class:`WorkerPool` — pick with
:func:`make_pool` (CLI: ``serve --pool {thread,process} --workers N``).

Both pools merge per-worker layer counters into one :meth:`stats` view and
produce **bit-identical** outputs: thread replicas alias the same arrays,
and process workers run the same kernels over byte-equal shared operands.
"""

from __future__ import annotations

import abc
import copy
import dataclasses
import itertools
import multiprocessing
import pickle
import queue
import threading
import time

import numpy as np

from repro.nn.module import Module

from .counters import ExecutorStats, LayerCounters, WorkerStat
from .executor import PlanExecutor
from .plan import ExecutionPlan, LayerPlan

__all__ = [
    "POOL_KINDS",
    "WorkerPool",
    "ThreadWorkerPool",
    "ProcessWorkerPool",
    "make_pool",
]


class WorkerPool(abc.ABC):
    """The execution seam between the serving engine and the substrate.

    The contract the engine drives (and every pool honours):

    - :meth:`install` / :meth:`close` — bring workers up / tear them down;
      both idempotent, ``close`` waits for in-flight forwards and keeps
      accumulated counters readable;
    - :meth:`run` — one forward on whichever worker frees first, safe to
      call from many threads concurrently (lazily installs, including
      after a ``close``);
    - :meth:`stats` / :meth:`reset_stats` — per-layer counters merged
      across workers, plus whole-forward batch/sample/wall totals.

    Implementations must keep :meth:`run` lock-free across the forward
    itself so up to ``workers`` forwards proceed concurrently.
    """

    model: Module
    plan: ExecutionPlan
    workers: int

    @abc.abstractmethod
    def install(self) -> "WorkerPool":
        """Bring the worker pool up (idempotent)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Tear the pool down, waiting for in-flight forwards (idempotent)."""

    @abc.abstractmethod
    def run(self, x: np.ndarray) -> np.ndarray:
        """One timed forward on whichever worker is free first."""

    def run_many(self, batches) -> list[np.ndarray]:
        """Run a sequence of batches, returning their outputs in order."""
        return [self.run(x) for x in batches]

    @abc.abstractmethod
    def stats(self) -> ExecutorStats:
        """Counters merged across all workers plus whole-forward timing."""

    @abc.abstractmethod
    def reset_stats(self) -> None:
        """Zero every counter this pool reports."""

    def worker_stats(self) -> list[WorkerStat]:
        """Per-worker liveness + served-forward counts (telemetry gauges).

        Retired workers (previous generations, mid-request deaths) stay
        listed with ``alive=False`` so a scrape can alert on them; the
        default is an empty list for substrates with no worker identity.
        """
        return []

    def __enter__(self) -> "WorkerPool":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.close()


# A PlanExecutor is the degenerate one-worker pool (its internal lock
# serialises forwards); registering it keeps `isinstance(x, WorkerPool)`
# true for everything the serving engine accepts.
WorkerPool.register(PlanExecutor)


# ---------------------------------------------------------------------- #
# Thread pool: one model replica per worker thread
# ---------------------------------------------------------------------- #
class ThreadWorkerPool(WorkerPool):
    """Execute batches against one compiled plan across N model replicas.

    The single-model :class:`PlanExecutor` must hold a lock across every
    forward — layers cache forward state on ``self``, so one model
    instance cannot run concurrent batches — which serialises all of the
    serving engine's workers.  This pool removes the lock by giving each
    worker its own *replica* of the model while sharing everything
    immutable:

    - parameter storage is aliased back to the source model (replicas add
      per-layer Python objects and forward caches, not weight copies);
    - the compiled :class:`ExecutionPlan` is shared — every replica serves
      from the same :class:`CompiledOperand` terms, gather tables,
      prepared backend state, and operand cache;
    - only the per-layer perf counters are private per replica (cloned via
      :meth:`ExecutionPlan.clone_layer_plans`), so the hot path never
      races; :meth:`stats` merges them back into one view.

    Replicas are checked out of a pool for the duration of one forward, so
    up to ``workers`` batches execute concurrently with no shared mutable
    state between them.  Throughput then scales with workers as far as the
    machine's cores *and the GIL* allow — NumPy releases it inside BLAS,
    but every Python-level part of a forward still serialises.  For
    scaling past that, use :class:`ProcessWorkerPool`.

    The source ``model`` itself is never touched: replicas are built from
    it (weights aliased, not copied) and the plan is installed on the
    replicas only, so the caller's model keeps its uncompiled forward.
    """

    def __init__(self, model: Module, plan: ExecutionPlan, workers: int = 2) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.model = model
        self.plan = plan
        self.workers = workers
        self._pool: "queue.Queue[Module]" = queue.Queue()
        self._replica_plans: list[dict[str, LayerPlan]] = []
        self._installed = False
        self._state_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._batches = 0
        self._samples = 0
        self._wall_time = 0.0
        # Worker identity for telemetry: uid per replica, unique across
        # generations; request counts survive close() like the counters do.
        self._uids = itertools.count()
        self._replica_uid: dict[int, int] = {}  # id(replica) -> uid
        self._worker_requests: dict[int, int] = {}
        self._current_uids: set[int] = set()

    # ------------------------------------------------------------------ #
    def _build_replica(self) -> tuple[Module, dict[str, LayerPlan]]:
        # Weights (and eval-time buffers like running BatchNorm statistics)
        # are immutable at inference: seeding the deepcopy memo with their
        # arrays makes every replica alias the source model's tensors, so a
        # replica costs layer objects and forward caches — never weights.
        memo: dict[int, object] = {}
        for p in self.model.parameters():
            memo[id(p.data)] = p.data
            # Replicas are inference-only, so sharing gradient storage is
            # safe and avoids duplicating weight-sized buffers per replica.
            memo[id(p.grad)] = p.grad
        for _, buf in self.model.named_buffers():
            memo[id(buf)] = buf
        replica = copy.deepcopy(self.model, memo)
        layer_plans = self.plan.clone_layer_plans()
        self.plan.install(replica, layer_plans)
        replica.eval()
        return replica, layer_plans

    def install(self) -> "ThreadWorkerPool":
        with self._state_lock:
            if not self._installed:
                for _ in range(self.workers):
                    replica, layer_plans = self._build_replica()
                    uid = next(self._uids)
                    with self._stats_lock:
                        self._replica_uid[id(replica)] = uid
                        self._worker_requests.setdefault(uid, 0)
                        self._current_uids.add(uid)
                    self._pool.put(replica)
                    self._replica_plans.append(layer_plans)
                self._installed = True
        return self

    def close(self) -> None:
        """Discard the replica pool (the source model was never modified).

        Waits for in-flight forwards, then drops the replicas.  Their
        layer-plan clones are kept so :meth:`stats` keeps reporting the
        accumulated counters after close — the same post-close behaviour
        as :class:`PlanExecutor`.  A later :meth:`run`/:meth:`install`
        builds a fresh replica generation whose counters merge on top.
        """
        with self._state_lock:
            if not self._installed:
                return
            # Wait for in-flight forwards: every replica must be back home.
            for _ in range(self.workers):
                replica = self._pool.get()
                with self._stats_lock:
                    # Drop the id mapping: the replica is about to be GC'd
                    # and a later generation's replica could reuse its id().
                    self._replica_uid.pop(id(replica), None)
            with self._stats_lock:
                self._current_uids.clear()
            self._installed = False

    # ------------------------------------------------------------------ #
    def run(self, x: np.ndarray) -> np.ndarray:
        """One timed forward on whichever replica is free first.

        Blocks until a replica is available; no lock is held while the
        forward runs, so up to ``workers`` calls proceed concurrently.
        """
        x = np.asarray(x)
        # install() then checkout, retrying on a timeout: a close() racing
        # this call can drain the pool after our install() check, and a
        # plain blocking get() would then hang forever.  On retry the
        # install() is what refills the pool (lazy reinstall-after-close).
        while True:
            self.install()
            try:
                replica = self._pool.get(timeout=0.05)
                break
            except queue.Empty:
                continue
        try:
            t0 = time.perf_counter()
            y = replica(x)
            elapsed = time.perf_counter() - t0
        finally:
            uid = self._replica_uid.get(id(replica))
            self._pool.put(replica)
        with self._stats_lock:
            self._batches += 1
            self._samples += int(x.shape[0])
            self._wall_time += elapsed
            if uid is not None:
                self._worker_requests[uid] = self._worker_requests.get(uid, 0) + 1
        return y

    # ------------------------------------------------------------------ #
    def stats(self) -> ExecutorStats:
        """Counters merged across all replicas plus whole-forward timing.

        ``wall_time`` sums per-forward time across replicas, so with
        concurrent workers it can exceed elapsed wall-clock — it measures
        compute volume, like CPU time.  The snapshot is taken without
        stopping in-flight forwards; concurrently-running batches may be
        partially reflected.
        """
        with self._stats_lock:
            batches, samples, wall = self._batches, self._samples, self._wall_time
        with self._state_lock:
            replica_plans = list(self._replica_plans)
        layers: dict[str, LayerCounters] = {}
        for name in self.plan.layers:
            merged = LayerCounters()
            for layer_plans in replica_plans:
                merged = merged.merged_with(layer_plans[name].counters)
            layers[name] = merged
        return ExecutorStats(
            batches=batches,
            samples=samples,
            wall_time=wall,
            layers=layers,
            cache=dataclasses.replace(self.plan.cache.counters),
        )

    def worker_stats(self) -> list[WorkerStat]:
        with self._stats_lock:
            current, installed = set(self._current_uids), self._installed
            return [
                WorkerStat(uid=uid, alive=installed and uid in current, requests=n)
                for uid, n in sorted(self._worker_requests.items())
            ]

    def reset_stats(self) -> None:
        with self._stats_lock:
            self._batches = self._samples = 0
            self._wall_time = 0.0
            self._worker_requests = {uid: 0 for uid in self._worker_requests}
        with self._state_lock:
            replica_plans = list(self._replica_plans)
        for layer_plans in replica_plans:
            for plan in layer_plans.values():
                plan.counters.reset()
        self.plan.cache.counters.reset()


# ---------------------------------------------------------------------- #
# Process pool: one worker process per worker, shared-memory operands
# ---------------------------------------------------------------------- #
def _pool_worker_main(conn, model_payload: bytes, spec: dict) -> None:
    """Entry point of one pool worker process.

    Rebuilds the model from its pickle, attaches the shared plan spec
    (zero-copy operand views into the parent's segment), installs the
    plan, and serves ``("run", batch)`` requests over the pipe until told
    to stop.  Every ``run`` reply carries the worker's cumulative
    per-layer counters so the parent can merge :meth:`stats` without an
    extra round-trip.
    """
    from .cache import OperandCache
    from .planio import attach_plan

    store = None
    try:
        model = pickle.loads(model_payload)
        plan, store = attach_plan(spec, cache=OperandCache())
        plan.install(model)
        model.eval()
    except Exception as exc:  # surface install failures to the parent
        try:
            conn.send(("fail", f"{type(exc).__name__}: {exc}"))
        finally:
            if store is not None:
                store.close()
            conn.close()
        return
    try:
        conn.send(("ready", None))
        while True:
            try:
                cmd, payload = conn.recv()
            except EOFError:  # parent vanished: exit quietly
                break
            if cmd == "run":
                try:
                    t0 = time.perf_counter()
                    y = model(payload)
                    elapsed = time.perf_counter() - t0
                    counters = {
                        name: lp.counters.snapshot() for name, lp in plan.layers.items()
                    }
                    conn.send(("ok", (y, elapsed, counters)))
                except Exception as exc:
                    try:
                        conn.send(("err", exc))
                    except Exception:  # unpicklable exception object
                        conn.send(("err", RuntimeError(f"{type(exc).__name__}: {exc}")))
            elif cmd == "reset":
                plan.reset_counters()
                conn.send(("ok", None))
            elif cmd == "stop":
                conn.send(("ok", None))
                break
    finally:
        # The plan's arrays are views into the segment: drop them before
        # detaching, or the munmap would pull the buffer out from under
        # live ndarray objects.
        plan.uninstall(model)
        del plan
        if store is not None:
            store.close()
        conn.close()


@dataclasses.dataclass
class _ProcWorker:
    uid: int  # unique across pool generations (stats keys)
    process: object  # multiprocessing.Process (context-specific class)
    conn: object  # parent end of the pipe


class ProcessWorkerPool(WorkerPool):
    """Execute batches across N worker *processes* sharing one compiled plan.

    The parent pays plan compilation once, exports it once
    (:func:`~repro.runtime.planio.share_plan` packs every operand array
    into one shared-memory segment), and pickles the model once.  Each
    worker process attaches the segment zero-copy — N workers hold one
    copy of the compressed operands — and runs forwards with no GIL in
    common, so throughput scales with cores even for the Python-level
    parts of a forward that thread replicas serialise.

    Outputs are bit-identical to the thread pool (and to
    :class:`PlanExecutor`): workers run the same kernels over byte-equal
    operand storage, and request arrays round-trip the pipe losslessly.

    ``mp_context`` picks the start method: the default prefers ``fork``
    (fast start, shares the parent's page cache) where available and falls
    back to ``spawn``.  Choose ``spawn`` explicitly when forking a
    multi-threaded parent is a concern — workers rebuild everything from
    the pickled model + shared spec either way, so behaviour is identical.
    """

    def __init__(
        self,
        model: Module,
        plan: ExecutionPlan,
        workers: int = 2,
        mp_context: str | None = None,
        start_timeout: float = 120.0,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        methods = multiprocessing.get_all_start_methods()
        if mp_context is None:
            mp_context = "fork" if "fork" in methods else "spawn"
        if mp_context not in methods:
            raise ValueError(
                f"start method {mp_context!r} unavailable on this platform; "
                f"options: {methods}"
            )
        self.model = model
        self.plan = plan
        self.workers = workers
        self.mp_context = mp_context
        self._ctx = multiprocessing.get_context(mp_context)
        self._start_timeout = start_timeout
        self._free: "queue.Queue[_ProcWorker]" = queue.Queue()
        self._store = None
        self._installed = False
        self._state_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._live = 0  # workers that will eventually return to the free queue
        self._uids = itertools.count()
        self._batches = 0
        self._samples = 0
        self._wall_time = 0.0
        # Latest cumulative per-layer counters per worker uid.  Kept across
        # close() so stats survive it (old generations merge with new ones,
        # exactly like the thread pool's retained replica plans).
        self._counter_snapshots: dict[int, dict[str, LayerCounters]] = {}
        # Telemetry: liveness + served-forward count per worker uid.  Kept
        # across close() too, so a scrape can still see retired workers.
        self._worker_alive: dict[int, bool] = {}
        self._worker_requests: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def install(self) -> "ProcessWorkerPool":
        with self._state_lock:
            if self._installed:
                return self
            from .planio import share_plan

            store, spec = share_plan(self.plan)
            payload = pickle.dumps(self.model, protocol=pickle.HIGHEST_PROTOCOL)
            started: list[_ProcWorker] = []
            try:
                for _ in range(self.workers):
                    parent_conn, child_conn = self._ctx.Pipe()
                    proc = self._ctx.Process(
                        target=_pool_worker_main,
                        args=(child_conn, payload, spec),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()  # child's end lives in the child only
                    started.append(_ProcWorker(next(self._uids), proc, parent_conn))
                for worker in started:  # handshake: fail fast, with the cause
                    if not worker.conn.poll(self._start_timeout):
                        raise RuntimeError(
                            f"pool worker pid {worker.process.pid} did not report "
                            f"ready within {self._start_timeout}s"
                        )
                    tag, detail = worker.conn.recv()
                    if tag != "ready":
                        raise RuntimeError(f"pool worker failed to start: {detail}")
            except Exception:
                for worker in started:
                    if worker.process.is_alive():
                        worker.process.terminate()
                    worker.process.join(timeout=5.0)
                    worker.conn.close()
                if store is not None:
                    store.unlink()
                raise
            self._store = store
            for worker in started:
                self._free.put(worker)
            with self._stats_lock:
                self._live = len(started)
                for worker in started:
                    self._worker_alive[worker.uid] = True
                    self._worker_requests.setdefault(worker.uid, 0)
            self._installed = True
        return self

    def close(self) -> None:
        """Stop every worker process and destroy the shared segment.

        Waits for in-flight forwards (workers come home before stopping),
        keeps accumulated counters readable afterwards, and a later
        :meth:`run`/:meth:`install` brings up a fresh worker generation
        whose counters merge on top — the same post-close contract as the
        thread pool.
        """
        with self._state_lock:
            if not self._installed:
                return
            collected: list[_ProcWorker] = []
            while True:
                with self._stats_lock:
                    live = self._live
                if len(collected) >= live:
                    break
                try:
                    collected.append(self._free.get(timeout=0.05))
                except queue.Empty:
                    continue  # an in-flight run() will return its worker
            for worker in collected:
                try:
                    worker.conn.send(("stop", None))
                except (BrokenPipeError, OSError):  # already dead
                    pass
            for worker in collected:
                try:
                    if worker.conn.poll(5.0):
                        worker.conn.recv()  # the stop ack
                except (EOFError, OSError):
                    pass
                worker.conn.close()
            for worker in collected:
                worker.process.join(timeout=10.0)
                if worker.process.is_alive():  # pragma: no cover - stuck worker
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
            if self._store is not None:
                self._store.unlink()
                self._store = None
            with self._stats_lock:
                self._live = 0
                for worker in collected:
                    self._worker_alive[worker.uid] = False
            self._installed = False

    # ------------------------------------------------------------------ #
    def run(self, x: np.ndarray) -> np.ndarray:
        """One timed forward on whichever worker process frees first."""
        x = np.asarray(x)
        while True:
            self.install()
            with self._stats_lock:
                live = self._live
            if live == 0 and self._installed:
                # Every worker died mid-generation; reinstalling on top of
                # a broken generation would mask the failure.
                raise RuntimeError(
                    "all process-pool workers have died; close() and re-run"
                )
            try:
                worker = self._free.get(timeout=0.05)
                break
            except queue.Empty:
                continue
        healthy = False
        try:
            worker.conn.send(("run", x))
            tag, payload = worker.conn.recv()
            healthy = True
        except (EOFError, BrokenPipeError, OSError) as exc:
            with self._stats_lock:
                self._live -= 1  # retired: never returns to the free queue
                self._worker_alive[worker.uid] = False
            worker.conn.close()
            if worker.process.is_alive():  # pragma: no cover - pipe-only failure
                worker.process.terminate()
            # Reap it: a retired worker never reaches close()'s join, and a
            # long-lived server accumulating zombies exhausts the process
            # table.
            worker.process.join(timeout=5.0)
            raise RuntimeError(
                f"process-pool worker pid {worker.process.pid} died mid-request"
            ) from exc
        finally:
            if healthy:
                self._free.put(worker)
        if tag == "err":
            raise payload
        y, elapsed, counters = payload
        with self._stats_lock:
            self._batches += 1
            self._samples += int(x.shape[0])
            self._wall_time += elapsed
            self._counter_snapshots[worker.uid] = counters
            self._worker_requests[worker.uid] = self._worker_requests.get(worker.uid, 0) + 1
        return y

    # ------------------------------------------------------------------ #
    def stats(self) -> ExecutorStats:
        """Counters merged across all worker processes plus forward timing.

        Each worker ships its cumulative per-layer counters with every
        ``run`` reply, so merging here needs no cross-process round-trip;
        like the thread pool, ``wall_time`` sums per-forward time across
        workers (compute volume, not elapsed wall-clock).
        """
        with self._stats_lock:
            batches, samples, wall = self._batches, self._samples, self._wall_time
            snapshots = list(self._counter_snapshots.values())
        layers: dict[str, LayerCounters] = {}
        for name in self.plan.layers:
            merged = LayerCounters()
            for snap in snapshots:
                if name in snap:
                    merged = merged.merged_with(snap[name])
            layers[name] = merged
        return ExecutorStats(
            batches=batches,
            samples=samples,
            wall_time=wall,
            layers=layers,
            cache=dataclasses.replace(self.plan.cache.counters),
        )

    def worker_stats(self) -> list[WorkerStat]:
        """Liveness + served counts per worker process, retired ones included.

        A worker that died mid-request (or was closed with its generation)
        stays listed with ``alive=False`` — the signal the ``/healthz``
        endpoint and the per-worker gauges alert on.
        """
        with self._stats_lock:
            return [
                WorkerStat(
                    uid=uid,
                    alive=self._worker_alive.get(uid, False),
                    requests=self._worker_requests.get(uid, 0),
                )
                for uid in sorted(self._worker_alive)
            ]

    def reset_stats(self) -> None:
        """Zero parent-side totals and every live worker's counters."""
        # Under the state lock: a reset draining the free queue concurrently
        # with a close() (which also collects every live worker) would leave
        # each holding workers the other waits for, forever.
        with self._state_lock:
            collected: list[_ProcWorker] = []
            if self._installed:
                # Check every live worker out so no forward is mid-flight
                # while its counters reset (the same quiesce close()
                # performs).
                while True:
                    with self._stats_lock:
                        live = self._live
                    if len(collected) >= live:
                        break
                    try:
                        collected.append(self._free.get(timeout=0.05))
                    except queue.Empty:
                        continue
            try:
                for worker in collected:
                    worker.conn.send(("reset", None))
                for worker in collected:
                    worker.conn.recv()
            finally:
                for worker in collected:
                    self._free.put(worker)
        with self._stats_lock:
            self._batches = self._samples = 0
            self._wall_time = 0.0
            self._counter_snapshots.clear()
            self._worker_requests = {uid: 0 for uid in self._worker_requests}
        self.plan.cache.counters.reset()


# ---------------------------------------------------------------------- #
POOL_KINDS = ("thread", "process")


def make_pool(
    kind: str,
    model: Module,
    plan: ExecutionPlan,
    workers: int = 2,
    **kwargs,
) -> WorkerPool:
    """Build a worker pool by kind (the CLI's ``--pool`` seam).

    ``"thread"`` → :class:`ThreadWorkerPool`, ``"process"`` →
    :class:`ProcessWorkerPool`; extra keyword arguments pass through to
    the pool constructor (e.g. ``mp_context=`` for the process pool).
    """
    if kind == "thread":
        return ThreadWorkerPool(model, plan, workers=workers, **kwargs)
    if kind == "process":
        return ProcessWorkerPool(model, plan, workers=workers, **kwargs)
    raise ValueError(f"unknown pool kind {kind!r}; options: {POOL_KINDS}")
