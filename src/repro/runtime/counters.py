"""Perf/telemetry structs shared across the inference runtime.

Counters are plain mutable dataclasses: the executor and cache update them
in place on the hot path (no allocation), and reporting code snapshots them
into tables.  MAC counts follow the compute model of Section 3.2 — each
TASD term runs ``n/m`` of the dense MACs — so ``structured_macs /
dense_macs`` reproduces the compute fraction TASDER optimises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.annotations import cross_process

from .metrics import Histogram

__all__ = [
    "CacheCounters",
    "LayerCounters",
    "ExecutorStats",
    "RequestStats",
    "ServeReport",
    "WorkerStat",
]


@dataclass
class CacheCounters:
    """Hit/miss/eviction accounting for the operand cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def __str__(self) -> str:
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate), {self.evictions} evictions"
        )


@cross_process
@dataclass
class LayerCounters:
    """Per-layer execution counters accumulated by a :class:`LayerPlan`.

    Shipped across the process-pool pipe with every ``run`` reply, so every
    field must stay transitively picklable (the ``cross-process`` lint rule
    enforces it; :class:`Histogram` participates via its state dunders).
    """

    calls: int = 0
    structured_macs: int = 0  # MACs actually executed (compressed slots)
    dense_macs: int = 0  # MACs a dense GEMM of the same shape would run
    wall_time: float = 0.0  # seconds spent inside the layer's GEMM
    # Observed GEMM column widths (batch rows of the 2-D input block, i.e.
    # the im2col width x batch the layer actually served), width -> count.
    # This is the shape the autotuner's ``sample_cols`` stands in for, so a
    # recorded serving run can re-tune on real shapes instead of a guess.
    col_widths: dict[int, int] = field(default_factory=dict)
    # Per-call GEMM latency over the runtime's fixed log-spaced buckets.
    # Fixed bounds make the merge across workers (threads or processes)
    # exact, so the /metrics per-layer histograms reflect every worker;
    # the process pool ships this with its cumulative reply counters.
    gemm_seconds: Histogram = field(default_factory=Histogram)

    @property
    def mac_fraction(self) -> float:
        """Executed MACs relative to dense (Section 3.2's cost model)."""
        return self.structured_macs / self.dense_macs if self.dense_macs else 1.0

    def record(self, structured: int, dense: int, seconds: float, cols: int | None = None) -> None:
        self.calls += 1
        self.structured_macs += structured
        self.dense_macs += dense
        self.wall_time += seconds
        self.gemm_seconds.observe(seconds)
        if cols is not None:
            self.col_widths[cols] = self.col_widths.get(cols, 0) + 1

    def observed_cols(self) -> int | None:
        """The most frequently served GEMM column width (ties -> widest).

        ``None`` when the layer has recorded no widths yet.  Ties resolve
        toward the *wider* shape: tuning for the larger GEMM is the safer
        bet (the winner at a wide shape rarely loses badly at a narrow one,
        while the reverse is common).
        """
        if not self.col_widths:
            return None
        return max(self.col_widths, key=lambda w: (self.col_widths[w], w))

    def merged_with(self, other: "LayerCounters") -> "LayerCounters":
        widths = dict(self.col_widths)
        for w, n in other.col_widths.items():
            widths[w] = widths.get(w, 0) + n
        return LayerCounters(
            calls=self.calls + other.calls,
            structured_macs=self.structured_macs + other.structured_macs,
            dense_macs=self.dense_macs + other.dense_macs,
            wall_time=self.wall_time + other.wall_time,
            col_widths=widths,
            gemm_seconds=self.gemm_seconds.merged_with(other.gemm_seconds),
        )

    def snapshot(self) -> "LayerCounters":
        """An independent copy — safe to hand out while recording continues.

        ``dataclasses.replace`` would alias the mutable ``col_widths`` dict
        into the copy; this copies it, so snapshots never see later updates.
        """
        return LayerCounters(
            calls=self.calls,
            structured_macs=self.structured_macs,
            dense_macs=self.dense_macs,
            wall_time=self.wall_time,
            col_widths=dict(self.col_widths),
            gemm_seconds=self.gemm_seconds.snapshot(),
        )

    def reset(self) -> None:
        self.calls = self.structured_macs = self.dense_macs = 0
        self.wall_time = 0.0
        self.col_widths.clear()
        self.gemm_seconds.reset()


@dataclass
class ExecutorStats:
    """Aggregate view of an executor's work since the last reset."""

    batches: int = 0
    samples: int = 0
    wall_time: float = 0.0
    layers: dict[str, LayerCounters] = field(default_factory=dict)
    cache: CacheCounters = field(default_factory=CacheCounters)

    @property
    def total(self) -> LayerCounters:
        out = LayerCounters()
        for counters in self.layers.values():
            out = out.merged_with(counters)
        return out

    @property
    def throughput(self) -> float:
        """Samples per second over the executor's measured forwards."""
        return self.samples / self.wall_time if self.wall_time else 0.0

    def observed_cols(self) -> dict[str, int]:
        """Per-layer dominant GEMM column width observed by this run.

        The shape profile a serving run actually exercised — feed it to
        ``compile_plan(autotune=True, observed_cols=...)`` or
        :func:`repro.runtime.autotune.retune_plan` to tune each layer on
        its real serving shape instead of a representative guess.  Layers
        that recorded no widths (never called, dense-only runs) are
        omitted.
        """
        out: dict[str, int] = {}
        for name, counters in self.layers.items():
            width = counters.observed_cols()
            if width is not None:
                out[name] = width
        return out

    def table(self) -> str:
        """Per-layer counter table plus totals, for CLI / example output."""
        header = f"{'layer':<28s} {'calls':>6s} {'MACs':>12s} {'dense':>12s} {'frac':>6s} {'ms':>8s}"
        lines = [header, "-" * len(header)]
        for name, c in self.layers.items():
            lines.append(
                f"{name:<28s} {c.calls:>6d} {c.structured_macs:>12d} "
                f"{c.dense_macs:>12d} {c.mac_fraction:>6.3f} {c.wall_time * 1e3:>8.2f}"
            )
        t = self.total
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<28s} {t.calls:>6d} {t.structured_macs:>12d} "
            f"{t.dense_macs:>12d} {t.mac_fraction:>6.3f} {t.wall_time * 1e3:>8.2f}"
        )
        lines.append(
            f"{self.batches} batches / {self.samples} samples, "
            f"{self.wall_time * 1e3:.2f} ms total ({self.throughput:.1f} samples/s); {self.cache}"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class RequestStats:
    """Timing of one served request, recorded by the serving engine."""

    request_id: int
    batch_size: int  # size of the micro-batch this request rode in
    samples: int  # samples this request itself contributed
    queue_time: float  # seconds from submit to batch dispatch
    compute_time: float  # seconds of model execution for the micro-batch
    latency: float  # seconds from submit to result
    attempts: int = 1  # dispatch attempts; > 1 means crash-recovery retries

    def __str__(self) -> str:
        return (
            f"request {self.request_id}: latency {self.latency * 1e3:.2f} ms "
            f"(queued {self.queue_time * 1e3:.2f} ms, compute "
            f"{self.compute_time * 1e3:.2f} ms, batch {self.batch_size})"
        )


@dataclass(frozen=True)
class WorkerStat:
    """Liveness + served-request count of one pool worker (gauge fodder)."""

    uid: int
    alive: bool
    requests: int


@dataclass
class ServeReport:
    """Aggregate latency/throughput report over a batch of served requests.

    Every derived quantity is well-defined on an *empty* report (a server
    that started and stopped without traffic): means, percentiles, and
    throughput all report 0.0 — never a division by the served count, so
    never NaN/inf in a ``summary()``.
    """

    requests: list[RequestStats] = field(default_factory=list)
    wall_time: float = 0.0
    # End-to-end latency histogram over the runtime's fixed log-spaced
    # buckets.  When the serving engine's metrics are on this is a snapshot
    # of its live histogram (bucket-exact with what /metrics exports);
    # otherwise it is built lazily from the recorded requests.
    histogram: Histogram | None = None

    @property
    def count(self) -> int:
        return len(self.requests)

    @property
    def samples(self) -> int:
        return sum(r.samples for r in self.requests)

    @property
    def mean_latency(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.latency for r in self.requests) / len(self.requests)

    @property
    def mean_batch_size(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.batch_size for r in self.requests) / len(self.requests)

    def latency_percentile(self, q: float) -> float:
        """Latency at percentile ``q`` (0..100) by nearest-rank."""
        if not self.requests:
            return 0.0
        ordered = sorted(r.latency for r in self.requests)
        rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def latency_histogram(self) -> Histogram:
        """The latency histogram behind :attr:`p50`/:attr:`p95`/:attr:`p99`.

        The engine-provided one when present (bucket-exact with the
        ``/metrics`` export, merged across all serving workers), else built
        from the recorded per-request latencies over the same buckets.
        """
        if self.histogram is not None:
            return self.histogram
        h = Histogram()
        for r in self.requests:
            h.observe(r.latency)
        return h

    @property
    def p50(self) -> float:
        return self.latency_histogram().percentile(50)

    @property
    def p95(self) -> float:
        return self.latency_histogram().percentile(95)

    @property
    def p99(self) -> float:
        return self.latency_histogram().percentile(99)

    @property
    def throughput(self) -> float:
        """Requests per second over the serving window."""
        return self.count / self.wall_time if self.wall_time else 0.0

    def summary(self) -> str:
        return (
            f"{self.count} requests ({self.samples} samples) in "
            f"{self.wall_time * 1e3:.1f} ms — {self.throughput:.1f} req/s, "
            f"latency mean {self.mean_latency * 1e3:.2f} ms / "
            f"p50 {self.p50 * 1e3:.2f} ms / "
            f"p95 {self.p95 * 1e3:.2f} ms / "
            f"p99 {self.p99 * 1e3:.2f} ms, "
            f"mean micro-batch {self.mean_batch_size:.1f}"
        )
