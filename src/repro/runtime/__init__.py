"""Inference runtime: compiled execution plans, operand cache, serving.

Turns the functional TASD kernels into a serving system: a
:func:`compile_plan` pass decomposes and compresses static weights exactly
once, a content-addressed :class:`OperandCache` shares compiled operands,
a :class:`PlanExecutor` runs batches against the plan with perf counters,
and a :class:`ServingEngine` micro-batches concurrent requests on top.

Quickstart::

    from repro.runtime import OperandCache, PlanExecutor, ServingEngine, compile_plan

    plan = compile_plan(model, transform)          # weights compress once
    with PlanExecutor(model, plan) as executor:
        with ServingEngine(executor, max_batch=8) as engine:
            y = engine.infer(x)                    # compile once, serve many

The structured GEMMs behind every compiled forward dispatch through a
pluggable kernel-backend registry (:mod:`repro.runtime.backends`);
``compile_plan(..., autotune=True)`` micro-benchmarks the candidates per
layer and records each winner in the plan.  For worker-parallel serving,
swap the :class:`PlanExecutor` for a worker pool
(:mod:`repro.runtime.pool`): thread replicas share one process, process
workers attach the compiled plan through shared memory and scale past the
GIL::

    plan = compile_plan(model, transform, autotune=True)
    with make_pool("process", model, plan, workers=4) as executor:
        with ServingEngine(executor, workers=4) as engine:
            y = engine.infer(x)                    # forwards run concurrently

(:class:`ReplicaExecutor` remains the established name for the thread
pool, with its ``replicas=`` spelling.)

Compiled plans persist across restarts (:mod:`repro.runtime.planio`):
``plan.save("plan.npz")`` writes a digest-keyed artifact and
``load_plan("plan.npz", model)`` rebuilds the plan — compressed operands,
gather tables, and autotuned backend choices included — without
re-decomposing or re-tuning, refusing models whose weights have drifted;
``share_plan``/``attach_plan`` hand the same artifact contents to worker
processes as zero-copy shared-memory views.

The runtime is observable end to end (:mod:`repro.runtime.metrics`,
:mod:`repro.runtime.tracing`): per-layer GEMM latency histograms with
fixed buckets merge exactly across thread and process workers, the
serving engine records queue-wait / batch-size / end-to-end latency
histograms plus per-request traces in a bounded ring, and
``engine.serve_metrics(port=9100)`` exposes it all over HTTP —
``/metrics`` (Prometheus text), ``/metrics.json``, ``/healthz``, and a
human-readable ``/statusz`` — using only the stdlib HTTP server.

And it is fault-tolerant: a supervisor inside :class:`ProcessWorkerPool`
health-checks its workers and respawns dead ones from the already-shared
plan segment (capped backoff, crash-loop circuit breaker), the engine
retries micro-batches whose worker died — splitting them to isolate
poison inputs — enforces per-request deadlines and a bounded admission
queue, and degrades onto an in-process :class:`PlanExecutor` when the
pool collapses.  :mod:`repro.runtime.chaos` injects all of those faults
on purpose (kill/hang/slow/poison/crash-on-Nth) for tests and drills.

Operations are zero-downtime: ``engine.swap_plan(path_or_plan)`` rolls a
new compiled artifact onto live workers one at a time behind a canary
batch (mismatch, attach failure, or a mid-roll crash rolls everything
back and raises :class:`SwapRejected` — the old plan never stops
serving), ``engine.scale_to(n)`` resizes the worker fleet in place (an
:class:`Autoscaler` can drive it from queue depth and utilization with
hysteresis and cooldown), and ``engine.drain(timeout)`` stops admission,
finishes every accepted request, then shuts down — the CLI maps SIGTERM
to drain and SIGHUP to a plan reload.
"""

from .autotune import AutotuneResult, autotune_operand, retune_plan
from .backends import (
    DEFAULT_BACKEND,
    GemmBackend,
    backend_names,
    exact_backend_names,
    get_backend,
    register_backend,
)
from .cache import (
    CompiledOperand,
    OperandCache,
    SharedArrayRef,
    SharedOperandStore,
    tensor_digest,
)
from .counters import (
    CacheCounters,
    ExecutorStats,
    LayerCounters,
    RequestStats,
    ServeReport,
    WorkerStat,
)
from .executor import PlanExecutor
from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    export_executor_stats,
    merge_snapshots,
    render_prometheus,
)
from .plan import ExecutionPlan, LayerPlan, compile_plan
from .planio import (
    PlanDigestError,
    PlanFormatError,
    attach_plan,
    load_plan,
    model_fingerprint,
    plan_fingerprint,
    save_plan,
    share_plan,
)
from .autoscale import Autoscaler
from .chaos import ChaosMonkey, ChaosSpec, is_poisoned, poison_batch, skewed_plan
from .pool import (
    POOL_KINDS,
    PlanSwapError,
    PoolDegradedError,
    ProcessWorkerPool,
    RemoteTraceback,
    ThreadWorkerPool,
    WorkerCrashError,
    WorkerPool,
    make_pool,
)
from .replica import ReplicaExecutor
from .serve import DeadlineExceeded, QueueFull, ServingEngine, SwapRejected
from .shard import (
    ShardDecision,
    ShardSpec,
    choose_shard_plan,
    make_shard_spec,
    partition_equal_nnz,
    partition_equal_rows,
    plan_shards,
    row_nnz_profile,
    row_nnz_stats,
    slice_operand,
)
from .tracing import RequestTrace, Span, TraceBuffer

__all__ = [
    "Autoscaler",
    "AutotuneResult",
    "CacheCounters",
    "ChaosMonkey",
    "ChaosSpec",
    "CompiledOperand",
    "Counter",
    "DEFAULT_BACKEND",
    "DeadlineExceeded",
    "ExecutionPlan",
    "ExecutorStats",
    "Gauge",
    "GemmBackend",
    "Histogram",
    "LATENCY_BUCKETS",
    "LayerCounters",
    "LayerPlan",
    "MetricsRegistry",
    "MetricsServer",
    "OperandCache",
    "POOL_KINDS",
    "PlanDigestError",
    "PlanExecutor",
    "PlanFormatError",
    "PlanSwapError",
    "PoolDegradedError",
    "ProcessWorkerPool",
    "QueueFull",
    "RemoteTraceback",
    "ReplicaExecutor",
    "RequestStats",
    "RequestTrace",
    "ServeReport",
    "ServingEngine",
    "ShardDecision",
    "ShardSpec",
    "SharedArrayRef",
    "SharedOperandStore",
    "Span",
    "SwapRejected",
    "ThreadWorkerPool",
    "TraceBuffer",
    "WorkerCrashError",
    "WorkerPool",
    "WorkerStat",
    "attach_plan",
    "autotune_operand",
    "backend_names",
    "choose_shard_plan",
    "compile_plan",
    "exact_backend_names",
    "export_executor_stats",
    "get_backend",
    "is_poisoned",
    "load_plan",
    "make_pool",
    "make_shard_spec",
    "merge_snapshots",
    "model_fingerprint",
    "partition_equal_nnz",
    "partition_equal_rows",
    "plan_fingerprint",
    "plan_shards",
    "poison_batch",
    "row_nnz_profile",
    "row_nnz_stats",
    "skewed_plan",
    "slice_operand",
    "register_backend",
    "render_prometheus",
    "retune_plan",
    "save_plan",
    "share_plan",
    "tensor_digest",
]
