"""Inference runtime: compiled execution plans, operand cache, serving.

Turns the functional TASD kernels into a serving system: a
:func:`compile_plan` pass decomposes and compresses static weights exactly
once, a content-addressed :class:`OperandCache` shares compiled operands,
a :class:`PlanExecutor` runs batches against the plan with perf counters,
and a :class:`ServingEngine` micro-batches concurrent requests on top.

Quickstart::

    from repro.runtime import OperandCache, PlanExecutor, ServingEngine, compile_plan

    plan = compile_plan(model, transform)          # weights compress once
    with PlanExecutor(model, plan) as executor:
        with ServingEngine(executor, max_batch=8) as engine:
            y = engine.infer(x)                    # compile once, serve many
"""

from .cache import CompiledOperand, OperandCache, tensor_digest
from .counters import (
    CacheCounters,
    ExecutorStats,
    LayerCounters,
    RequestStats,
    ServeReport,
)
from .executor import PlanExecutor
from .plan import ExecutionPlan, LayerPlan, compile_plan
from .serve import ServingEngine

__all__ = [
    "CacheCounters",
    "CompiledOperand",
    "ExecutionPlan",
    "ExecutorStats",
    "LayerCounters",
    "LayerPlan",
    "OperandCache",
    "PlanExecutor",
    "RequestStats",
    "ServeReport",
    "ServingEngine",
    "compile_plan",
    "tensor_digest",
]
