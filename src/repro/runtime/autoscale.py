"""Queue-depth autoscaling: size the worker fleet to the load, elastically.

The serving tier can now resize itself while serving
(:meth:`~repro.runtime.pool.ProcessWorkerPool.scale_to` spawns workers
from the already-shared plan segment and retires idle ones gracefully),
but *when* to resize is a control problem: scale on every queue blip and
the fleet flaps — worse, rapid scale churn could age the same sliding
windows the crash-loop circuit breaker watches.  This module provides the
controller:

- **two signals** — exact queue depth (from the engine's atomic depth
  counter, the same value behind the ``max_queue`` admission bound and
  the ``tasd_serve_queue_depth`` gauge) and pool utilization (fraction of
  workers busy);
- **watermarks with hysteresis** — a breach must persist for
  ``breach_ticks`` consecutive observations before anything moves, so a
  single burst never scales;
- **cooldown** — after any resize the controller holds still for
  ``cooldown`` seconds, letting the new fleet size absorb the load (and
  keeping scale events far apart from the supervisor's respawn backoff);
- **bounds** — the target never leaves ``[min_workers, max_workers]``.

The controller is deliberately separable from wall-clock and from the
engine: ``depth_fn`` / ``util_fn`` / ``scale_fn`` / ``clock`` are all
injectable, so the decision logic unit-tests deterministically — no
sleeps, no load generation.  In production, construct it over a
:class:`~repro.runtime.serve.ServingEngine` and :meth:`start` the
background thread::

    with Autoscaler(engine, min_workers=1, max_workers=8) as scaler:
        ... serve ...
    print(scaler.events)  # [(t, "up", 1, 2), ...]
"""

from __future__ import annotations

import threading
import time

__all__ = ["Autoscaler"]


class Autoscaler:
    """Watermark controller driving ``engine.scale_to`` from queue depth.

    Parameters
    ----------
    engine
        A :class:`~repro.runtime.serve.ServingEngine` (or anything with
        ``queue_depth``, ``workers``, and ``scale_to``).  Signal and
        actuator callables default to it and are individually
        overridable for tests.
    min_workers, max_workers
        Hard bounds on the target worker count.
    high_depth
        Scale **up** when queue depth exceeds this (requests waiting).
    low_depth
        Queue depth must be at or below this for a scale **down**.
    high_util, low_util
        Utilization watermarks: above ``high_util`` also argues up;
        a scale down additionally requires utilization at or below
        ``low_util`` (an empty queue over saturated workers is not idle).
    breach_ticks
        Consecutive observations a watermark must stay breached before
        the controller acts — the hysteresis that stops flapping.
    cooldown
        Seconds to hold still after any resize.
    interval
        Seconds between observations when running as a thread.
    step
        Workers added/removed per scale event.
    depth_fn, util_fn, scale_fn, clock
        Injectable signal sources, actuator, and time source.
    """

    def __init__(
        self,
        engine=None,
        *,
        min_workers: int = 1,
        max_workers: int = 8,
        high_depth: float = 8.0,
        low_depth: float = 1.0,
        high_util: float = 0.9,
        low_util: float = 0.25,
        breach_ticks: int = 3,
        cooldown: float = 2.0,
        interval: float = 0.1,
        step: int = 1,
        depth_fn=None,
        util_fn=None,
        scale_fn=None,
        clock=None,
    ) -> None:
        if min_workers <= 0:
            raise ValueError(f"min_workers must be positive, got {min_workers}")
        if max_workers < min_workers:
            raise ValueError(
                f"max_workers ({max_workers}) must be >= min_workers ({min_workers})"
            )
        if high_depth <= low_depth:
            raise ValueError(
                f"high_depth ({high_depth}) must exceed low_depth ({low_depth})"
            )
        if breach_ticks <= 0:
            raise ValueError(f"breach_ticks must be positive, got {breach_ticks}")
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if engine is None and (depth_fn is None or scale_fn is None):
            raise ValueError("provide an engine, or depth_fn and scale_fn")
        self.engine = engine
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.high_depth = high_depth
        self.low_depth = low_depth
        self.high_util = high_util
        self.low_util = low_util
        self.breach_ticks = breach_ticks
        self.cooldown = cooldown
        self.interval = interval
        self.step = step
        self._depth_fn = depth_fn or (lambda: engine.queue_depth)
        pool = getattr(engine, "executor", None)
        self._util_fn = util_fn or getattr(pool, "utilization", None) or (lambda: 0.0)
        self._scale_fn = scale_fn or engine.scale_to
        self._clock = clock or time.monotonic
        # Controller state: ticks can come from the background thread and
        # from direct tick() callers (tests, manual drives) concurrently.
        self._tick_lock = threading.Lock()
        self._current = self._clamp(getattr(engine, "workers", min_workers) or min_workers)  # guarded-by: _tick_lock
        self._high_streak = 0  # guarded-by: _tick_lock
        self._low_streak = 0  # guarded-by: _tick_lock
        self._cooldown_until = float("-inf")  # guarded-by: _tick_lock
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        # Bounded event log: (clock time, direction, from, to).
        self.events: list[tuple[float, str, int, int]] = []  # guarded-by: _tick_lock

    # ------------------------------------------------------------------ #
    def _clamp(self, n: int) -> int:
        return max(self.min_workers, min(self.max_workers, int(n)))

    @property
    def target(self) -> int:
        """The controller's current worker-count target."""
        with self._tick_lock:
            return self._current

    def tick(self) -> "str | None":
        """One observation → at most one scale decision.

        Returns ``"up"`` / ``"down"`` when a resize was applied this
        tick, else ``None``.  Drive this directly for deterministic
        tests, or let :meth:`start`'s thread call it every ``interval``.
        """
        depth = float(self._depth_fn())
        util = float(self._util_fn())
        with self._tick_lock:
            # Streaks first: hysteresis state advances even inside cooldown,
            # so sustained pressure acts the moment the cooldown lifts.
            if depth > self.high_depth or util > self.high_util:
                self._high_streak += 1
                self._low_streak = 0
            elif depth <= self.low_depth and util <= self.low_util:
                self._low_streak += 1
                self._high_streak = 0
            else:
                self._high_streak = 0
                self._low_streak = 0
            now = self._clock()
            if now < self._cooldown_until:
                return None
            if self._high_streak >= self.breach_ticks and self._current < self.max_workers:
                return self._apply("up", self._clamp(self._current + self.step), now)
            if self._low_streak >= self.breach_ticks and self._current > self.min_workers:
                return self._apply("down", self._clamp(self._current - self.step), now)
            return None

    # lint: disable=guarded-field — _tick_lock is held by the only caller,
    # tick(); the actuator call stays under it so concurrent ticks cannot
    # interleave two resizes
    def _apply(self, direction: str, target: int, now: float) -> "str | None":
        if target == self._current:
            return None
        previous = self._current
        self._scale_fn(target)
        self._current = target
        self._high_streak = 0
        self._low_streak = 0
        self._cooldown_until = now + self.cooldown
        self.events.append((now, direction, previous, target))
        del self.events[:-256]  # bounded
        return direction

    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except (RuntimeError, ValueError, OSError, TimeoutError):
                # A transient signal/actuator failure (pool mid-swap or
                # degraded, engine stopping, shm pressure) must not kill
                # the controller; the next tick re-observes.  Every typed
                # runtime error derives from one of these bases.
                continue

    def start(self) -> "Autoscaler":
        """Run the controller on a daemon thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="autoscaler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the controller thread (the fleet keeps its current size)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "Autoscaler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
