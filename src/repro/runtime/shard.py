"""nnz-balanced intra-layer sharding: split one layer's GEMM across workers.

Every parallel mode before this one is whole-model data parallelism — one
request's forward runs on one worker, so a single big layer bounds
single-request latency.  This module partitions a compiled layer's gather
rows into K shards and lets the pools run the shards of *one* forward
concurrently (the scatter/gather dispatch lives in ``pool.py``; this
module owns the partitioning math and the shard-local compute).

The split is by **nnz budget**, not row count: the TASD decomposition
turns unstructured sparsity into N:M terms whose per-row population is
highly skewed, so equal-row shards idle workers while one drags the
critical path (SparseRT's load-balanced work assignment, paid once at
specialization time, is the template).  A greedy prefix split over the
cumulative per-row nnz gives every shard an (almost) equal share of the
actual non-zeros.

Balancing by nnz models kernels whose cost tracks true non-zeros — the
``scatter-csr`` backend here, SpMM/warp kernels on real accelerators.
The gather backends pay per *slot* (padding zeros included), so for them
an equal-nnz split degenerates gracefully toward an equal-row split as
skew vanishes.

Bit-exactness: a shard computes output rows ``[start, stop)`` of the
layer GEMM from row-sliced views of the already-shared gather tables.
Row slicing preserves bits for every gather/CSR kernel (each output row's
reduction is independent of its neighbours — the same doctrine
``blocked-gather`` relies on), but **not** for dense BLAS GEMMs, whose
internal blocking changes with the matrix shape.  Backends declare this
via :attr:`GemmBackend.shard_safe`; layers on unsafe backends are never
sharded, and a forced shard computes with the reference gather kernel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.analysis.annotations import cross_process, hot_path

from .backends import DEFAULT_BACKEND, get_backend
from .cache import CompiledOperand

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .plan import ExecutionPlan, LayerPlan

__all__ = [
    "ShardSpec",
    "ShardDecision",
    "row_nnz_profile",
    "row_nnz_stats",
    "partition_equal_nnz",
    "partition_equal_rows",
    "make_shard_spec",
    "slice_operand",
    "shard_backend",
    "shard_partial",
    "plan_shards",
    "choose_layer_shards",
    "choose_shard_plan",
    "median_time",
]


# ---------------------------------------------------------------------- #
# Per-row nnz profiles
# ---------------------------------------------------------------------- #
def row_nnz_profile(operand: CompiledOperand) -> np.ndarray:
    """Per-output-row non-zero count summed over all TASD terms.

    This is the work profile the partitioner balances: entry ``r`` is the
    number of stored values in row ``r`` across every term's compressed
    table (padding slots hold exact zeros and do not count).
    """
    profile = np.zeros(operand.padded_shape[0], dtype=np.int64)
    for vals in operand.flat_values:
        profile += np.count_nonzero(vals, axis=1)
    return profile


def row_nnz_stats(operand: CompiledOperand) -> tuple[int, int, float, float]:
    """``(total, max_row, mean_row, skew)`` of the per-row nnz profile.

    ``skew`` is max-row over mean-row nnz — 1.0 means perfectly uniform
    work per row (equal-row shards would already balance); large values
    are exactly the layers where equal-nnz sharding pays.
    """
    profile = row_nnz_profile(operand)
    total = int(profile.sum())
    if profile.size == 0 or total == 0:
        return total, 0, 0.0, 1.0
    mean = total / profile.size
    max_row = int(profile.max())
    return total, max_row, mean, max_row / mean


# ---------------------------------------------------------------------- #
# Partitioners
# ---------------------------------------------------------------------- #
def partition_equal_rows(rows: int, k: int) -> tuple[tuple[int, int], ...]:
    """Split ``[0, rows)`` into ``min(k, rows)`` near-equal row ranges."""
    rows = int(rows)
    if rows <= 0:
        return ()
    k = max(1, min(int(k), rows))
    base, extra = divmod(rows, k)
    ranges = []
    start = 0
    for i in range(k):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return tuple(ranges)


def partition_equal_nnz(profile, k: int) -> tuple[tuple[int, int], ...]:
    """Greedy prefix split of the row axis into ``k`` equal-nnz shards.

    Walks the cumulative per-row nnz and cuts at the row whose prefix sum
    lands nearest each ideal boundary ``total * i / k``, clamped so every
    shard keeps at least one row.  ``k`` clamps to the row count; a
    profile with zero total nnz (all-empty rows) falls back to the
    equal-row split.  The ranges tile ``[0, rows)`` exactly.
    """
    profile = np.asarray(profile, dtype=np.int64)
    rows = int(profile.shape[0])
    if rows <= 0:
        return ()
    k = max(1, min(int(k), rows))
    if k == 1:
        return ((0, rows),)
    total = int(profile.sum())
    if total <= 0:
        return partition_equal_rows(rows, k)
    cum = np.cumsum(profile)
    ranges = []
    prev = 0
    for i in range(1, k):
        target = total * i / k
        j = int(np.searchsorted(cum, target))
        below = int(cum[j - 1]) if j > 0 else 0
        above = int(cum[j]) if j < rows else total
        cut = j if (target - below) <= (above - target) else j + 1
        cut = max(cut, prev + 1)  # every shard keeps >= 1 row
        cut = min(cut, rows - (k - i))  # ... including the ones still to come
        ranges.append((prev, cut))
        prev = cut
    ranges.append((prev, rows))
    return tuple(ranges)


# ---------------------------------------------------------------------- #
# Shard tables
# ---------------------------------------------------------------------- #
@cross_process
@dataclass(frozen=True)
class ShardSpec:
    """A layer's shard table: row ranges + the nnz budget of each shard.

    Rides the worker pipe inside shard tasks and the plan manifest inside
    persisted artifacts, so it is pure picklable data.  Construction
    validates the tiling invariant — the ranges must cover ``[0, rows)``
    contiguously, gap- and overlap-free — raising :class:`ValueError`
    (which ``planio`` surfaces as a typed ``PlanFormatError`` for
    artifacts that drifted or were tampered with).
    """

    layer: str
    rows: int
    ranges: tuple[tuple[int, int], ...]
    nnz: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.ranges:
            raise ValueError(
                f"shard table for layer {self.layer!r} has no shards"
            )
        if len(self.ranges) != len(self.nnz):
            raise ValueError(
                f"shard table for layer {self.layer!r} has {len(self.ranges)} "
                f"ranges but {len(self.nnz)} nnz budgets"
            )
        prev = 0
        for start, stop in self.ranges:
            if start != prev or stop <= start:
                raise ValueError(
                    f"shard table for layer {self.layer!r} does not tile the "
                    f"row axis: range ({start}, {stop}) after row {prev} "
                    f"(gaps, overlaps, and empty shards are all invalid)"
                )
            prev = stop
        if prev != self.rows:
            raise ValueError(
                f"shard table for layer {self.layer!r} covers rows [0, {prev}) "
                f"but the layer has {self.rows} rows"
            )

    @property
    def num_shards(self) -> int:
        return len(self.ranges)

    @property
    def imbalance(self) -> float:
        """Max-shard over mean-shard nnz (1.0 = perfectly balanced)."""
        mean = sum(self.nnz) / len(self.nnz)
        if mean <= 0:
            return 1.0
        return max(self.nnz) / mean

    def to_entry(self) -> dict:
        """Pure-JSON manifest entry (the ``planio`` wire format)."""
        return {
            "rows": int(self.rows),
            "ranges": [[int(a), int(b)] for a, b in self.ranges],
            "nnz": [int(v) for v in self.nnz],
        }

    @classmethod
    def from_entry(cls, layer: str, entry: dict) -> "ShardSpec":
        return cls(
            layer=str(layer),
            rows=int(entry["rows"]),
            ranges=tuple((int(a), int(b)) for a, b in entry["ranges"]),
            nnz=tuple(int(v) for v in entry["nnz"]),
        )


def make_shard_spec(
    layer: str,
    operand: CompiledOperand,
    k: int,
    strategy: str = "nnz",
    profile: np.ndarray | None = None,
) -> ShardSpec:
    """Build a validated :class:`ShardSpec` for one compiled operand.

    ``strategy`` is ``"nnz"`` (equal nnz budgets, the default) or
    ``"rows"`` (naive equal row counts — kept for comparison benches).
    """
    if profile is None:
        profile = row_nnz_profile(operand)
    rows = int(profile.shape[0])
    if strategy == "nnz":
        ranges = partition_equal_nnz(profile, k)
    elif strategy == "rows":
        ranges = partition_equal_rows(rows, k)
    else:
        raise ValueError(
            f"unknown shard strategy {strategy!r}; options: ('nnz', 'rows')"
        )
    if not ranges:
        raise ValueError(f"layer {layer!r} has no rows to shard")
    nnz = tuple(int(profile[a:b].sum()) for a, b in ranges)
    return ShardSpec(layer=layer, rows=rows, ranges=ranges, nnz=nnz)


# ---------------------------------------------------------------------- #
# Shard-local compute
# ---------------------------------------------------------------------- #
def slice_operand(operand: CompiledOperand, start: int, stop: int) -> CompiledOperand:
    """Zero-copy row-range view ``[start, stop)`` of a compiled operand.

    Every array in the result is a view into the source operand's storage
    (which may live in the already-shared shm segment) — no term values,
    indices, or gather tables are copied.  The sliced operand computes
    output rows ``[start, stop)`` of the full layer GEMM bit-identically
    for row-slice-safe backends.
    """
    rows = operand.padded_shape[0]
    start, stop = int(start), int(stop)
    if not (0 <= start < stop <= rows):
        raise ValueError(
            f"shard range ({start}, {stop}) is not inside [0, {rows})"
        )
    terms = tuple(
        replace(
            t,
            values=t.values[start:stop],
            indices=t.indices[start:stop],
            shape=(stop - start, t.shape[1]),
        )
        for t in operand.terms
    )
    return CompiledOperand(
        config=operand.config,
        original_shape=(stop - start, operand.original_shape[1]),
        padded_shape=(stop - start, operand.padded_shape[1]),
        terms=terms,
        flat_values=tuple(v[start:stop] for v in operand.flat_values),
        flat_rows=tuple(r[start:stop] for r in operand.flat_rows),
    )


def shard_backend(name: str) -> str:
    """Backend a shard computes with: ``name`` itself when its kernel is
    row-slice bit-safe, else the reference gather backend (dense BLAS
    GEMMs are not bitwise stable under row slicing — their internal
    blocking changes with the matrix shape)."""
    return name if get_backend(name).shard_safe else DEFAULT_BACKEND


@hot_path
def shard_partial(
    plan: "ExecutionPlan",
    layer_name: str,
    xt: np.ndarray,
    start: int,
    stop: int,
    slices: dict,
) -> np.ndarray:
    """Compute output rows ``[start, stop)`` of one compiled layer's GEMM.

    This is the worker-side kernel of a shard task: it slices the layer's
    operand (a zero-copy view into the attached shm segment, memoised in
    ``slices`` keyed by ``(layer, start, stop)``) and runs the layer's
    backend on it.  ``slices`` must be invalidated when the plan changes
    (the pools clear it on swap).
    """
    lp = plan.layers.get(layer_name)
    if lp is None or lp.operand is None:
        raise ValueError(f"no compiled layer {layer_name!r} to run a shard of")
    key = (layer_name, int(start), int(stop))
    sliced = slices.get(key)
    if sliced is None:
        sliced = slice_operand(lp.operand, start, stop)
        slices[key] = sliced
    return sliced.matmul(xt, backend=shard_backend(lp.backend))


# ---------------------------------------------------------------------- #
# Attaching tables to a plan (compile time)
# ---------------------------------------------------------------------- #
def plan_shards(plan: "ExecutionPlan", k: int, strategy: str = "nnz") -> dict[str, ShardSpec]:
    """Attach ``k``-way shard tables to every shardable compiled layer.

    Layers stay untouched when they are not compiled, their backend is
    not row-slice bit-safe, or they end up with a single shard (``k``
    clamps to the row count).  Returns the attached tables by layer name.
    The tables persist with the plan through ``planio``.
    """
    specs: dict[str, ShardSpec] = {}
    for name, lp in plan.layers.items():
        if lp.mode != "compiled" or lp.operand is None:
            continue
        if not get_backend(lp.backend).shard_safe:
            continue
        spec = make_shard_spec(name, lp.operand, k, strategy=strategy)
        if spec.num_shards < 2:
            continue
        plan.layers[name] = replace(lp, shards=spec)
        specs[name] = spec
    return specs


# ---------------------------------------------------------------------- #
# Choosing K (autotune-style micro-benchmarks)
# ---------------------------------------------------------------------- #
def median_time(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall time of ``fn()`` over ``repeats`` runs (one warm-up)."""
    fn()  # warm-up: pays backend prepare, slice caches, allocator churn
    times = []
    for _ in range(max(1, int(repeats))):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]


def candidate_shard_counts(max_shards: int, rows: int) -> tuple[int, ...]:
    """Shard counts worth timing: ``max_shards`` and its halvings, >= 2."""
    ks = set()
    k = int(max_shards)
    while k >= 2:
        ks.add(k)
        k //= 2
    return tuple(sorted(x for x in ks if x <= int(rows)))


@dataclass(frozen=True)
class ShardDecision:
    """Outcome of the per-layer K micro-benchmark.

    ``spec is None`` means the layer stays unsharded — its backend is not
    row-slice safe, or fan-out overhead eats the measured win (tiny
    layers).  ``timings`` maps candidate shard counts to the predicted
    critical-path seconds (largest shard compute + per-shard overhead).
    """

    layer: str
    spec: ShardSpec | None
    unsharded_s: float
    sharded_s: float
    timings: dict[int, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.sharded_s <= 0:
            return 1.0
        return self.unsharded_s / self.sharded_s


def choose_layer_shards(
    lp: "LayerPlan",
    max_shards: int,
    overhead_s: float = 0.0,
    sample_cols: int = 8,
    repeats: int = 3,
    min_speedup: float = 1.05,
    seed: int = 0,
) -> ShardDecision:
    """Pick a shard count for one layer from measured micro-benchmarks.

    Times the unsharded GEMM against the *largest* shard of each candidate
    split (the critical path of a perfectly overlapped scatter), charges
    ``overhead_s`` of measured fan-out cost per shard, and keeps the
    winner only when it clears ``min_speedup``.  Tiny layers therefore
    stay unsharded because the numbers say so, not by a size heuristic.
    """
    operand = lp.operand
    if operand is None or int(max_shards) < 2 or not get_backend(lp.backend).shard_safe:
        return ShardDecision(layer=lp.name, spec=None, unsharded_s=0.0, sharded_s=0.0)
    rng = np.random.default_rng(seed)
    dtype = operand.flat_values[0].dtype
    b = rng.standard_normal((operand.padded_shape[1], int(sample_cols))).astype(dtype)
    t_full = median_time(lambda: operand.matmul(b, backend=lp.backend), repeats)
    profile = row_nnz_profile(operand)
    timings: dict[int, float] = {1: t_full}
    best_t = t_full
    best_spec: ShardSpec | None = None
    for k in candidate_shard_counts(max_shards, operand.padded_shape[0]):
        spec = make_shard_spec(lp.name, operand, k, profile=profile)
        if spec.num_shards < 2:
            continue
        widest = max(range(spec.num_shards), key=lambda j: spec.nnz[j])
        sliced = slice_operand(operand, *spec.ranges[widest])
        t_shard = median_time(lambda: sliced.matmul(b, backend=lp.backend), repeats)
        predicted = t_shard + overhead_s * spec.num_shards
        timings[spec.num_shards] = predicted
        if predicted < best_t:
            best_t = predicted
            best_spec = spec
    if best_spec is None or t_full < best_t * min_speedup:
        return ShardDecision(
            layer=lp.name, spec=None, unsharded_s=t_full, sharded_s=t_full, timings=timings
        )
    return ShardDecision(
        layer=lp.name, spec=best_spec, unsharded_s=t_full, sharded_s=best_t, timings=timings
    )


def choose_shard_plan(
    plan: "ExecutionPlan",
    max_shards: int,
    overhead_s: float = 0.0,
    sample_cols: int = 8,
    repeats: int = 3,
    min_speedup: float = 1.05,
    seed: int = 0,
) -> dict[str, ShardDecision]:
    """Per-layer shard decisions for a whole plan (compiled layers only)."""
    decisions: dict[str, ShardDecision] = {}
    for name, lp in plan.layers.items():
        if lp.mode != "compiled" or lp.operand is None:
            continue
        decisions[name] = choose_layer_shards(
            lp,
            max_shards,
            overhead_s=overhead_s,
            sample_cols=sample_cols,
            repeats=repeats,
            min_speedup=min_speedup,
            seed=seed,
        )
    return decisions
